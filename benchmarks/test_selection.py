"""Chunk-selection benchmark: provenance sketches + budgeted selection.

Two workloads, emitting ``BENCH_selection.json`` at the repo root:

* **Repeated-template (sketch) workload** — a table laid out so zone
  maps are useless: every chunk carries low/high sentinel rows, so each
  chunk's ``[min, max]`` spans the whole domain and every BETWEEN
  verdict is UNKNOWN, while the bulk values stay clustered.  Zone-map
  skipping alone therefore touches every row; after one evaluation
  records the realized chunk set, re-executions of the same template
  (equal or dominated parameters) scan only the sketched chunks.  The
  gate is deterministic: >= 5x rows-touched reduction over zone-map
  skipping alone, with byte-identical answers.

* **Budgeted-selection workload** — SmallGroup sampling answers a
  grouped SUM/COUNT under ``chunk_selection`` at three row budgets.
  For each budget the benchmark records the rows actually touched and
  the per-group error against the exact answer, and gates that >= 90%
  of groups cover the truth with their 95% confidence intervals,
  averaged over several selection seeds (one draw is a handful of
  correlated Bernoulli trials; the seed average is what measures CI
  calibration) — the Horvitz–Thompson reweighting must keep the CI
  machinery honest while the budget shrinks the scan.

Sizes honour ``REPRO_BENCH_ROWS`` (default 60000) so the CI smoke step
runs the same code path in seconds.  Wall times are reported for
context but not gated (timing noise on loaded runners), and the
coverage gate — like the timing gates in ``test_skipping.py`` — only
runs at full size: at smoke sizes the budget draws only one or two
chunks per piece, where the row-level variance model cannot see the
cluster structure and the nominal level is unreachable by design.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.datagen.synthetic import (
    CategoricalSpec,
    MeasureSpec,
    generate_flat_table,
)
from repro.engine import selection as sel
from repro.engine.cache import get_cache
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.engine.expressions import (
    AggFunc,
    AggregateSpec,
    Between,
    Query,
)
from repro.engine.parallel import (
    ExecutionOptions,
    set_default_options,
    shutdown_default_pools,
)
from repro.engine.table import Table
from repro.engine.zonemap import PieceSkipStats
from repro.sql.parser import parse_query

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "60000"))
CHUNK_ROWS = max(256, ROWS // 60)
QUERY_BATCH = 8

AGGREGATES = (
    AggregateSpec(AggFunc.COUNT, alias="cnt"),
    AggregateSpec(AggFunc.SUM, "amount", alias="total"),
)


# ----------------------------------------------------------------------
# Workload 1: repeated-template sketch reuse
# ----------------------------------------------------------------------
def _sentinel_db() -> Database:
    """Clustered bulk values with per-chunk sentinels defeating zone maps.

    ``x`` is sorted (chunk *i* holds the run ``[i*C, (i+1)*C)``) but the
    first two rows of every chunk are overwritten with extreme
    sentinels, so each chunk's min/max spans the whole domain and no
    BETWEEN verdict can prove anything.
    """
    x = np.arange(ROWS, dtype=np.int64)
    for start in range(0, ROWS, CHUNK_ROWS):
        if start + 1 < ROWS:
            x[start] = -(10**9)
            x[start + 1] = 10**9
    amount = np.linspace(0.0, 100.0, num=ROWS)
    table = Table.from_dict("events", {"x": x, "amount": amount})
    return Database([table])


def _narrow_query(eps: int) -> Query:
    """~5% of the bulk rows; ``eps`` shrinks the range so every variant
    is a fresh predicate dominated by the first (widest) one."""
    lo = int(ROWS * 0.45)
    hi = int(ROWS * 0.50)
    return Query(
        "events", AGGREGATES, (), where=Between("x", lo + eps, hi - eps)
    )


def _widening_query(step: int) -> Query:
    """Ever-wider ranges: never dominated by anything recorded before."""
    lo = int(ROWS * 0.45)
    hi = int(ROWS * 0.50)
    return Query(
        "events", AGGREGATES, (), where=Between("x", lo - step, hi + step)
    )


def _run(db: Database, query: Query, options) -> tuple:
    stats = PieceSkipStats(description="bench")
    result = execute(db, query, options=options, skip_stats=stats)
    return result, stats


def _sketch_workload(payload: dict) -> None:
    db = _sentinel_db()
    options = ExecutionOptions(chunk_rows=CHUNK_ROWS)
    cache = get_cache()
    cache.clear()
    sel.reset_sketch_store()

    # Cold: zone maps alone.  The sentinels force a full scan.
    cold, cold_stats = _run(db, _narrow_query(0), options)
    assert not cold_stats.sketch_hit
    touched_zonemap = cold_stats.rows_touched
    assert touched_zonemap == ROWS, cold_stats

    # Re-execution of the same template: equal parameters hit the
    # recorded sketch (the mask cache is cleared so the WHERE really
    # re-evaluates), and dominated (narrower) parameters hit it too.
    cache.clear()
    warm, warm_stats = _run(db, _narrow_query(0), options)
    assert warm_stats.sketch_hit, warm_stats
    assert warm.rows == cold.rows and warm.raw_counts == cold.raw_counts

    dom, dom_stats = _run(db, _narrow_query(7), options)
    assert dom_stats.sketch_hit, dom_stats
    touched_sketch = dom_stats.rows_touched

    # Byte-identical to evaluating the dominated query with no sketches.
    cache.clear()
    sketchless_store = sel.get_sketch_store()
    sketchless_store.clear()
    base, base_stats = _run(db, _narrow_query(7), options)
    assert not base_stats.sketch_hit
    assert dom.rows == base.rows and dom.raw_counts == base.raw_counts

    # Timed batches (report-only): distinct parameters per query so the
    # mask cache never serves a timed query.
    cache.clear()
    sel.reset_sketch_store()
    start = time.perf_counter()
    for step in range(1, QUERY_BATCH + 1):
        execute(db, _widening_query(step * 3), options=options)
    seconds_zonemap = time.perf_counter() - start

    cache.clear()
    sel.reset_sketch_store()
    execute(db, _narrow_query(0), options=options)  # record the template
    start = time.perf_counter()
    for eps in range(1, QUERY_BATCH + 1):
        execute(db, _narrow_query(eps * 3), options=options)
    seconds_sketch = time.perf_counter() - start

    reduction = touched_zonemap / max(1, touched_sketch)
    payload["sketch"] = {
        "rows_touched_zonemap_only": touched_zonemap,
        "rows_touched_sketch": touched_sketch,
        "rows_touched_reduction": round(reduction, 2),
        "chunks_scanned_sketch": dom_stats.chunks_scanned,
        "n_chunks": dom_stats.n_chunks,
        "seconds_zonemap_batch": round(seconds_zonemap, 6),
        "seconds_sketch_batch": round(seconds_sketch, 6),
        "answers_identical": True,
    }
    assert reduction >= 5.0, payload["sketch"]


# ----------------------------------------------------------------------
# Workload 2: budgeted selection error-vs-rows-touched curve
# ----------------------------------------------------------------------
SPEC = dict(
    categoricals=[
        CategoricalSpec("color", 40, 1.2),
        CategoricalSpec("status", 4, 0.8),
    ],
    measures=[MeasureSpec("amount", distribution="lognormal")],
)
BASE_RATE = 0.1
SELECTION_SEEDS = 6
#: The coverage gate needs enough rows that each budget draws several
#: chunks per piece; below this the gate is recorded but not asserted.
COVERAGE_GATE_MIN_ROWS = 20000
SELECTION_SQL = (
    "SELECT color, COUNT(*) AS cnt, SUM(amount) AS total "
    "FROM flat WHERE amount >= 0.0 GROUP BY color"
)


def _budgets(sample_rows: int) -> tuple[int, int, int]:
    return (
        max(1, sample_rows // 8),
        max(1, sample_rows // 4),
        max(1, sample_rows // 2),
    )


def _budgeted_workload(payload: dict) -> None:
    db = Database([generate_flat_table("flat", ROWS, seed=13, **SPEC)])
    sample_chunk = max(64, ROWS // 250)
    technique = SmallGroupSampling(
        SmallGroupConfig(base_rate=BASE_RATE, use_reservoir=False, seed=13)
    )
    technique.preprocess(db)
    query = parse_query(SELECTION_SQL)

    truth_result = execute(db, query, options=ExecutionOptions())
    agg_names = truth_result.aggregate_names
    truth = {
        group: dict(zip(agg_names, row))
        for group, row in truth_result.rows.items()
    }

    curve = []
    previous = None
    for budget in _budgets(int(ROWS * BASE_RATE)):
        coverages = []
        rows_touched = []
        errors = []
        for seed in range(SELECTION_SEEDS):
            before = set_default_options(
                ExecutionOptions(
                    chunk_rows=sample_chunk,
                    chunk_selection=True,
                    selection_budget=budget,
                    selection_seed=seed,
                )
            )
            if previous is None:
                previous = before
            sel.reset_sketch_store()
            get_cache().clear()
            answer = technique.answer(query)
            report = answer.skip_report
            assert report is not None and report.pieces_selected > 0, budget
            rows_touched.append(report.rows_touched)

            covered = 0
            checked = 0
            for group, agg_truth in truth.items():
                for name in agg_names:
                    checked += 1
                    if group not in answer.groups:
                        continue  # a missing group cannot cover the truth
                    lo, hi = answer.confidence_interval(group, name)
                    true_value = agg_truth[name]
                    if lo <= true_value <= hi:
                        covered += 1
                    if true_value:
                        estimate = answer.estimate(group, name).value
                        errors.append(
                            abs(estimate - true_value) / abs(true_value)
                        )
            coverages.append(covered / max(1, checked))
        curve.append(
            {
                "budget": budget,
                "rows_touched": int(np.mean(rows_touched)),
                "ci95_coverage": round(float(np.mean(coverages)), 4),
                "ci95_coverage_min_seed": round(min(coverages), 4),
                "mean_relative_error": round(
                    float(np.mean(errors)) if errors else 0.0, 6
                ),
                "groups": len(truth),
                "selection_seeds": SELECTION_SEEDS,
            }
        )
    set_default_options(previous)
    shutdown_default_pools()

    gated = ROWS >= COVERAGE_GATE_MIN_ROWS
    payload["budgeted"] = {
        "sample_chunk_rows": sample_chunk,
        "base_rate": BASE_RATE,
        "coverage_gate_ran": gated,
        "curve": curve,
    }
    if gated:
        for point in curve:
            assert point["ci95_coverage"] >= 0.9, point


def test_selection():
    payload: dict = {
        "benchmark": "chunk_selection",
        "rows": ROWS,
        "chunk_rows": CHUNK_ROWS,
        "query_batch": QUERY_BATCH,
        "cpu_count": os.cpu_count() or 1,
    }
    try:
        _sketch_workload(payload)
        _budgeted_workload(payload)
    finally:
        out = Path(__file__).resolve().parents[1] / "BENCH_selection.json"
        out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
        get_cache().clear()
        sel.reset_sketch_store()
