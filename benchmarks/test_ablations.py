"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but studies of its design knobs:

* empirical sampling-allocation-ratio sweep (the experimental companion
  to Figure 3(a): γ = 0.5 should be near the sweet spot, and the choice
  should not be critical);
* the §4.2.3 variations: pair-column tables and the multi-level
  hierarchy, versus the basic algorithm;
* the runtime cap on small group tables per query (time/accuracy trade).
"""

import numpy as np

from benchmarks.conftest import record_figure
from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.datagen.tpch import generate_tpch
from repro.experiments.figures import FigureRun
from repro.experiments.harness import (
    Contender,
    matched_rates,
    run_experiment,
)
from repro.experiments.reporting import ascii_chart, format_table
from repro.workload.generator import generate_workload
from repro.workload.spec import WorkloadConfig

BASE_RATE = 0.04


def _workload(db, queries_per_combo=8, seed=21, group_column_counts=(2, 3)):
    return generate_workload(
        db,
        WorkloadConfig(
            group_column_counts=group_column_counts,
            queries_per_combo=queries_per_combo,
            seed=seed,
        ),
    )


def _contender(db, name, config):
    technique = SmallGroupSampling(config)
    report = technique.preprocess(db)
    return Contender(
        name=name,
        technique=technique,
        answer=lambda wq, rate: technique.answer(wq.query),
        report=report,
    )


def test_allocation_ratio_ablation(benchmark):
    """Empirical γ sweep at fixed total runtime space."""

    def run():
        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=60000)
        workload = _workload(db)
        gammas = (0.0, 0.25, 0.5, 1.0, 2.0)
        series = {"small_group/rel_err": {}, "small_group/pct_groups": {}}
        for gamma in gammas:
            # Fixed runtime budget: overall rate shrinks as gamma grows
            # (mirroring the analytical comparison in Section 4.4).
            mean_g = float(np.mean([q.n_group_columns for q in workload.queries]))
            total = BASE_RATE * (1 + 0.5 * mean_g)
            overall = total / (1 + gamma * mean_g)
            config = SmallGroupConfig(
                base_rate=overall,
                allocation_ratio=gamma,
                use_reservoir=False,
            )
            contender = _contender(db, "sg", config)
            result = run_experiment(db, workload, [contender], overall, gamma)
            series["small_group/rel_err"][gamma] = result.mean_metric(
                "sg", "rel_err"
            )
            series["small_group/pct_groups"][gamma] = result.mean_metric(
                "sg", "pct_groups"
            )
        return FigureRun(figure="ablation-gamma", series=series)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="empirical allocation-ratio sweep")
    errs = run_result.series["small_group/rel_err"]
    gammas = sorted(errs)
    print(
        ascii_chart(
            gammas,
            {"rel_err": [errs[g] for g in gammas]},
            title="Ablation: RelErr vs allocation ratio",
        )
    )
    # gamma = 0.5 beats gamma = 0 (pure uniform) on this skewed data ...
    assert errs[0.5] < errs[0.0]
    # ... and the mid-range choices are not critical (paper's finding).
    mid = [errs[0.25], errs[0.5], errs[1.0]]
    assert max(mid) < 1.5 * min(mid)


def test_variations_ablation(benchmark):
    """Basic vs pair-column vs multi-level small group sampling."""

    def run():
        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=40000)
        workload = _workload(db, queries_per_combo=6, seed=22)
        t = SmallGroupConfig(base_rate=BASE_RATE).small_fraction
        contenders = [
            _contender(
                db, "basic", SmallGroupConfig(base_rate=BASE_RATE, use_reservoir=False)
            ),
            _contender(
                db,
                "pairs",
                SmallGroupConfig(
                    base_rate=BASE_RATE,
                    use_reservoir=False,
                    pair_columns=(
                        ("l_shipmode", "p_brand"),
                        ("o_custnation", "l_returnflag"),
                    ),
                ),
            ),
            _contender(
                db,
                "multilevel",
                SmallGroupConfig(
                    base_rate=BASE_RATE,
                    use_reservoir=False,
                    levels=((t, 1.0), (4 * t, 0.25)),
                ),
            ),
        ]
        result = run_experiment(db, workload, contenders, BASE_RATE, 0.5)
        series = {}
        for name in ("basic", "pairs", "multilevel"):
            series[f"{name}/overall"] = {
                "rel_err": result.mean_metric(name, "rel_err"),
                "pct_groups": result.mean_metric(name, "pct_groups"),
                "rows_per_query": float(
                    np.mean([r.rows_scanned[name] for r in result.records])
                ),
            }
        return FigureRun(figure="ablation-variations", series=series)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="§4.2.3 variations vs the basic algorithm")
    rows = [
        [name.split("/")[0], data["rel_err"], data["pct_groups"], data["rows_per_query"]]
        for name, data in sorted(run_result.series.items())
    ]
    print(format_table(["variant", "RelErr", "PctGroups", "rows/query"], rows))
    basic = run_result.series["basic/overall"]
    multilevel = run_result.series["multilevel/overall"]
    # The multi-level hierarchy spends more rows per query and should not
    # miss more groups than the basic two-level scheme.
    assert multilevel["pct_groups"] <= basic["pct_groups"] * 1.15
    for data in run_result.series.values():
        assert np.isfinite(data["rel_err"])


def test_workload_trimming_ablation(benchmark):
    """§5.4.2's space optimisation: trim columns by workload reference."""

    def run():
        from repro.core.workload_policy import small_group_for_workload
        from repro.workload.generator import eligible_grouping_columns

        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=40000)
        # A narrow workload that only ever groups on a handful of columns;
        # trimming should cut stored rows drastically while keeping
        # accuracy on that workload.
        view = db.joined_view()
        all_columns = eligible_grouping_columns(view, WorkloadConfig())
        narrow = all_columns[:8]
        workload = generate_workload(
            db,
            WorkloadConfig(
                group_column_counts=(1, 2),
                queries_per_combo=8,
                seed=24,
                exclude_columns=tuple(all_columns[8:]),
            ),
        )
        assert all(
            set(q.query.group_by) <= set(narrow) for q in workload.queries
        )
        full = _contender(
            db, "full", SmallGroupConfig(base_rate=BASE_RATE, use_reservoir=False)
        )
        trimmed_technique = small_group_for_workload(
            db,
            workload,
            config=SmallGroupConfig(base_rate=BASE_RATE, use_reservoir=False),
        )
        trimmed = Contender(
            name="trimmed",
            technique=trimmed_technique,
            answer=lambda wq, rate: trimmed_technique.answer(wq.query),
        )
        result = run_experiment(db, workload, [full, trimmed], BASE_RATE, 0.5)
        series = {}
        for name, technique in (
            ("full", full.technique),
            ("trimmed", trimmed_technique),
        ):
            series[f"{name}/overall"] = {
                "rel_err": result.mean_metric(name, "rel_err"),
                "pct_groups": result.mean_metric(name, "pct_groups"),
                "stored_rows": float(
                    sum(i.n_rows for i in technique.sample_tables())
                ),
            }
        return FigureRun(figure="ablation-trimming", series=series)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="workload-trimmed candidate columns")
    full = run_result.series["full/overall"]
    trimmed = run_result.series["trimmed/overall"]
    # Trimming saves a lot of space ...
    assert trimmed["stored_rows"] < 0.8 * full["stored_rows"]
    # ... at (essentially) no accuracy cost on the training workload: the
    # trimmed column set covers every column the workload groups on.
    assert trimmed["pct_groups"] <= full["pct_groups"] + 3.0
    assert trimmed["rel_err"] <= full["rel_err"] * 1.15


def test_renormalized_storage_ablation(benchmark):
    """§5.2.2's join-synopsis renormalization: space saved, answers same."""

    def run():
        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=40000)
        workload = _workload(db, queries_per_combo=6, seed=25)
        inline = _contender(
            db,
            "inline",
            SmallGroupConfig(
                base_rate=BASE_RATE, use_reservoir=False, storage="inline"
            ),
        )
        renorm = _contender(
            db,
            "renormalized",
            SmallGroupConfig(
                base_rate=BASE_RATE,
                use_reservoir=False,
                storage="renormalized",
            ),
        )
        result = run_experiment(db, workload, [inline, renorm], BASE_RATE, 0.5)
        series = {}
        for name, contender in (("inline", inline), ("renormalized", renorm)):
            series[f"{name}/overall"] = {
                "rel_err": result.mean_metric(name, "rel_err"),
                "pct_groups": result.mean_metric(name, "pct_groups"),
                "sample_bytes": float(
                    sum(
                        i.table.memory_bytes()
                        for i in contender.technique.sample_tables()
                    )
                ),
            }
        return FigureRun(figure="ablation-renormalized", series=series)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="join synopses: inline vs renormalized")
    inline = run_result.series["inline/overall"]
    renorm = run_result.series["renormalized/overall"]
    # Renormalization is a pure storage-layout change: identical draws
    # give identical accuracy ...
    assert renorm["rel_err"] == inline["rel_err"]
    assert renorm["pct_groups"] == inline["pct_groups"]
    # ... while storing substantially fewer bytes.
    assert renorm["sample_bytes"] < 0.8 * inline["sample_bytes"]


def test_max_tables_cap_ablation(benchmark):
    """Capping small group tables per query trades accuracy for time."""

    def run():
        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=40000)
        workload = _workload(
            db, queries_per_combo=6, seed=23, group_column_counts=(4,)
        )
        contenders = [
            _contender(
                db,
                "uncapped",
                SmallGroupConfig(base_rate=BASE_RATE, use_reservoir=False),
            ),
            _contender(
                db,
                "cap1",
                SmallGroupConfig(
                    base_rate=BASE_RATE,
                    use_reservoir=False,
                    max_tables_per_query=1,
                ),
            ),
        ]
        result = run_experiment(db, workload, contenders, BASE_RATE, 0.5)
        series = {}
        for name in ("uncapped", "cap1"):
            series[f"{name}/overall"] = {
                "pct_groups": result.mean_metric(name, "pct_groups"),
                "rows_per_query": float(
                    np.mean([r.rows_scanned[name] for r in result.records])
                ),
            }
        return FigureRun(figure="ablation-cap", series=series)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="max_tables_per_query runtime cap")
    uncapped = run_result.series["uncapped/overall"]
    capped = run_result.series["cap1/overall"]
    # The cap reduces rows scanned and costs (some) accuracy.
    assert capped["rows_per_query"] < uncapped["rows_per_query"]
    assert capped["pct_groups"] >= uncapped["pct_groups"] * 0.95
