"""Figure 4 (a, b): Small Group vs Uniform on TPCH1G2.0z.

Paper shapes to reproduce: both RelErr and PctGroups grow with the number
of grouping columns for both techniques, the degradation being "more
pronounced for uniform sampling than for small group sampling"; small
group sampling misses far fewer groups at every point.
"""

import numpy as np

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_figure4
from repro.experiments.reporting import ascii_chart


def test_fig4_group_columns(benchmark):
    run = benchmark.pedantic(
        run_figure4, kwargs={"queries_per_combo": 16}, rounds=1, iterations=1
    )
    record_figure(run, note="TPCH1G2.0z, COUNT queries, matched sample space")
    gs = [1, 2, 3, 4]
    for metric in ("rel_err", "pct_groups"):
        print(
            ascii_chart(
                gs,
                {
                    "small_group": [run.series[f"small_group/{metric}"][g] for g in gs],
                    "uniform": [run.series[f"uniform/{metric}"][g] for g in gs],
                },
                title=f"Fig 4: {metric} vs #grouping columns",
            )
        )
    sg_err = run.series["small_group/rel_err"]
    uni_err = run.series["uniform/rel_err"]
    sg_pct = run.series["small_group/pct_groups"]
    uni_pct = run.series["uniform/pct_groups"]
    # Small group sampling wins at every number of grouping columns.
    for g in gs:
        assert sg_pct[g] < uni_pct[g]
    assert np.mean([sg_err[g] for g in gs]) < np.mean(
        [uni_err[g] for g in gs]
    )
    # Errors degrade with more grouping columns (allowing sampling noise
    # between adjacent points, the trend from 1 to the 3-4 plateau holds).
    assert sg_err[1] < max(sg_err[3], sg_err[4])
    assert uni_err[1] < max(uni_err[3], uni_err[4])
    assert sg_pct[1] < max(sg_pct[3], sg_pct[4])
    assert uni_pct[1] < max(uni_pct[3], uni_pct[4])
