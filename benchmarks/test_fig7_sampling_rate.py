"""Figure 7: error vs base sampling rate on TPCH1G2.0z.

Paper shapes to reproduce: "both RelErr and PctGroups for small group
sampling and uniform random sampling degrade smoothly as the sampling
rate is decreased", with small group sampling "consistently better ...
for all sampling rates".  (The paper sweeps 0.25%–4% of a 6M-row table;
we sweep the same factor-of-16 range around our scaled base rate.)
"""

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_figure7
from repro.experiments.reporting import ascii_chart


def test_fig7_rate_sweep(benchmark):
    run = benchmark.pedantic(
        run_figure7, kwargs={"queries_per_combo": 10}, rounds=1, iterations=1
    )
    record_figure(run, note="TPCH1G2.0z, rates on a log scale")
    sg = run.series["small_group/rel_err"]
    uni = run.series["uniform/rel_err"]
    rates = sorted(sg)
    print(
        ascii_chart(
            [f"{r:.2%}" for r in rates],
            {
                "small_group": [sg[r] for r in rates],
                "uniform": [uni[r] for r in rates],
            },
            title="Fig 7: RelErr vs base sampling rate",
        )
    )
    # Small group better at every rate, on both metrics.
    sg_pct = run.series["small_group/pct_groups"]
    uni_pct = run.series["uniform/pct_groups"]
    for r in rates:
        assert sg[r] < uni[r]
        assert sg_pct[r] < uni_pct[r]
    # Smooth degradation: error at the smallest rate is (within sampling
    # noise) the worst, at the largest rate the best, and the overall
    # trend is strongly decreasing, for both techniques and both metrics.
    for series in (sg, uni, sg_pct, uni_pct):
        values = [series[r] for r in rates]
        assert values[0] >= 0.95 * max(values)
        assert values[-1] == min(values)
        assert values[-1] < 0.6 * values[0]
