"""The comparison the paper deferred: workload-based sampling [15].

"We do not present comparisons against other sampling-based AQP systems
such as [10, 15] as these methods require the presence of workloads."
We have workloads, so: small group sampling vs an Icicles-style
workload-biased sample vs uniform, on

* a *focused* workload (queries repeatedly filter the same rare region —
  the regime workload-biasing was designed for), and
* a *diffuse* ad hoc workload (the paper's §5.2.3 generator).

Expected shape: icicles wins its home regime; on ad hoc queries it loses
its edge (touch-biasing oversamples common-value rows); small group
sampling is the robust choice across both — the argument for
syntax-driven dynamic selection.
"""

import numpy as np

from benchmarks.conftest import record_figure
from repro.baselines.icicles import IciclesConfig, IciclesSampling
from repro.datagen.tpch import generate_tpch
from repro.engine.expressions import AggFunc, AggregateSpec, InSet, Query
from repro.experiments.figures import FigureRun
from repro.experiments.harness import (
    Contender,
    build_small_group_contender,
    build_uniform_contender,
    matched_rates,
    run_experiment,
)
from repro.experiments.reporting import format_table
from repro.workload.generator import generate_workload
from repro.workload.spec import Workload, WorkloadConfig, WorkloadQuery

BASE_RATE = 0.04
COUNT = AggregateSpec(AggFunc.COUNT, alias="cnt")


def focused_workload(queries_per_column: int = 4) -> Workload:
    predicate = InSet("s_region", ["s_region_003", "s_region_004"])
    grouping = (
        "l_shipmode",
        "p_brand",
        "o_custnation",
        "p_type",
        "l_shipyear",
        "o_orderpriority",
        "p_container",
        "o_custsegment",
    )
    queries = []
    for repeat in range(queries_per_column):
        for c in grouping:
            queries.append(
                WorkloadQuery(
                    Query("lineitem", (COUNT,), (c,), predicate),
                    1,
                    1,
                    0.1,
                    "COUNT",
                    len(queries),
                )
            )
    return Workload(
        config=WorkloadConfig(queries_per_combo=1), queries=tuple(queries)
    )


def test_workload_based_vs_dynamic_selection(benchmark):
    def run():
        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=40000)
        focused = focused_workload()
        diffuse = generate_workload(
            db,
            WorkloadConfig(
                group_column_counts=(1, 2),
                queries_per_combo=6,
                seed=26,
            ),
        )
        series: dict[str, dict[object, float]] = {}
        for label, train, evaluate in (
            ("focused", focused, focused),
            ("diffuse", diffuse, diffuse),
        ):
            rates = matched_rates(evaluate, BASE_RATE, 0.5)
            icicles = IciclesSampling(
                train, IciclesConfig(rates=rates, seed=26)
            )
            icicles.preprocess(db)
            contenders = [
                build_small_group_contender(db, BASE_RATE, 0.5),
                build_uniform_contender(db, rates, seed=26),
                Contender(
                    name="icicles",
                    technique=icicles,
                    answer=lambda wq, rate, t=icicles: t.answer_at_rate(
                        wq.query, rate
                    ),
                ),
            ]
            result = run_experiment(db, evaluate, contenders, BASE_RATE, 0.5)
            for name in ("small_group", "uniform", "icicles"):
                series.setdefault(f"{name}/rel_err", {})[label] = (
                    result.mean_metric(name, "rel_err")
                )
                series.setdefault(f"{name}/pct_groups", {})[label] = (
                    result.mean_metric(name, "pct_groups")
                )
        return FigureRun(figure="beyond-icicles", series=series)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="the [15]-style comparison the paper deferred")
    rows = []
    for name in ("small_group", "icicles", "uniform"):
        for regime in ("focused", "diffuse"):
            rows.append(
                [
                    name,
                    regime,
                    run_result.series[f"{name}/rel_err"][regime],
                    run_result.series[f"{name}/pct_groups"][regime],
                ]
            )
    print(format_table(["technique", "workload", "RelErr", "PctGroups"], rows))

    err = lambda name, regime: run_result.series[f"{name}/rel_err"][regime]
    # Icicles wins its home regime against uniform ...
    assert err("icicles", "focused") < err("uniform", "focused")
    # ... but loses the edge on ad hoc queries.
    assert err("icicles", "diffuse") >= 0.9 * err("uniform", "diffuse")
    # Small group sampling is the robust choice in both regimes.
    assert err("small_group", "diffuse") < err("icicles", "diffuse")
    assert err("small_group", "focused") < err("uniform", "focused")
