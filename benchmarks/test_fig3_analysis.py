"""Figure 3 (a, b): the analytical model of Section 4.4.

Paper shapes to reproduce:

* 3(a) — SqRelErr vs sampling allocation ratio γ: small group sampling
  dips below the γ=0 (uniform) level, with a shallow basin over
  γ ∈ [0.25, 1.0]; "the exact choice of the sampling allocation ratio is
  not critical".
* 3(b) — SqRelErr vs skew z on a log scale: uniform is slightly better
  for near-uniform data; small group sampling is clearly superior at
  moderate-to-high skew.
"""

import numpy as np

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_figure3a, run_figure3b
from repro.experiments.reporting import ascii_chart


def test_fig3a_allocation_ratio(benchmark):
    run = benchmark.pedantic(run_figure3a, rounds=1, iterations=1)
    record_figure(run, note="g=2, sigma=0.1, c=50, z=1.8 (Theorem 4.1)")
    series = run.series["small_group/sq_rel_err"]
    gammas = np.array(sorted(series))
    errors = np.array([series[g] for g in gammas])
    uniform = run.extras["uniform"]
    print(
        ascii_chart(
            [f"{g:.1f}" for g in gammas[::4]],
            {"small_group": errors[::4].tolist()},
            title="Fig 3a: SqRelErr vs allocation ratio",
        )
    )
    # Shape assertions: gamma=0 equals uniform; basin below uniform.
    assert errors[0] == uniform
    best = errors.min()
    assert best < 0.85 * uniform
    basin = errors[(gammas >= 0.25) & (gammas <= 1.0)]
    assert basin.max() < uniform  # whole basin beats uniform
    assert basin.max() < 1.35 * best  # ... and is flat (choice not critical)

    # Cross-check the closed form against the Monte Carlo simulator at
    # gamma = 0 (Equation 1's setting, where cells and model coincide).
    from repro.analysis.model import AnalysisScenario
    from repro.analysis.simulation import simulate_uniform_sq_rel_err

    dense = AnalysisScenario(
        n_group_columns=2,
        selectivity=1.0,
        n_distinct=8,
        z=1.0,
        database_rows=1_000_000,
        budget_fraction=0.01,
    )
    from repro.analysis.model import expected_sq_rel_err_uniform

    sim = simulate_uniform_sq_rel_err(dense, trials=200, rng=0)
    predicted = expected_sq_rel_err_uniform(dense)
    print(
        f"model cross-check: closed form {predicted:.4g}, "
        f"simulated {sim.mean:.4g} ± {sim.std_error:.2g}"
    )
    assert abs(sim.mean - predicted) < 0.1 * predicted


def test_fig3b_skew(benchmark):
    run = benchmark.pedantic(run_figure3b, rounds=1, iterations=1)
    record_figure(run, note="g=3, sigma=0.3, c=50, gamma=0.5 (Theorem 4.1)")
    sg = run.series["small_group/sq_rel_err"]
    uni = run.series["uniform/sq_rel_err"]
    zs = sorted(sg)
    print(
        ascii_chart(
            [f"{z:.1f}" for z in zs],
            {
                "small_group": [sg[z] for z in zs],
                "uniform": [uni[z] for z in zs],
            },
            log_y=True,
            title="Fig 3b: SqRelErr vs skew (log scale)",
        )
    )
    # Uniform slightly preferable at z=1.0; small group wins at high skew.
    assert uni[zs[0]] < sg[zs[0]]
    assert sg[zs[-1]] < uni[zs[-1]] / 10
    # One crossover in between.
    signs = np.sign([sg[z] - uni[z] for z in zs])
    assert np.count_nonzero(np.diff(signs)) == 1
