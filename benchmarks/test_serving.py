"""Multi-client serving benchmark for the AQP server.

Spins up the real HTTP stack (``repro.server.make_server`` on a loopback
port) over a warm :class:`~repro.middleware.session.AQPSession`, then
hammers it with ``N in {1, 4, 16}`` concurrent :class:`repro.client.
ReproClient` threads rotating through a fixed approximate-query mix.
Emits ``BENCH_serving.json`` (QPS and p50/p99 latency per client count)
at the repo root.

Two different assertions, in the same spirit as
``benchmarks/test_parallel_scaling.py``:

* **Determinism is unconditional**: every answer served during the
  concurrent legs must be byte-identical (same ``fingerprint``) to a
  serial replay of the same query on the same session with no server
  and no concurrency at all.
* **Throughput is hardware-gated**: the warm-cache scaling bar
  (16-client QPS >= 3x single-client QPS) only applies when the box has
  at least 2 cores — on one CPU the GIL serialises the handler threads
  and the bar is meaningless.  The gate's outcome (pass value or an
  explicit ``"skipped (...)"`` string) is recorded in the JSON's
  ``gates`` object either way.

The >=3x bar on a 2-core box is intentionally more than core count:
warm-cache requests are dominated by lock-free cache reads and JSON
encoding, and identical in-flight queries coalesce through the server's
single-flight layer, so concurrency must buy real wall-clock overlap.

Sizes honour ``REPRO_BENCH_ROWS`` (fact rows; default 20000) so the CI
smoke step can run the same code path in seconds.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path

import pytest

from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.client import ReproClient
from repro.datagen.synthetic import (
    CategoricalSpec,
    MeasureSpec,
    generate_flat_table,
)
from repro.engine.database import Database
from repro.engine.parallel import ExecutionOptions
from repro.middleware.session import AQPSession
from repro.server import ServerConfig, make_server
from repro.server.protocol import encode_result

CLIENT_COUNTS = (1, 4, 16)
ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "20000"))
REQUESTS_PER_CLIENT = 24  # divisible by len(SQLS): each client sees the mix

SPEC = dict(
    categoricals=[
        CategoricalSpec("color", 24, 1.5),
        CategoricalSpec("status", 5, 0.8),
        CategoricalSpec("region", 8, 1.0),
    ],
    measures=[MeasureSpec("amount", distribution="lognormal")],
)

SQLS = (
    "SELECT color, COUNT(*) AS cnt, SUM(amount) AS total FROM flat "
    "GROUP BY color",
    "SELECT status, region, COUNT(*) AS cnt FROM flat "
    "GROUP BY status, region",
    "SELECT region, AVG(amount) AS mean FROM flat "
    "WHERE amount BETWEEN 0.5 AND 120.0 GROUP BY region",
)


@pytest.fixture(scope="module")
def session():
    db = Database([generate_flat_table("flat", ROWS, seed=83, **SPEC)])
    # Serial engine options: serving concurrency should come from the
    # handler threads, not from nested piece-execution pools.
    session = AQPSession(
        db, options=ExecutionOptions(executor="serial", chunk_rows=4096)
    )
    session.install(
        SmallGroupSampling(
            SmallGroupConfig(base_rate=0.05, use_reservoir=False, seed=9)
        )
    )
    yield session
    session.close()


@pytest.fixture(scope="module")
def served(session):
    server = make_server(
        session, port=0, config=ServerConfig(max_inflight=max(CLIENT_COUNTS) + 4)
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address
    server.shutdown()
    server.server_close()
    thread.join(10)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[rank]


def _storm(address, n_clients: int):
    """Run ``n_clients`` threads x REQUESTS_PER_CLIENT warm requests.

    Returns (elapsed_seconds, latencies, fingerprints_by_sql, errors).
    Each client starts the mix at a different offset so at any instant
    the server sees both identical (coalescable) and distinct queries.
    """
    host, port = address
    latencies: list[float] = []
    fingerprints: dict[str, set[str]] = {sql: set() for sql in SQLS}
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def client(index: int) -> None:
        local_lat: list[float] = []
        local_fp: dict[str, set[str]] = {sql: set() for sql in SQLS}
        with ReproClient(host=host, port=port) as rc:
            barrier.wait()
            for i in range(REQUESTS_PER_CLIENT):
                sql = SQLS[(index + i) % len(SQLS)]
                start = time.perf_counter()
                try:
                    result = rc.query(sql, mode="approx")
                except Exception as exc:  # noqa: BLE001 - recorded, not raised
                    with lock:
                        errors.append(f"client {index}: {exc}")
                    return
                local_lat.append(time.perf_counter() - start)
                local_fp[sql].add(result["fingerprint"])
        with lock:
            latencies.extend(local_lat)
            for sql, seen in local_fp.items():
                fingerprints[sql] |= seen

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join(120)
    elapsed = time.perf_counter() - start
    assert not any(t.is_alive() for t in threads), "client threads hung"
    return elapsed, latencies, fingerprints, errors


def test_serving_scaling(session, served):
    # Serial replay first: execute the mix directly on the session (no
    # server, no threads).  This both warms every cache the server legs
    # will hit and pins the expected byte-exact fingerprints.
    expected = {
        sql: encode_result(session.sql(sql, mode="approx"))["fingerprint"]
        for sql in SQLS
    }

    qps: dict[int, float] = {}
    p50_ms: dict[int, float] = {}
    p99_ms: dict[int, float] = {}
    for n_clients in CLIENT_COUNTS:
        elapsed, latencies, fingerprints, errors = _storm(served, n_clients)
        assert not errors, errors[:3]
        assert len(latencies) == n_clients * REQUESTS_PER_CLIENT
        # Determinism gate (unconditional): every concurrently-served
        # answer is byte-identical to the serial replay.
        for sql in SQLS:
            assert fingerprints[sql] == {expected[sql]}, (n_clients, sql)
        latencies.sort()
        qps[n_clients] = len(latencies) / elapsed
        p50_ms[n_clients] = _percentile(latencies, 0.50) * 1000.0
        p99_ms[n_clients] = _percentile(latencies, 0.99) * 1000.0

    stats = ReproClient(host=served[0], port=served[1]).stats()
    counters = stats.get("registry", {}).get("counters", {})

    cpu_count = os.cpu_count() or 1
    scaling = qps[16] / qps[1]
    gates: dict[str, object] = {}
    if cpu_count >= 2:
        gates["warm_qps_16_clients_vs_1_ge_3.0"] = round(scaling, 3)
    else:
        gates["warm_qps_16_clients_vs_1_ge_3.0"] = (
            f"skipped (cpu_count={cpu_count})"
        )

    payload = {
        "benchmark": "serving",
        "version": 1,
        "fact_rows": ROWS,
        "queries": len(SQLS),
        "requests_per_client": REQUESTS_PER_CLIENT,
        "cpu_count": cpu_count,
        "client_counts": list(CLIENT_COUNTS),
        "qps": {str(n): round(v, 2) for n, v in qps.items()},
        "latency_p50_ms": {str(n): round(v, 3) for n, v in p50_ms.items()},
        "latency_p99_ms": {str(n): round(v, 3) for n, v in p99_ms.items()},
        "qps_scaling_16_vs_1": round(scaling, 3),
        "server_counters": {
            name: counters[name]
            for name in sorted(counters)
            if name.startswith("server.")
        },
        "gates": gates,
        "answers_identical_to_serial_replay": True,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
    out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    applied = {
        name: value
        for name, value in gates.items()
        if not isinstance(value, str)
    }
    if "warm_qps_16_clients_vs_1_ge_3.0" in applied:
        assert applied["warm_qps_16_clients_vs_1_ge_3.0"] >= 3.0, payload
    if not applied:
        pytest.skip(
            "all throughput gates skipped: "
            + "; ".join(
                f"{name}: {value}" for name, value in sorted(gates.items())
            )
        )
