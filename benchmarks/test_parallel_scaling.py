"""Scaling benchmark for the parallel execution subsystem.

Measures cold-workload wall time for (a) piece execution — the §4.2.2
UNION ALL scatter — and (b) the chunked pre-processing scans, for both
scatter backends (``executor in {thread, process}``) at 1/2/4/8 workers
against a serial baseline, and emits ``BENCH_parallel.json`` (v2) at
the repo root.

Two different assertions:

* **Correctness is unconditional**: the answers must be byte-identical
  at every worker count and under every backend (the determinism
  contract of ``docs/internals.md`` §8).
* **Throughput is hardware-gated**: speedup bars only apply when the
  machine actually has the cores — workers cannot beat the clock on a
  single CPU.  Every gate's outcome (pass value or an explicit
  ``"skipped (...)"`` string) is recorded in the JSON's ``gates``
  object, so a skip is visible in the trajectory file instead of
  silently absent, and the pytest skip carries the same reason.

The v2 payload also records per-backend scatter overheads — thread
submit/wait seconds, process submit/wait seconds, shared-memory publish
(serialize) and worker attach seconds — pulled from the metrics
registry around the timed runs, so backend comparisons show *where* the
time goes, not just totals.

Sizes honour ``REPRO_BENCH_ROWS`` (fact rows; default 60000) so the CI
smoke step can run the same code path in seconds.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.combiner import execute_pieces
from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.datagen.tpch import generate_tpch
from repro.engine.parallel import ExecutionOptions, shutdown_default_pools
from repro.engine.stats import collect_column_stats
from repro.obs.registry import get_registry
from repro.sql import parse_query

WORKER_COUNTS = (1, 2, 4, 8)
BACKENDS = ("thread", "process")
ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "60000"))
REPEATS = 3

#: Histogram names whose sums make up each backend's scatter overhead.
_OVERHEAD_METRICS = {
    "thread": {
        "submit_seconds": "pool.submit_seconds",
        "wait_seconds": "pool.wait_seconds",
    },
    "process": {
        "submit_seconds": "procpool.submit_seconds",
        "wait_seconds": "procpool.wait_seconds",
        "publish_seconds": "arena.publish_seconds",
        "attach_seconds": "procpool.attach_seconds",
    },
}

SQLS = [
    "SELECT l_shipmode, p_brand, COUNT(*) AS cnt, SUM(l_quantity) AS qty "
    "FROM lineitem GROUP BY l_shipmode, p_brand",
    "SELECT o_custnation, l_returnflag, COUNT(*) AS cnt FROM lineitem "
    "GROUP BY o_custnation, l_returnflag",
    "SELECT p_brand, AVG(l_extendedprice) AS a FROM lineitem "
    "GROUP BY p_brand",
]


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale=1.0, z=1.5, rows_per_scale=ROWS, seed=30)


@pytest.fixture(scope="module")
def sg(db):
    technique = SmallGroupSampling(
        SmallGroupConfig(base_rate=0.04, use_reservoir=False)
    )
    technique.preprocess(db)
    return technique


def _answer_signature(answer):
    """Exact (not approximate) content of an answer, for identity checks."""
    return (
        answer.group_columns,
        answer.aggregate_names,
        {
            group: tuple((e.value, e.variance, e.exact) for e in estimates)
            for group, estimates in answer.groups.items()
        },
    )


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _overhead_snapshot(backend: str) -> dict[str, float]:
    """Scatter-overhead seconds for ``backend`` since the last registry
    reset (histogram sums; zero when an instrument never fired)."""
    histograms = get_registry().snapshot()["histograms"]
    return {
        key: round(float(histograms.get(name, {}).get("sum") or 0.0), 6)
        for key, name in _OVERHEAD_METRICS[backend].items()
    }


def test_parallel_scaling(db, sg):
    queries = [parse_query(sql) for sql in SQLS]
    plans = [sg.choose_samples(query) for query in queries]
    view = db.joined_view()

    def run_execution(options):
        return [
            execute_pieces(pieces, technique=sg.name, options=options)
            for pieces in plans
        ]

    def run_preprocessing(options):
        return collect_column_stats(view, options=options)

    # Serial baseline (the denominator for every speedup).
    serial_options = ExecutionOptions(executor="serial", chunk_rows=8192)
    serial_signatures = [
        _answer_signature(a) for a in run_execution(serial_options)
    ]
    serial_stats = run_preprocessing(serial_options)
    serial_execution = _best_of(lambda: run_execution(serial_options))
    serial_preprocess = _best_of(lambda: run_preprocessing(serial_options))

    execution_seconds: dict[str, dict[int, float]] = {}
    preprocess_seconds: dict[str, dict[int, float]] = {}
    overheads: dict[str, dict[str, float]] = {}

    for backend in BACKENDS:
        execution_seconds[backend] = {}
        preprocess_seconds[backend] = {}
        for workers in WORKER_COUNTS:
            options = ExecutionOptions(
                max_workers=workers, chunk_rows=8192, executor=backend
            )

            # Correctness gate (unconditional): byte-identical answers
            # and identical pre-processing statistics under every
            # backend x worker-count combination.  These untimed runs
            # also warm the pools so the timed runs measure steady state.
            signatures = [
                _answer_signature(a) for a in run_execution(options)
            ]
            assert signatures == serial_signatures, (backend, workers)
            stats = run_preprocessing(options)
            assert set(stats) == set(serial_stats), (backend, workers)
            for name, column_stats in serial_stats.items():
                assert stats[name].frequencies == column_stats.frequencies, (
                    backend,
                    workers,
                    name,
                )

            if workers == 4:
                get_registry().reset()
            execution_seconds[backend][workers] = _best_of(
                lambda options=options: run_execution(options)
            )
            preprocess_seconds[backend][workers] = _best_of(
                lambda options=options: run_preprocessing(options)
            )
            if workers == 4:
                overheads[backend] = _overhead_snapshot(backend)
    shutdown_default_pools()

    cpu_count = os.cpu_count() or 1
    speedups = {
        backend: {
            "execution_at_4": round(
                serial_execution / execution_seconds[backend][4], 3
            ),
            "preprocess_at_4": round(
                serial_preprocess / preprocess_seconds[backend][4], 3
            ),
        }
        for backend in BACKENDS
    }

    # Hardware-dependent throughput gates.  Outcomes are recorded
    # explicitly: a number means the bar applied (and passed, or the
    # assert below fails); a "skipped (...)" string says exactly why the
    # bar did not apply on this box.
    gates: dict[str, object] = {}
    if cpu_count >= 4:
        gates["thread_execution_speedup_at_4_ge_1.6"] = speedups["thread"][
            "execution_at_4"
        ]
    else:
        gates["thread_execution_speedup_at_4_ge_1.6"] = (
            f"skipped (cpu_count={cpu_count})"
        )
    if cpu_count < 2:
        gates["process_preprocess_speedup_at_4_ge_1.4"] = (
            f"skipped (cpu_count={cpu_count})"
        )
    elif ROWS < 60000:
        gates["process_preprocess_speedup_at_4_ge_1.4"] = (
            f"skipped (fact_rows={ROWS} < 60000; overhead-dominated)"
        )
    else:
        gates["process_preprocess_speedup_at_4_ge_1.4"] = speedups[
            "process"
        ]["preprocess_at_4"]

    payload = {
        "benchmark": "parallel_scaling",
        "version": 2,
        "fact_rows": db.fact_table.n_rows,
        "queries": len(SQLS),
        "repeats": REPEATS,
        "cpu_count": cpu_count,
        "worker_counts": list(WORKER_COUNTS),
        "backends": list(BACKENDS),
        "serial_execution_seconds": round(serial_execution, 6),
        "serial_preprocess_seconds": round(serial_preprocess, 6),
        "execution_seconds": {
            backend: {str(w): round(s, 6) for w, s in by_workers.items()}
            for backend, by_workers in execution_seconds.items()
        },
        "preprocess_seconds": {
            backend: {str(w): round(s, 6) for w, s in by_workers.items()}
            for backend, by_workers in preprocess_seconds.items()
        },
        "speedups_vs_serial": speedups,
        "scatter_overhead_seconds_at_4": overheads,
        "gates": gates,
        "answers_identical_across_backends_and_workers": True,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"
    out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    # Enforce whichever gates applied; skip visibly when none did (the
    # JSON above is already written either way).
    applied = {
        name: value
        for name, value in gates.items()
        if not isinstance(value, str)
    }
    if "thread_execution_speedup_at_4_ge_1.6" in applied:
        assert applied["thread_execution_speedup_at_4_ge_1.6"] >= 1.6, payload
    if "process_preprocess_speedup_at_4_ge_1.4" in applied:
        assert (
            applied["process_preprocess_speedup_at_4_ge_1.4"] >= 1.4
        ), payload
    if not applied:
        pytest.skip(
            "all throughput gates skipped: "
            + "; ".join(
                f"{name}: {value}" for name, value in sorted(gates.items())
            )
        )
