"""Scaling benchmark for the parallel execution subsystem.

Measures cold-workload wall time at 1/2/4/8 workers for (a) piece
execution — the §4.2.2 UNION ALL scatter — and (b) the chunked
pre-processing scans, and emits ``BENCH_parallel.json`` at the repo
root (same shape as ``BENCH_engine_cache.json``).

Two different assertions:

* **Correctness is unconditional**: the answers must be byte-identical
  at every worker count (the determinism contract of
  ``docs/internals.md`` §8).
* **Throughput is hardware-gated**: the >= 1.6x @ 4 workers check only
  runs when the machine actually has >= 4 CPUs — threads cannot beat
  the clock on a single core, and the recorded JSON carries
  ``cpu_count`` so readers can interpret the numbers.

Sizes honour ``REPRO_BENCH_ROWS`` (fact rows; default 60000) so the CI
smoke step can run the same code path in seconds.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.combiner import execute_pieces
from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.datagen.tpch import generate_tpch
from repro.engine.parallel import ExecutionOptions, shutdown_pool
from repro.engine.stats import collect_column_stats
from repro.sql import parse_query

WORKER_COUNTS = (1, 2, 4, 8)
ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "60000"))
REPEATS = 3

SQLS = [
    "SELECT l_shipmode, p_brand, COUNT(*) AS cnt, SUM(l_quantity) AS qty "
    "FROM lineitem GROUP BY l_shipmode, p_brand",
    "SELECT o_custnation, l_returnflag, COUNT(*) AS cnt FROM lineitem "
    "GROUP BY o_custnation, l_returnflag",
    "SELECT p_brand, AVG(l_extendedprice) AS a FROM lineitem "
    "GROUP BY p_brand",
]


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale=1.0, z=1.5, rows_per_scale=ROWS, seed=30)


@pytest.fixture(scope="module")
def sg(db):
    technique = SmallGroupSampling(
        SmallGroupConfig(base_rate=0.04, use_reservoir=False)
    )
    technique.preprocess(db)
    return technique


def _answer_signature(answer):
    """Exact (not approximate) content of an answer, for identity checks."""
    return (
        answer.group_columns,
        answer.aggregate_names,
        {
            group: tuple((e.value, e.variance, e.exact) for e in estimates)
            for group, estimates in answer.groups.items()
        },
    )


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_scaling(db, sg):
    queries = [parse_query(sql) for sql in SQLS]
    plans = [sg.choose_samples(query) for query in queries]
    view = db.joined_view()

    execution_seconds: dict[int, float] = {}
    preprocess_seconds: dict[int, float] = {}
    signatures: dict[int, list] = {}
    stats_by_workers: dict[int, dict] = {}

    for workers in WORKER_COUNTS:
        options = ExecutionOptions(max_workers=workers, chunk_rows=8192)

        def run_execution(options=options):
            return [
                execute_pieces(pieces, technique=sg.name, options=options)
                for pieces in plans
            ]

        def run_preprocessing(options=options):
            return collect_column_stats(view, options=options)

        signatures[workers] = [
            _answer_signature(a) for a in run_execution()
        ]
        stats_by_workers[workers] = run_preprocessing()
        execution_seconds[workers] = _best_of(run_execution)
        preprocess_seconds[workers] = _best_of(run_preprocessing)
    shutdown_pool()

    # Correctness gate (unconditional): byte-identical answers and
    # identical pre-processing statistics at every worker count.
    for workers in WORKER_COUNTS[1:]:
        assert signatures[workers] == signatures[1], workers
        serial_stats = stats_by_workers[1]
        assert set(stats_by_workers[workers]) == set(serial_stats)
        for name, stats in serial_stats.items():
            assert (
                stats_by_workers[workers][name].frequencies
                == stats.frequencies
            ), (workers, name)

    cpu_count = os.cpu_count() or 1
    execution_speedup_4 = execution_seconds[1] / execution_seconds[4]
    preprocess_speedup_4 = preprocess_seconds[1] / preprocess_seconds[4]
    payload = {
        "benchmark": "parallel_scaling",
        "fact_rows": db.fact_table.n_rows,
        "queries": len(SQLS),
        "repeats": REPEATS,
        "cpu_count": cpu_count,
        "worker_counts": list(WORKER_COUNTS),
        "execution_seconds": {
            str(w): round(s, 6) for w, s in execution_seconds.items()
        },
        "preprocess_seconds": {
            str(w): round(s, 6) for w, s in preprocess_seconds.items()
        },
        "execution_speedup_at_4": round(execution_speedup_4, 3),
        "preprocess_speedup_at_4": round(preprocess_speedup_4, 3),
        "answers_identical_across_workers": True,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"
    out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    # Throughput gate (hardware-dependent): threads cannot beat the
    # clock on fewer than 4 cores, so the 1.6x bar only applies there.
    if cpu_count >= 4:
        assert execution_speedup_4 >= 1.6, payload
