"""Figure 5 + §5.3.1 text: error vs per-group selectivity.

Paper shapes to reproduce: on SALES, small group sampling is consistently
better than uniform over the whole selectivity range (Figure 5); accuracy
improves for both methods as per-group selectivity grows; on TPCH1G2.0z
the same experiment shows a large gap in the mid-selectivity bins (the
text quotes RelErr 0.17 vs 1.23 at 0.16%).
"""

import numpy as np

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_figure5
from repro.experiments.reporting import ascii_chart


def _ordered_bins(series: dict) -> list:
    return sorted(series, key=lambda label: (label.startswith(">"), label))


def test_fig5_sales_selectivity(benchmark):
    run = benchmark.pedantic(
        run_figure5, kwargs={"queries_per_combo": 14}, rounds=1, iterations=1
    )
    record_figure(run, note="SALES, COUNT queries, per-group selectivity bins")
    sg = run.series["small_group/rel_err"]
    uni = run.series["uniform/rel_err"]
    bins = _ordered_bins(sg)
    shared = [b for b in bins if b in uni]
    print(
        ascii_chart(
            shared,
            {
                "small_group": [sg[b] for b in shared],
                "uniform": [uni[b] for b in shared],
            },
            title="Fig 5: RelErr vs per-group selectivity (SALES)",
        )
    )
    # Small group at least matches uniform in (almost) every bin and is
    # strictly better on average.
    wins = sum(sg[b] <= uni[b] * 1.05 for b in shared)
    assert wins >= len(shared) - 1
    assert np.mean([sg[b] for b in shared]) < np.mean(
        [uni[b] for b in shared]
    )
    # Accuracy improves with selectivity: last bin much better than first.
    assert sg[shared[-1]] < sg[shared[0]]
    assert uni[shared[-1]] < uni[shared[0]]


def test_fig5_tpch_variant(benchmark):
    run = benchmark.pedantic(
        run_figure5,
        kwargs={"database": "tpch", "queries_per_combo": 12},
        rounds=1,
        iterations=1,
    )
    record_figure(
        run, note="TPCH1G2.0z variant (the experiment described in §5.3.1)"
    )
    sg = run.series["small_group/rel_err"]
    uni = run.series["uniform/rel_err"]
    shared = [b for b in _ordered_bins(sg) if b in uni]
    mid = [b for b in shared[1:-1]]
    # The mid-selectivity gap the paper quotes: small group clearly ahead.
    assert np.mean([sg[b] for b in mid]) < np.mean([uni[b] for b in mid])
