"""§5.3.3: SUM queries — small group + outlier indexing vs outlier alone.

Paper numbers to reproduce in shape: overall RelErr 0.79 for small group
sampling enhanced with outlier indexing vs 1.08 for outlier indexing
alone; missed groups 37% vs 55%; plain uniform sampling is comparable to
outlier indexing alone on these metrics.
"""

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_table_outlier
from repro.experiments.reporting import format_table


def test_sum_queries_hybrid_vs_outlier(benchmark):
    run = benchmark.pedantic(
        run_table_outlier, kwargs={"queries_per_combo": 14}, rounds=1, iterations=1
    )
    record_figure(run, note="SALES, SUM queries over skewed measures")
    rows = [
        [
            name.split("/")[0],
            run.series[name]["rel_err"],
            run.series[name]["pct_groups"],
        ]
        for name in sorted(run.series)
    ]
    print(format_table(["technique", "RelErr", "PctGroups"], rows))
    hybrid = run.series["small_group+outlier/overall"]
    outlier = run.series["outlier_index/overall"]
    uniform = run.series["uniform/overall"]
    # The hybrid is consistently better than outlier indexing alone.
    assert hybrid["rel_err"] < outlier["rel_err"]
    assert hybrid["pct_groups"] < outlier["pct_groups"]
    # ... and better than plain uniform sampling.
    assert hybrid["rel_err"] < uniform["rel_err"]
    # Uniform is in the same accuracy class as outlier indexing alone.
    assert 0.5 < uniform["rel_err"] / outlier["rel_err"] < 2.0
