"""Lint-runner performance: shared node index vs per-rule tree walks.

PR 7 moved every rule onto :meth:`FileContext.nodes` — one pre-order
walk per file building a node-type index that all fourteen rules (and
the whole-program passes) filter, instead of each rule re-walking the
tree itself.  This benchmark keeps that refactor honest:

* **shared** — the production path: warm per-file indexes, every rule
  filters the one walk.
* **per-rule-walk** — the legacy discipline, reproduced by resetting
  each context's index before every rule so each rule's first
  ``nodes()`` call triggers a fresh full traversal (exactly the cost of
  the old ``for node in ast.walk(ctx.tree)`` loops, same rule logic).

Both modes run the same rules over the same parsed contexts and must
produce identical findings.  Results go to ``BENCH_lint.json`` at the
repo root: full-``src/`` wall time, files/sec, and the before/after
pair.  Two gates:

* the shared-index run is no slower than the per-rule-walk baseline
  (small tolerance for timer noise);
* a full lint of ``src/`` — parse, all rules, project index, call
  graph, dataflow — finishes under the 30-second CI budget.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.lint.core import _run_rules, all_rules, parse_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

REPEATS = int(os.environ.get("REPRO_LINT_BENCH_REPEATS", "3"))

#: Full-src lint must stay inside the CI budget (seconds).
BUDGET_SECONDS = 30.0

#: Shared must beat legacy up to timer noise on tiny trees.
NOISE_TOLERANCE = 1.10


def _reset_context(ctx) -> None:
    """Drop a context's caches so the next ``nodes()`` call re-walks."""
    ctx._symbols = None
    ctx._by_type = None
    ctx._aliases = None


def _run_shared(contexts, rules):
    """Production path: one walk per file, shared across all rules."""
    for ctx in contexts:
        _reset_context(ctx)
    start = time.perf_counter()
    findings = _run_rules(contexts, rules)
    return time.perf_counter() - start, findings


def _run_per_rule_walk(contexts, rules):
    """Legacy discipline: every rule re-walks every applicable file."""
    for ctx in contexts:
        _reset_context(ctx)
    start = time.perf_counter()
    findings = []
    file_rules = [r for r in rules if not r.project_wide]
    for rule in file_rules:
        for ctx in contexts:
            _reset_context(ctx)  # next nodes() call walks the tree again
            if rule.applies_to(ctx):
                findings.extend(rule.check(ctx))
    project_rules = [r for r in rules if r.project_wide]
    if project_rules:
        for ctx in contexts:
            _reset_context(ctx)
        from repro.lint.project import ProjectIndex

        project = ProjectIndex(contexts)
        for rule in project_rules:
            findings.extend(rule.check_project(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return time.perf_counter() - start, findings


def test_shared_index_not_slower_than_per_rule_walks():
    rules = all_rules()
    contexts, errors, n_files = parse_paths([SRC])
    assert not errors and n_files > 50

    # Full pipeline wall time (parse + everything), for the CI budget.
    start = time.perf_counter()
    fresh_contexts, _, _ = parse_paths([SRC])
    _run_rules(fresh_contexts, rules)
    full_seconds = time.perf_counter() - start

    shared_best = legacy_best = float("inf")
    shared_findings = legacy_findings = None
    for _ in range(REPEATS):
        seconds, findings = _run_shared(contexts, rules)
        if seconds < shared_best:
            shared_best, shared_findings = seconds, findings
        seconds, findings = _run_per_rule_walk(contexts, rules)
        if seconds < legacy_best:
            legacy_best, legacy_findings = seconds, findings

    # Same rules, same files: the index is an optimisation, not a
    # behaviour change.
    assert shared_findings == legacy_findings

    payload = {
        "benchmark": "lint_runner",
        "files": n_files,
        "rules": len(rules),
        "repeats": REPEATS,
        "full_lint_seconds": round(full_seconds, 4),
        "files_per_second": round(n_files / full_seconds, 1),
        "shared_index_seconds": round(shared_best, 4),
        "per_rule_walk_seconds": round(legacy_best, 4),
        "speedup": round(legacy_best / shared_best, 2),
        "findings_identical": True,
        "budget_seconds": BUDGET_SECONDS,
    }
    out = REPO_ROOT / "BENCH_lint.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))

    assert full_seconds < BUDGET_SECONDS, payload
    assert shared_best <= legacy_best * NOISE_TOLERANCE, payload
