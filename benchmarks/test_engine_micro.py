"""Micro-benchmarks of the engine substrate (multi-round timings).

These are classic pytest-benchmark timings (not paper figures): group-by
aggregation throughput, star-join resolution, predicate evaluation, the
small-group rewrite overhead, and pre-processing.  They guard the cost
model the speedup experiments rely on (time ∝ rows scanned).
"""

import pytest

from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.datagen.tpch import generate_tpch
from repro.engine.executor import aggregate_table, execute
from repro.engine.expressions import AggFunc, AggregateSpec, InSet, Query
from repro.sql import parse_query

COUNT = AggregateSpec(AggFunc.COUNT, alias="cnt")


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale=1.0, z=1.5, rows_per_scale=60000, seed=30)


@pytest.fixture(scope="module")
def view(db):
    return db.joined_view()


@pytest.fixture(scope="module")
def sg(db):
    technique = SmallGroupSampling(
        SmallGroupConfig(base_rate=0.04, use_reservoir=False)
    )
    technique.preprocess(db)
    return technique


def test_groupby_count_throughput(benchmark, view):
    query = Query("lineitem", (COUNT,), ("l_shipmode", "l_returnflag"))
    result = benchmark(aggregate_table, view, query)
    assert result.total() == view.n_rows


def test_groupby_sum_with_predicate(benchmark, view):
    query = Query(
        "lineitem",
        (AggregateSpec(AggFunc.SUM, "l_extendedprice", alias="s"),),
        ("p_brand",),
        where=InSet("s_region", ["s_region_000", "s_region_001"]),
    )
    result = benchmark(aggregate_table, view, query)
    assert result.n_groups > 0


def test_star_join_execution(benchmark, db):
    query = Query(
        "lineitem", (COUNT,), ("p_brand", "o_custnation")
    )
    result = benchmark(execute, db, query)
    assert result.total() == db.fact_table.n_rows


def test_smallgroup_answer_latency(benchmark, sg):
    query = Query("lineitem", (COUNT,), ("l_shipmode", "p_brand"))
    answer = benchmark(sg.answer, query)
    assert answer.n_groups > 0


def test_sql_parse_throughput(benchmark):
    sql = (
        "SELECT p_brand, l_shipmode, COUNT(*) AS cnt FROM lineitem "
        "WHERE s_nation IN ('s_nation_000', 's_nation_001') "
        "AND l_quantity BETWEEN 1 AND 10 GROUP BY p_brand, l_shipmode"
    )
    query = benchmark(parse_query, sql)
    assert query.group_by == ("p_brand", "l_shipmode")


def test_preprocessing_latency(benchmark, db):
    def build():
        technique = SmallGroupSampling(
            SmallGroupConfig(base_rate=0.01, use_reservoir=False)
        )
        technique.preprocess(db)
        return technique

    technique = benchmark.pedantic(build, rounds=3, iterations=1)
    assert technique.metadata()


def test_table_save_load_roundtrip(benchmark, sg, tmp_path_factory):
    from repro.storage import load_table, save_table

    table = sg.sample_catalog().table("sg_overall")
    directory = tmp_path_factory.mktemp("bench_storage")

    def roundtrip():
        path = save_table(table, directory / "overall.npz")
        return load_table(path)

    loaded = benchmark(roundtrip)
    assert loaded.n_rows == table.n_rows


def test_middleware_sql_latency(benchmark, db, sg):
    from repro.middleware import AQPSession

    session = AQPSession(db, sg)
    sql = (
        "SELECT l_shipmode, p_brand, COUNT(*) AS cnt FROM lineitem "
        "GROUP BY l_shipmode, p_brand"
    )
    result = benchmark(session.sql, sql)
    assert result.approx is not None and result.approx.n_groups > 0
