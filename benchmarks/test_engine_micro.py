"""Micro-benchmarks of the engine substrate (multi-round timings).

These are classic pytest-benchmark timings (not paper figures): group-by
aggregation throughput, star-join resolution, predicate evaluation, the
small-group rewrite overhead, and pre-processing.  They guard the cost
model the speedup experiments rely on (time ∝ rows scanned).
"""

import pytest

from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.datagen.tpch import generate_tpch
from repro.engine.executor import aggregate_table, execute
from repro.engine.expressions import AggFunc, AggregateSpec, InSet, Query
from repro.sql import parse_query

COUNT = AggregateSpec(AggFunc.COUNT, alias="cnt")


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale=1.0, z=1.5, rows_per_scale=60000, seed=30)


@pytest.fixture(scope="module")
def view(db):
    return db.joined_view()


@pytest.fixture(scope="module")
def sg(db):
    technique = SmallGroupSampling(
        SmallGroupConfig(base_rate=0.04, use_reservoir=False)
    )
    technique.preprocess(db)
    return technique


def test_groupby_count_throughput(benchmark, view):
    query = Query("lineitem", (COUNT,), ("l_shipmode", "l_returnflag"))
    result = benchmark(aggregate_table, view, query)
    assert result.total() == view.n_rows


def test_groupby_sum_with_predicate(benchmark, view):
    query = Query(
        "lineitem",
        (AggregateSpec(AggFunc.SUM, "l_extendedprice", alias="s"),),
        ("p_brand",),
        where=InSet("s_region", ["s_region_000", "s_region_001"]),
    )
    result = benchmark(aggregate_table, view, query)
    assert result.n_groups > 0


def test_star_join_execution(benchmark, db):
    query = Query(
        "lineitem", (COUNT,), ("p_brand", "o_custnation")
    )
    result = benchmark(execute, db, query)
    assert result.total() == db.fact_table.n_rows


def test_smallgroup_answer_latency(benchmark, sg):
    query = Query("lineitem", (COUNT,), ("l_shipmode", "p_brand"))
    answer = benchmark(sg.answer, query)
    assert answer.n_groups > 0


def test_sql_parse_throughput(benchmark):
    sql = (
        "SELECT p_brand, l_shipmode, COUNT(*) AS cnt FROM lineitem "
        "WHERE s_nation IN ('s_nation_000', 's_nation_001') "
        "AND l_quantity BETWEEN 1 AND 10 GROUP BY p_brand, l_shipmode"
    )
    query = benchmark(parse_query, sql)
    assert query.group_by == ("p_brand", "l_shipmode")


def test_preprocessing_latency(benchmark, db):
    def build():
        technique = SmallGroupSampling(
            SmallGroupConfig(base_rate=0.01, use_reservoir=False)
        )
        technique.preprocess(db)
        return technique

    technique = benchmark.pedantic(build, rounds=3, iterations=1)
    assert technique.metadata()


def test_table_save_load_roundtrip(benchmark, sg, tmp_path_factory):
    from repro.storage import load_table, save_table

    table = sg.sample_catalog().table("sg_overall")
    directory = tmp_path_factory.mktemp("bench_storage")

    def roundtrip():
        path = save_table(table, directory / "overall.npz")
        return load_table(path)

    loaded = benchmark(roundtrip)
    assert loaded.n_rows == table.n_rows


def test_middleware_sql_latency(benchmark, db, sg):
    from repro.middleware import AQPSession

    session = AQPSession(db, sg)
    sql = (
        "SELECT l_shipmode, p_brand, COUNT(*) AS cnt FROM lineitem "
        "GROUP BY l_shipmode, p_brand"
    )
    result = benchmark(session.sql, sql)
    assert result.approx is not None and result.approx.n_groups > 0


REPEATED_WORKLOAD_SQLS = [
    "SELECT l_shipmode, COUNT(*) AS cnt FROM lineitem GROUP BY l_shipmode",
    "SELECT p_brand, COUNT(*) AS cnt, SUM(l_extendedprice) AS s "
    "FROM lineitem GROUP BY p_brand",
    "SELECT o_custnation, l_returnflag, COUNT(*) AS cnt FROM lineitem "
    "GROUP BY o_custnation, l_returnflag",
    "SELECT o_custnation, SUM(l_quantity) AS q FROM lineitem "
    "WHERE l_shipmode IN ('l_shipmode_000', 'l_shipmode_001') "
    "GROUP BY o_custnation",
    "SELECT p_brand, l_returnflag, AVG(l_extendedprice) AS a FROM lineitem "
    "GROUP BY p_brand, l_returnflag",
]


def test_repeated_workload_cache_speedup(db, sg):
    """100-query repeated group-by stream: warm cache vs per-query cold.

    Each query is served in ``mode="both"`` — the approximate answer plus
    the exact audit answer, the shape the experiments use to measure
    error — so the stream exercises every cache layer: parse/plan memos
    on the approximate side, join-position, gathered-column, and
    group-id caches on the exact side.  The cold pass clears the
    execution cache and the session memos before every query — the seed
    executor's effective behaviour; the warm pass reuses them across the
    stream.  Both answers must match the cold pass on every query, and
    the warm stream must be at least 3x faster.  Emits
    ``BENCH_engine_cache.json`` (queries/sec cold vs warm) at the repo
    root for future perf comparisons.

    Also measures profiling overhead: the warm stream with
    ``profile=True`` must stay within 5% of the unprofiled warm
    wall-clock and byte-identical in its answers — the observability
    acceptance criterion.  The two sides are timed in strict
    per-query alternation (unprofiled, then profiled, same query),
    which cancels the machine drift that whole-pass comparisons on a
    shared box cannot.
    """
    import json
    import time
    from pathlib import Path

    from repro.engine.cache import get_cache
    from repro.middleware import AQPSession

    stream = [
        REPEATED_WORKLOAD_SQLS[i % len(REPEATED_WORKLOAD_SQLS)]
        for i in range(100)
    ]
    cache = get_cache()

    def run(session, cold, profile=False):
        answers = []
        start = time.perf_counter()
        for sql in stream:
            if cold:
                cache.clear()
                session._parse_memo.clear()
                session._plan_memo.clear()
            result = session.sql(sql, mode="both", profile=profile)
            approx = result.approx
            answers.append(
                (
                    {
                        group: tuple(e.value for e in estimates)
                        for group, estimates in approx.groups.items()
                    },
                    result.exact.rows,
                )
            )
        return answers, time.perf_counter() - start

    cold_answers, cold_seconds = run(AQPSession(db, sg), cold=True)
    cache.clear()
    cache.metrics.reset()
    warm_answers, warm_seconds = run(AQPSession(db, sg), cold=False)

    assert warm_answers == cold_answers  # identical, query for query
    speedup = cold_seconds / warm_seconds

    # Profiling overhead, paired per query so machine drift cancels.
    profiled_answers, _ = run(AQPSession(db, sg), cold=False, profile=True)
    assert profiled_answers == cold_answers  # answer-neutral
    session = AQPSession(db, sg)
    for sql in stream:  # warm this session's memos first
        session.sql(sql, mode="both")
    paired_warm = paired_profiled = 0.0
    for _ in range(3):
        for sql in stream:
            t0 = time.perf_counter()
            session.sql(sql, mode="both")
            t1 = time.perf_counter()
            session.sql(sql, mode="both", profile=True)
            t2 = time.perf_counter()
            paired_warm += t1 - t0
            paired_profiled += t2 - t1
    profiling_overhead = paired_profiled / paired_warm - 1.0

    payload = {
        "benchmark": "repeated_workload_cache",
        "mode": "both",
        "queries": len(stream),
        "distinct_queries": len(REPEATED_WORKLOAD_SQLS),
        "fact_rows": db.fact_table.n_rows,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "cold_qps": round(len(stream) / cold_seconds, 3),
        "warm_qps": round(len(stream) / warm_seconds, 3),
        "speedup": round(speedup, 3),
        "paired_warm_seconds": round(paired_warm, 6),
        "paired_profiled_seconds": round(paired_profiled, 6),
        "profiling_overhead": round(profiling_overhead, 4),
        "cache_metrics": cache.metrics.snapshot(),
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_engine_cache.json"
    out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
    assert speedup >= 3.0, payload
    assert profiling_overhead < 0.05, payload
