"""Figure 6: RelErr vs data skew on the TPCH1Gyz family.

Paper shapes to reproduce: "uniform sampling slightly outperforms small
group sampling at low skew, while small group sampling does significantly
better at moderate to high skew"; the win region includes the 90-10 /
80-20 range z ∈ [1.5, 2.0].  Uniform's accuracy recovers somewhat at very
high skew (predicates filter out most rare values, leaving large groups).
"""

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_figure6
from repro.experiments.reporting import ascii_chart


def test_fig6_skew_sweep(benchmark):
    run = benchmark.pedantic(
        run_figure6, kwargs={"queries_per_combo": 10}, rounds=1, iterations=1
    )
    record_figure(run, note="TPCH1Gyz for z in {1.0, 1.5, 2.0, 2.5}")
    sg = run.series["small_group/rel_err"]
    uni = run.series["uniform/rel_err"]
    zs = sorted(sg)
    print(
        ascii_chart(
            zs,
            {
                "small_group": [sg[z] for z in zs],
                "uniform": [uni[z] for z in zs],
            },
            title="Fig 6: RelErr vs skew z",
        )
    )
    # Low skew: uniform at least competitive (within noise).
    assert uni[1.0] <= sg[1.0] * 1.10
    # Moderate-to-high skew (the 90-10 / 80-20 regime): small group wins.
    assert sg[1.5] < uni[1.5]
    assert sg[2.0] < uni[2.0]
    # PctGroups trends match RelErr trends.
    sg_pct = run.series["small_group/pct_groups"]
    uni_pct = run.series["uniform/pct_groups"]
    assert sg_pct[1.5] < uni_pct[1.5]
    assert sg_pct[2.0] < uni_pct[2.0]
