"""Footnote to §5.3.2: why the paper ran *basic* congress.

"We implemented a version of congressional sampling called basic
congress; the more sophisticated congress algorithm did not scale for our
experimental databases."  Full congress enumerates every grouping over
the candidate columns — 2^k allocations — which this bench demonstrates
directly: preprocessing cost doubles per added column while basic
congress stays flat.  On a narrow column set, where full congress *is*
feasible, it covers sub-grouping queries at least as well as basic.
"""

import time

import numpy as np

from benchmarks.conftest import record_figure
from repro.baselines.congress import BasicCongress, CongressConfig, FullCongress
from repro.datagen.tpch import generate_tpch
from repro.engine.executor import execute
from repro.experiments.figures import FigureRun
from repro.experiments.reporting import format_table
from repro.workload.generator import eligible_grouping_columns
from repro.workload.spec import WorkloadConfig


def test_full_congress_exponential_preprocessing(benchmark):
    def run():
        db = generate_tpch(scale=1.0, z=1.5, rows_per_scale=30000)
        view = db.joined_view()
        columns = eligible_grouping_columns(view, WorkloadConfig())
        series = {
            "full_congress/time_s": {},
            "full_congress/groupings": {},
            "basic_congress/time_s": {},
        }
        for k in (2, 4, 6, 8, 10):
            config = CongressConfig(rates=(0.02,), columns=tuple(columns[:k]))
            start = time.perf_counter()
            full = FullCongress(config)
            report = full.preprocess(db)
            series["full_congress/time_s"][k] = time.perf_counter() - start
            series["full_congress/groupings"][k] = float(
                report.details["n_groupings"]
            )
            start = time.perf_counter()
            BasicCongress(config).preprocess(db)
            series["basic_congress/time_s"][k] = time.perf_counter() - start
        return FigureRun(figure="congress-scaling", series=series)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="2^k grouping enumeration (paper footnote 2)")
    groupings = run_result.series["full_congress/groupings"]
    ks = sorted(groupings)
    print(
        format_table(
            ["columns", "groupings", "full time (s)", "basic time (s)"],
            [
                [
                    k,
                    int(groupings[k]),
                    run_result.series["full_congress/time_s"][k],
                    run_result.series["basic_congress/time_s"][k],
                ]
                for k in ks
            ],
        )
    )
    # Grouping count doubles per column: the exponential wall.
    for a, b in zip(ks, ks[1:]):
        assert groupings[b] == groupings[a] * 2 ** (b - a)
    # Full congress time grows much faster than basic congress time.
    full_growth = (
        run_result.series["full_congress/time_s"][ks[-1]]
        / run_result.series["full_congress/time_s"][ks[0]]
    )
    basic_growth = (
        run_result.series["basic_congress/time_s"][ks[-1]]
        / max(1e-9, run_result.series["basic_congress/time_s"][ks[0]])
    )
    assert full_growth > 4 * basic_growth


def test_full_congress_covers_subgroupings_on_narrow_set(benchmark):
    def run():
        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=30000)
        view = db.joined_view()
        columns = tuple(
            eligible_grouping_columns(view, WorkloadConfig())[:4]
        )
        from repro.engine.expressions import AggFunc, AggregateSpec, Query

        count = (AggregateSpec(AggFunc.COUNT, alias="cnt"),)
        queries = [Query("lineitem", count, (c,)) for c in columns]
        queries += [
            Query("lineitem", count, (columns[0], columns[1])),
            Query("lineitem", count, (columns[2], columns[3])),
        ]
        missed = {"congress": 0, "basic_congress": 0}
        for seed in range(6):
            config = CongressConfig(rates=(0.01,), columns=columns, seed=seed)
            contenders = {
                "congress": FullCongress(config),
                "basic_congress": BasicCongress(config),
            }
            for name, technique in contenders.items():
                technique.preprocess(db)
                for query in queries:
                    exact = execute(db, query)
                    answer = technique.answer(query)
                    missed[name] += exact.n_groups - len(
                        set(answer.as_dict()) & exact.groups()
                    )
        return FigureRun(
            figure="congress-subgroupings",
            series={
                "missed_groups/total": {
                    name: float(value) for name, value in missed.items()
                }
            },
        )

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(run_result, note="narrow column set, sub-grouping coverage")
    missed = run_result.series["missed_groups/total"]
    # Full congress allocates for every sub-grouping explicitly and so
    # misses no more groups than basic congress.
    assert missed["congress"] <= missed["basic_congress"]
