"""Data-skipping benchmark: rows touched and wall time, on vs off.

Runs point (``region = ...``) and range (``amount BETWEEN ...``)
selections over two physical layouts of the same logical table —
*clustered* (values laid out in runs, the layout zone maps are built
for) and *shuffled* (a fixed permutation of the same rows, the
adversarial layout where chunk min/max spans everything) — and emits
``BENCH_skipping.json`` at the repo root.

Two different assertions, mirroring ``test_parallel_scaling.py``:

* **Correctness and rows-touched are unconditional**: answers must be
  identical with skipping on and off, and on clustered data the
  selective predicates must touch >= 5x fewer rows with skipping on
  (that is the whole point of the subsystem, and it is a deterministic
  property of the zone maps, not of the hardware).
* **Wall time is hardware-gated**: the timing assertion only runs on
  machines with >= 4 CPUs, like the parallel-scaling gate — loaded CI
  runners and single-core boxes produce timing noise larger than the
  microsecond-scale scan savings at smoke sizes.

Each timed call executes a *batch* of epsilon-varied predicates so the
measured region is comfortably above timer resolution and none of the
queries hits the cross-query predicate-mask cache (a cached mask would
time the cache, not the scan).  Zone maps are warmed before timing:
their build cost is a one-off per column amortised across every later
query, and ``build_seconds`` is recorded separately in the JSON.

Sizes honour ``REPRO_BENCH_ROWS`` (default 60000) so the CI smoke step
runs the same code path in seconds.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.engine.cache import get_cache
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.engine.expressions import (
    AggFunc,
    AggregateSpec,
    Between,
    Equals,
    Query,
)
from repro.engine.parallel import ExecutionOptions, shutdown_pool
from repro.engine.table import Table
from repro.engine.zonemap import PieceSkipStats, column_zone_map

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "60000"))
REPEATS = 3
CHUNK_ROWS = max(256, ROWS // 30)
N_REGIONS = 20
QUERY_BATCH = 8

AGGREGATES = (
    AggregateSpec(AggFunc.COUNT, alias="cnt"),
    AggregateSpec(AggFunc.SUM, "amount", alias="total"),
)


def _make_db(clustered: bool) -> Database:
    """The same logical rows in a clustered or shuffled physical order."""
    region = np.repeat(
        [f"r{i:03d}" for i in range(N_REGIONS)], ROWS // N_REGIONS
    )[:ROWS]
    amount = np.linspace(0.0, 100.0, num=ROWS)
    grp = np.array([f"g{i % 4}" for i in range(ROWS)])
    if not clustered:
        order = np.random.default_rng(42).permutation(ROWS)
        region, amount, grp = region[order], amount[order], grp[order]
    table = Table.from_dict(
        "events",
        {"region": list(region), "amount": amount, "grp": list(grp)},
    )
    return Database([table])


def _point_query(repeat: int) -> Query:
    # Rotate the region so each repeat is a fresh predicate (no mask
    # cache hit) with identical selectivity (equal-sized regions).
    return Query(
        "events",
        AGGREGATES,
        ("grp",),
        where=Equals("region", f"r{repeat % N_REGIONS:03d}"),
    )


def _range_query(repeat: int) -> Query:
    # An epsilon shift keeps the predicate object fresh without moving
    # any row across the boundary (values are spaced ~100/ROWS apart).
    eps = repeat * 1e-9
    return Query(
        "events",
        AGGREGATES,
        ("grp",),
        where=Between("amount", 10.0 + eps, 15.0 + eps),
    )


QUERY_MAKERS = {"point": _point_query, "range": _range_query}


def _rows_touched(db: Database, query: Query, options) -> int:
    stats = PieceSkipStats(description="bench")
    execute(db, query, options=options, skip_stats=stats)
    return stats.rows_touched


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_batch(db: Database, maker, options, base: int):
    def run():
        for repeat in range(QUERY_BATCH):
            execute(db, maker(base + repeat), options=options)

    return run


def test_skipping():
    on = ExecutionOptions(chunk_rows=CHUNK_ROWS, data_skipping=True)
    off = ExecutionOptions(chunk_rows=CHUNK_ROWS, data_skipping=False)
    cache = get_cache()

    results: dict[str, dict] = {}
    build_seconds: dict[str, float] = {}
    for layout in ("clustered", "shuffled"):
        db = _make_db(clustered=layout == "clustered")
        cache.clear()

        # Warm the zone maps once (their one-off build cost is reported,
        # not folded into per-query timings).
        start = time.perf_counter()
        for name in ("region", "amount", "grp"):
            column_zone_map(db.fact_table.column(name), on)
        build_seconds[layout] = time.perf_counter() - start

        results[layout] = {}
        for kind, maker in QUERY_MAKERS.items():
            # Correctness first: identical answers with skipping on/off.
            answer_on = execute(db, maker(0), options=on)
            answer_off = execute(db, maker(0), options=off)
            assert answer_on.rows == answer_off.rows, (layout, kind)
            assert answer_on.raw_counts == answer_off.raw_counts

            # Distinct repeat indices: the same predicate value would hit
            # the mask cached by the first measurement and report 0 rows.
            touched_on = _rows_touched(db, maker(1), on)
            touched_off = _rows_touched(db, maker(2), off)
            assert touched_off == ROWS

            # Distinct predicate ranges per (layout, kind, setting) so no
            # timed query ever hits the predicate-mask cache.
            seconds_on = _best_of(_timed_batch(db, maker, on, base=100))
            seconds_off = _best_of(_timed_batch(db, maker, off, base=200))
            results[layout][kind] = {
                "rows_touched_on": touched_on,
                "rows_touched_off": touched_off,
                "rows_touched_reduction": round(
                    touched_off / max(1, touched_on), 2
                ),
                "seconds_on": round(seconds_on, 6),
                "seconds_off": round(seconds_off, 6),
                "speedup": round(seconds_off / seconds_on, 3),
            }
    shutdown_pool()

    cpu_count = os.cpu_count() or 1
    payload = {
        "benchmark": "data_skipping",
        "rows": ROWS,
        "chunk_rows": CHUNK_ROWS,
        "query_batch": QUERY_BATCH,
        "repeats": REPEATS,
        "cpu_count": cpu_count,
        "zone_map_build_seconds": {
            layout: round(s, 6) for layout, s in build_seconds.items()
        },
        "layouts": results,
        "answers_identical_on_off": True,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_skipping.json"
    out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    # Rows-touched gate (unconditional): on clustered data a 5%-selective
    # predicate must scan >= 5x fewer rows with skipping on.
    for kind in QUERY_MAKERS:
        reduction = results["clustered"][kind]["rows_touched_reduction"]
        assert reduction >= 5.0, (kind, payload)

    # Timing gate (hardware-dependent), mirroring the parallel-scaling
    # benchmark's CPU-count gate.
    if cpu_count >= 4:
        for kind in QUERY_MAKERS:
            assert results["clustered"][kind]["speedup"] > 1.0, (
                kind,
                payload,
            )
