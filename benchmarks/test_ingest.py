"""Ingestion benchmark: incremental append maintenance vs full invalidation.

One workload, emitting ``BENCH_ingest.json`` at the repo root: a
chunk-aligned append stream racing queries.  A clustered table answers
the same BETWEEN aggregate after every appended batch, so each append
forces the zone maps back into service immediately.  With
``incremental_appends`` off, every append invalidates the summaries and
the next query rebuilds them over the *whole* table; with the flag on,
the append event extends them, recomputing only the appended tail
chunks.  ``ingest.rows_recomputed`` counts exactly the rows whose stored
values were re-read to (re)build summaries, so the gate is
deterministic: the invalidation path must recompute >= 5x the rows the
incremental path does, with byte-identical answers.

Chunk-aligned batches are the favourable case by design — the paper's
appends arrive in load batches, and ``chunk_ranges``'s balanced layout
keeps every old boundary stable exactly when the row count grows by a
multiple of ``chunk_rows``.  (Misaligned appends degrade toward a fuller
recompute and are covered for correctness in ``tests/test_ingest.py``.)

Sizes honour ``REPRO_BENCH_ROWS`` (default 60000) so the CI smoke step
runs the same code path in seconds.  Append throughput (appends/sec with
a query after every batch) is reported for context but not gated (timing
noise on loaded runners).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.engine import selection as sel
from repro.engine.cache import get_cache
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.engine.parallel import ExecutionOptions, shutdown_default_pools
from repro.engine.table import Table
from repro.obs.registry import get_registry
from repro.sql.parser import parse_query

_RAW_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "60000"))
CHUNK_ROWS = max(256, _RAW_ROWS // 60)
#: Rounded down to a chunk multiple: ``chunk_ranges``'s balanced layout
#: keeps old boundaries stable only when the row count stays a multiple
#: of ``chunk_rows``, which is the aligned-append case this gates.
ROWS = max(CHUNK_ROWS, (_RAW_ROWS // CHUNK_ROWS) * CHUNK_ROWS)
N_APPENDS = 8

SQL_TEMPLATE = (
    "SELECT COUNT(*) AS cnt, SUM(amount) AS total FROM events "
    "WHERE x BETWEEN {lo} AND {hi}"
)


def _base_table(n_rows: int) -> Table:
    x = np.arange(n_rows, dtype=np.int64)
    amount = np.linspace(0.0, 100.0, num=n_rows)
    return Table.from_dict("events", {"x": x, "amount": amount})


def _batch(ordinal: int) -> Table:
    """One chunk-aligned batch; values keep ``x`` globally clustered."""
    start = ROWS + ordinal * CHUNK_ROWS
    x = np.arange(start, start + CHUNK_ROWS, dtype=np.int64)
    amount = np.linspace(0.0, 100.0, num=CHUNK_ROWS)
    return Table.from_dict("events", {"x": x, "amount": amount})


def _query(ordinal: int):
    """A fresh predicate per step so no cached WHERE mask can serve it."""
    lo = int(ROWS * 0.4) + ordinal
    hi = int(ROWS * 0.6) + ordinal
    return parse_query(SQL_TEMPLATE.format(lo=lo, hi=hi))


def _append_stream(incremental: bool) -> dict:
    """Run the racing workload once; return counters and the final answer."""
    get_cache().clear()
    sel.reset_sketch_store()
    db = Database([_base_table(ROWS)])
    options = ExecutionOptions(
        chunk_rows=CHUNK_ROWS, incremental_appends=incremental
    )
    registry = get_registry()

    # Cold query: builds the zone maps both modes start from.
    execute(db, _query(0), options=options)
    recomputed_before = registry.counter("ingest.rows_recomputed")
    extended_before = registry.counter("ingest.chunks_extended")

    start = time.perf_counter()
    for ordinal in range(1, N_APPENDS + 1):
        db.append_rows("events", _batch(ordinal), options=options)
        execute(db, _query(ordinal), options=options)
    seconds = time.perf_counter() - start

    final = execute(db, _query(0), options=options)
    return {
        "rows_recomputed": int(
            registry.counter("ingest.rows_recomputed") - recomputed_before
        ),
        "chunks_extended": int(
            registry.counter("ingest.chunks_extended") - extended_before
        ),
        "seconds": seconds,
        "appends_per_sec": round(N_APPENDS / max(seconds, 1e-9), 2),
        "final_rows": final.rows,
        "final_counts": final.raw_counts,
    }


def test_ingest():
    payload: dict = {
        "benchmark": "incremental_ingest",
        "rows": ROWS,
        "chunk_rows": CHUNK_ROWS,
        "n_appends": N_APPENDS,
        "batch_rows": CHUNK_ROWS,
        "cpu_count": os.cpu_count() or 1,
    }
    try:
        incremental = _append_stream(incremental=True)
        invalidation = _append_stream(incremental=False)

        answers_identical = (
            incremental["final_rows"] == invalidation["final_rows"]
            and incremental["final_counts"] == invalidation["final_counts"]
        )
        reduction = invalidation["rows_recomputed"] / max(
            1, incremental["rows_recomputed"]
        )
        for mode in (incremental, invalidation):
            del mode["final_rows"], mode["final_counts"]
            mode["seconds"] = round(mode["seconds"], 6)
        payload["incremental"] = incremental
        payload["invalidation"] = invalidation
        payload["rows_recomputed_reduction"] = round(reduction, 2)
        payload["answers_identical"] = answers_identical

        assert answers_identical, payload
        # The append stream extended summaries instead of rebuilding.
        assert incremental["chunks_extended"] > 0, payload
        assert invalidation["chunks_extended"] == 0, payload
        # The headline gate: >= 5x fewer summary rows recomputed than
        # the historical invalidate-and-rebuild path.
        assert reduction >= 5.0, payload
    finally:
        out = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"
        out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
        get_cache().clear()
        sel.reset_sketch_store()
        shutdown_default_pools()
