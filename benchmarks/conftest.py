"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper's
evaluation (Sections 4.4 and 5).  Besides the pytest-benchmark timing, the
reproduced series are printed and written to ``benchmarks/results/`` so
runs can be diffed and transcribed into EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.figures import FigureRun
from repro.experiments.reporting import format_table, write_csv

RESULTS_DIR = Path(__file__).parent / "results"


def record_figure(run: FigureRun, note: str = "") -> str:
    """Print and persist a figure run's series; return the text report."""
    lines = [f"=== Paper figure/table {run.figure} ==="]
    if note:
        lines.append(note)
    for name, data in sorted(run.series.items()):
        rows = [[x, y] for x, y in data.items()]
        lines.append(f"-- {name}")
        lines.append(format_table(["x", "value"], rows))
    if run.extras:
        lines.append("-- extras")
        lines.append(
            format_table(
                ["key", "value"], [[k, v] for k, v in sorted(run.extras.items())]
            )
        )
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = run.figure.replace(".", "_")
    (RESULTS_DIR / f"figure_{safe}.txt").write_text(text + "\n")
    csv_rows = [
        [series, x, y]
        for series, data in sorted(run.series.items())
        for x, y in data.items()
    ]
    write_csv(
        RESULTS_DIR / f"figure_{safe}.csv", ["series", "x", "value"], csv_rows
    )
    return text


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
