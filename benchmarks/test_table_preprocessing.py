"""§5.4.2: pre-processing time and space for every technique.

Paper shapes to reproduce: small group sampling consumes the most sample
space (multiple sample tables) but the overhead stays a modest fraction
of the database and shrinks roughly proportionally with the base rate
(1% → 0.25% took TPC-H overhead from ~6% to ~1.8%); uniform sampling and
outlier indexing pre-process fastest; small group sampling and basic
congress are slower but "not exorbitant".
"""

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_table_preprocessing
from repro.experiments.reporting import format_table


def test_preprocessing_cost_table(benchmark):
    run = benchmark.pedantic(run_table_preprocessing, rounds=1, iterations=1)
    record_figure(run, note="pre-processing wall time and space overheads")
    keys = sorted(run.series["small_group/space_overhead"])
    rows = []
    for technique in ("small_group", "uniform", "basic_congress", "outlier_index"):
        for key in keys:
            rows.append(
                [
                    technique,
                    key,
                    run.series[f"{technique}/time_s"][key],
                    run.series[f"{technique}/space_overhead"][key],
                ]
            )
    print(format_table(["technique", "db@rate", "time_s", "space_overhead"], rows))

    space = {t: run.series[f"{t}/space_overhead"] for t in
             ("small_group", "uniform", "basic_congress", "outlier_index")}
    time_s = {t: run.series[f"{t}/time_s"] for t in
              ("small_group", "uniform", "basic_congress", "outlier_index")}
    for key in keys:
        # Small group uses the most space; uniform/congress the least.
        assert space["small_group"][key] > space["uniform"][key]
        assert space["small_group"][key] > space["outlier_index"][key]
        # Overhead is a fraction of the database, not a multiple.
        assert space["small_group"][key] < 1.0
    # Reducing the base rate shrinks the overhead substantially (the
    # paper's 6% -> 1.8% effect); keys pair up as db@high_rate/db@low_rate.
    for db in ("TPCH1G2.0z", "SALES"):
        pair = sorted(
            (k for k in keys if k.startswith(db)),
            key=lambda k: float(k.split("@")[1]),
        )
        assert space["small_group"][pair[0]] < 0.5 * space["small_group"][pair[1]]
    # Uniform pre-processing is fastest; small group and congress slower
    # but within two orders of magnitude ("not exorbitant").
    for key in keys:
        assert time_s["uniform"][key] <= time_s["small_group"][key] * 1.5
        assert time_s["small_group"][key] < time_s["uniform"][key] * 150
