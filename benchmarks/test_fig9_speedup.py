"""Figure 9 + §5.4.1: query processing speedup over exact execution.

Paper shapes to reproduce (TPCH5G1.5z): all AQP methods are an order of
magnitude faster than exact execution; uniform sampling is slightly
faster than small group sampling (9.49x vs 11.53x in the paper); the
small group speedup *decreases* as the number of grouping columns grows,
because more small group tables are consulted, while remaining clearly
worthwhile at 4 grouping columns.
"""

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_figure9
from repro.experiments.reporting import ascii_chart, format_table


def test_fig9_speedup_by_group_columns(benchmark):
    run = benchmark.pedantic(
        run_figure9, kwargs={"queries_per_combo": 5}, rounds=1, iterations=1
    )
    record_figure(run, note="TPCH5G1.5z (scaled), wall-clock speedups")
    speedups = run.series["small_group/speedup"]
    gs = sorted(speedups)
    print(
        ascii_chart(
            gs,
            {"small_group": [speedups[g] for g in gs]},
            title="Fig 9: speedup vs #grouping columns",
        )
    )
    print(
        format_table(
            ["technique", "overall speedup"],
            [
                ["small_group", run.extras["overall_speedup/small_group"]],
                ["uniform", run.extras["overall_speedup/uniform"]],
            ],
        )
    )
    # Order-of-magnitude speedups for both techniques.
    assert run.extras["overall_speedup/small_group"] > 4
    assert run.extras["overall_speedup/uniform"] > 4
    # Uniform is at least as fast as small group (it scans fewer tables).
    assert (
        run.extras["overall_speedup/uniform"]
        >= 0.9 * run.extras["overall_speedup/small_group"]
    )
    # The speedup declines as grouping columns (and thus small group
    # tables consulted) increase, while staying worthwhile at g=4.
    assert speedups[4] < speedups[1]
    assert speedups[4] > 2
