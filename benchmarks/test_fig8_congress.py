"""Figure 8 (a, b): Small Group vs Basic Congress vs Uniform on SALES.

Paper shapes to reproduce: error metrics increase with the number of
grouping columns for all methods; "small group sampling was significantly
more accurate than the other methods, whose accuracies were comparable to
each other" — basic congress, having shattered the table into a huge
number of tiny strata, behaves like a uniform sample.
"""

import numpy as np

from benchmarks.conftest import record_figure
from repro.experiments.figures import run_figure8
from repro.experiments.reporting import ascii_chart


def test_fig8_three_way_comparison(benchmark):
    run = benchmark.pedantic(
        run_figure8, kwargs={"queries_per_combo": 14}, rounds=1, iterations=1
    )
    record_figure(run, note="SALES, COUNT queries, matched sample space")
    gs = [1, 2, 3, 4]
    for metric in ("rel_err", "pct_groups"):
        print(
            ascii_chart(
                gs,
                {
                    name: [run.series[f"{name}/{metric}"][g] for g in gs]
                    for name in ("small_group", "basic_congress", "uniform")
                },
                title=f"Fig 8: {metric} vs #grouping columns (SALES)",
            )
        )
    # Basic congress stratifies into a huge number of tiny strata.
    assert run.extras["n_strata"] > 1000

    def mean(name, metric, upto=4):
        return np.mean(
            [run.series[f"{name}/{metric}"][g] for g in gs if g <= upto]
        )

    # Small group misses fewer groups than both competitors at every g.
    for g in gs:
        assert (
            run.series["small_group/pct_groups"][g]
            < run.series["uniform/pct_groups"][g]
        )
        assert (
            run.series["small_group/pct_groups"][g]
            < run.series["basic_congress/pct_groups"][g]
        )
    # ... and wins RelErr overall against uniform, and against congress on
    # the g <= 3 range (at laptop scale, g=4 RelErr is dominated by
    # overestimate spikes on 1-2 row groups; see EXPERIMENTS.md).
    assert mean("small_group", "rel_err") < mean("uniform", "rel_err")
    assert mean("small_group", "rel_err", upto=3) < mean(
        "basic_congress", "rel_err", upto=3
    )
    # Congress and uniform are comparable (within 35% of each other).
    ratio = mean("basic_congress", "pct_groups") / mean("uniform", "pct_groups")
    assert 0.65 < ratio < 1.5
    # Errors grow with grouping columns for every method.
    for name in ("small_group", "basic_congress", "uniform"):
        series = run.series[f"{name}/pct_groups"]
        assert series[1] < max(series[3], series[4])
