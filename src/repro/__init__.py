"""repro — Dynamic Sample Selection for Approximate Query Processing.

A full reproduction of Babcock, Chaudhuri, Das (SIGMOD 2003), built on an
in-package numpy columnar engine.  The typical flow:

>>> from repro import generate_tpch, SmallGroupSampling, SmallGroupConfig
>>> from repro import parse_query, execute
>>> db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=5000)
>>> sg = SmallGroupSampling(SmallGroupConfig(base_rate=0.02))
>>> report = sg.preprocess(db)
>>> query = parse_query(
...     "SELECT l_shipmode, COUNT(*) AS cnt FROM lineitem GROUP BY l_shipmode"
... )
>>> answer = sg.answer(query)          # approximate, with CIs
>>> exact = execute(db, query)         # ground truth

See DESIGN.md for the system inventory and EXPERIMENTS.md for the paper
reproduction results.
"""

from repro.analysis import (
    AnalysisScenario,
    expected_sq_rel_err_small_group,
    expected_sq_rel_err_uniform,
    figure_3a_series,
    figure_3b_series,
    optimal_allocation_ratio,
)
from repro.baselines import (
    BasicCongress,
    CongressConfig,
    HybridConfig,
    OutlierConfig,
    OutlierIndexing,
    SmallGroupWithOutlier,
    UniformConfig,
    UniformSampling,
    select_outlier_indices,
)
from repro.core import (
    AQPTechnique,
    ApproxAnswer,
    DynamicSampleSelection,
    GroupEstimate,
    PreprocessReport,
    SamplePiece,
    SampleTableInfo,
    SmallGroupConfig,
    SmallGroupSampling,
)
from repro.datagen import (
    SalesConfig,
    TPCHConfig,
    ZipfDistribution,
    example_3_1,
    generate_flat_database,
    generate_flat_table,
    generate_sales,
    generate_tpch,
)
from repro.engine import (
    AggFunc,
    AggregateSpec,
    Column,
    Database,
    ExecutionOptions,
    ForeignKey,
    GroupedResult,
    InSet,
    Query,
    StarSchema,
    Table,
    execute,
)
from repro.errors import ReproError
from repro.metrics import pct_groups, rel_err, score, sq_rel_err
from repro.middleware import AQPSession, SessionResult
from repro.sql import format_query, format_statement, parse, parse_query
from repro.storage import (
    load_database,
    load_table,
    save_database,
    save_table,
)
from repro.workload import Workload, WorkloadConfig, generate_workload

__version__ = "1.0.0"

__all__ = [
    "AQPSession",
    "AQPTechnique",
    "AggFunc",
    "AggregateSpec",
    "AnalysisScenario",
    "ApproxAnswer",
    "BasicCongress",
    "Column",
    "CongressConfig",
    "Database",
    "DynamicSampleSelection",
    "ExecutionOptions",
    "ForeignKey",
    "GroupEstimate",
    "GroupedResult",
    "HybridConfig",
    "InSet",
    "OutlierConfig",
    "OutlierIndexing",
    "PreprocessReport",
    "Query",
    "ReproError",
    "SalesConfig",
    "SamplePiece",
    "SampleTableInfo",
    "SessionResult",
    "SmallGroupConfig",
    "SmallGroupSampling",
    "SmallGroupWithOutlier",
    "StarSchema",
    "TPCHConfig",
    "Table",
    "UniformConfig",
    "UniformSampling",
    "Workload",
    "WorkloadConfig",
    "ZipfDistribution",
    "example_3_1",
    "execute",
    "expected_sq_rel_err_small_group",
    "expected_sq_rel_err_uniform",
    "figure_3a_series",
    "figure_3b_series",
    "format_query",
    "format_statement",
    "generate_flat_database",
    "generate_flat_table",
    "generate_sales",
    "generate_tpch",
    "generate_workload",
    "load_database",
    "load_table",
    "optimal_allocation_ratio",
    "parse",
    "parse_query",
    "pct_groups",
    "rel_err",
    "save_database",
    "save_table",
    "score",
    "select_outlier_indices",
    "sq_rel_err",
]
