"""Process-wide metrics registry: counters, gauges, histograms.

Where a :class:`~repro.obs.trace.Span` tree describes *one* query, the
:class:`MetricsRegistry` aggregates *across* queries — total pieces
executed and pruned, zone-map chunk verdicts, pool scatter latencies,
per-mode query counts — the way
:class:`~repro.engine.cache.CacheMetrics` already aggregates cache
lookups.  BlinkDB-style systems feed exactly this kind of per-query
error/latency profile back into sample selection; the registry is the
substrate such workload-adaptive tuning will read.

All three instrument kinds are thread-safe (one registry lock; the
engine's pool tasks increment counters concurrently) and snapshot-able
into a strict-JSON plain dict (non-finite observations are recorded
under a ``non_finite`` count rather than poisoning sums with NaN).
Like spans, the registry is a write-only channel for the compute
layers: lint rule RL009 bans reading it back inside
``repro/engine/``/``repro/core/``, so metrics can never change answers.
"""

from __future__ import annotations

import bisect
import math
import threading

from repro.errors import InternalError

#: Histogram bucket upper bounds (seconds-oriented log scale); the last
#: implicit bucket is +inf.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    100.0,
)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summaries.

    Mutated only while the owning registry's lock is held.

    Strict-JSON by construction — the ``allow_nan=False`` contract on
    every ``.json`` artifact is discharged *here*, not by a downstream
    serialiser: bucket bounds must be finite (the overflow bucket is the
    implicit ``le_inf`` — an explicit ``inf`` bound would collide with
    it and smuggle an ``Infinity`` token into the snapshot), non-finite
    observations are diverted to the ``non_finite`` count before they
    can poison ``sum``/``min``/``max``, and the empty-histogram mean is
    ``None`` rather than ``0/0``.
    """

    __slots__ = (
        "bounds",
        "bucket_counts",
        "count",
        "total",
        "minimum",
        "maximum",
        "non_finite",
    )

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS):
        if not all(math.isfinite(b) for b in bounds):
            raise InternalError(
                f"histogram bucket bounds must be finite, got {bounds!r}; "
                "the overflow bucket is the implicit le_inf"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InternalError(
                f"histogram bucket bounds must increase, got {bounds!r}"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.non_finite = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            self.non_finite += 1
            return
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def snapshot(self) -> dict:
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
        }
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count if self.count else None,
            "non_finite": self.non_finite,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms.

    Names are dotted strings (``"pool.wait_seconds"``,
    ``"zonemap.chunks_skipped"``); instruments are created lazily on
    first write.  :meth:`snapshot` returns a plain strict-JSON dict (the
    ``repro stats`` payload); :meth:`reset` zeroes everything (tests,
    benchmark passes).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Write API (compute layers may call these — and only these)
    # ------------------------------------------------------------------
    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0).

        Non-finite increments are diverted to the
        ``obs.non_finite_writes`` counter instead of turning the counter
        into NaN/inf — the snapshot must stay strict-JSON at the source,
        not rely on a serialiser scrubbing it later.
        """
        with self._lock:
            if not math.isfinite(value):
                self._counters["obs.non_finite_writes"] = (
                    self._counters.get("obs.non_finite_writes", 0) + 1
                )
                return
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins).

        Non-finite values are dropped (counted under
        ``obs.non_finite_writes``) — same strict-JSON-at-the-source
        discipline as :meth:`incr`.
        """
        with self._lock:
            if not math.isfinite(value):
                self._counters["obs.non_finite_writes"] = (
                    self._counters.get("obs.non_finite_writes", 0) + 1
                )
                return
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation in histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    # Read API (presentation/profile layers only — RL009)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never written)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (strict-JSON-safe)."""
        from repro.obs.jsonsafe import json_safe

        with self._lock:
            return json_safe(
                {
                    "counters": dict(sorted(self._counters.items())),
                    "gauges": dict(sorted(self._gauges.items())),
                    "histograms": {
                        name: hist.snapshot()
                        for name, hist in sorted(self._histograms.items())
                    },
                }
            )

    def reset(self) -> None:
        """Drop every instrument (counters, gauges, histograms)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Process-wide registry shared by every session and engine layer, like
#: the execution cache's ``CacheMetrics``.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]
