"""Query-lifecycle spans.

A :class:`Span` is one timed segment of a query's lifecycle — parse,
plan, the §4.2.2 rewrite, one piece's execution, the combine — carrying
a monotonic duration (``time.perf_counter`` only, so the tracing layer
is RL003-clean everywhere), a flat dict of numeric/str attributes, and
child spans.  The session creates one root span per profiled query and
threads it down through the combiner, the executor, and the worker-pool
scatter; each layer attaches children and attributes as it works.

Answer-neutrality contract
--------------------------
Spans are a **write-only** channel for the compute layers: code in
``repro/engine/``, ``repro/core/``, and ``repro/baselines/`` may create
children, time itself, and record attributes, but must never *read* a
span (durations, attributes, children) or branch on one — otherwise
profiling could change answers.  Lint rule RL009 enforces this
statically; the profile-determinism sweep in ``tests/test_obs.py``
enforces it end to end (byte-identical answers with profiling on/off).

When profiling is off the plumbing carries :data:`NULL_SPAN`, a shared
no-op singleton with the same write API, so instrumented code never
branches on "is profiling enabled" — the no-op calls are the branch.

Ownership discipline (instead of locks)
---------------------------------------
Spans are deliberately lock-free.  Creating a child mutates the parent,
so children must be created by the thread that owns the parent: the
serial scatter loop creates one span per pool task *before* submission
and each task writes only to its own span (exactly the
:class:`~repro.engine.zonemap.PieceSkipStats` pattern, and pure under
lint rule RL007 — span attributes are task-owned, not shared state).
"""

from __future__ import annotations

import time
from typing import Any, Iterator


class Span:
    """One timed, attributed segment of a query's lifecycle.

    Use as a context manager to time a block::

        child_span = span.child("combine")
        with child_span:
            ...  # timed work; may call child_span.add(...)

    ``seconds`` stays 0.0 until the ``with`` block exits (re-entering
    restarts the clock; the last exit wins).
    """

    __slots__ = ("name", "seconds", "attrs", "children", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.attrs: dict[str, Any] = {}
        self.children: list[Span] = []
        self._started = 0.0

    # ------------------------------------------------------------------
    # Write API (the only part compute layers may touch — RL009)
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.seconds = time.perf_counter() - self._started
        return False

    def child(self, name: str) -> "Span":
        """Create and attach a child span (owning-thread only)."""
        span = Span(name)
        self.children.append(span)
        return span

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate a numeric attribute (missing counts start at 0)."""
        self.attrs[name] = self.attrs.get(name, 0) + value

    def annotate(self, **attrs: Any) -> None:
        """Set attributes wholesale (labels, counts, flags)."""
        self.attrs.update(attrs)

    # ------------------------------------------------------------------
    # Read API (profile assembly and presentation layers only — never
    # callable from repro/engine/, repro/core/, or repro/baselines/)
    # ------------------------------------------------------------------
    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First span (depth-first) with ``name``, or ``None``."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """Nested plain-dict view (JSON-ready after sanitising)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def to_text(self, indent: int = 0) -> str:
        """Indented one-line-per-span rendering."""
        attrs = ", ".join(
            f"{k}={v}" for k, v in sorted(self.attrs.items())
        )
        line = (
            f"{'  ' * indent}{self.name}: {self.seconds * 1000:.2f} ms"
            + (f" ({attrs})" if attrs else "")
        )
        lines = [line]
        for child in self.children:
            lines.append(child.to_text(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, seconds={self.seconds:.6f}, "
            f"children={len(self.children)})"
        )


class _NullSpan(Span):
    """Shared no-op span used when profiling is off.

    Every write is discarded and ``child`` returns the singleton itself,
    so instrumented code runs the same statements either way — the only
    difference is that nothing is recorded.  The singleton is immutable
    and therefore safe to share across threads and queries.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def child(self, name: str) -> "Span":
        return self

    def add(self, name: str, value: float = 1) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


#: The process-wide no-op span; plumbed wherever profiling is disabled.
NULL_SPAN: Span = _NullSpan()


__all__ = ["NULL_SPAN", "Span"]
