"""Query-lifecycle observability: spans, metrics registry, profiles.

The paper's premise is that cost is proportional to rows *touched*, not
rows stored (§3, §4.2.2).  This package is how the engine proves it per
query: :mod:`~repro.obs.trace` spans time every lifecycle phase,
:mod:`~repro.obs.registry` aggregates counters across queries, and
:mod:`~repro.obs.profile` assembles both — plus the zone-map skip
report and the execution-cache delta — into one
:class:`~repro.obs.profile.QueryProfile` per query.

Observability is answer-neutral by construction: the compute layers
only ever *write* to spans and the registry (lint rule RL009 bans
reads), and the profile-determinism sweep pins byte-identical answers
with profiling on or off at any worker count and chunk size.  See
``docs/internals.md`` §10.
"""

from repro.obs.jsonsafe import dumps, json_safe
from repro.obs.profile import QueryProfile, cache_delta, skip_report_dict
from repro.obs.registry import Histogram, MetricsRegistry, get_registry
from repro.obs.trace import NULL_SPAN, Span

__all__ = [
    "NULL_SPAN",
    "Histogram",
    "MetricsRegistry",
    "QueryProfile",
    "Span",
    "cache_delta",
    "dumps",
    "get_registry",
    "json_safe",
    "skip_report_dict",
]
