"""Strict-JSON sanitising for every artifact the repo emits.

Python's ``json.dumps`` happily writes ``NaN`` / ``Infinity`` tokens —
which are *not* JSON: ``json.loads(..., parse_constant=reject)`` and
every non-Python consumer refuses them.  The engine has several places
where a ratio over a zero denominator produces a non-finite float
(speedups with a zero timing, hit rates with zero lookups, AVG over an
empty group), so any dict that reaches a ``.json`` artifact must be
scrubbed first.

:func:`json_safe` maps non-finite floats to ``None`` (→ ``null``),
flattens tuples/sets to lists, unwraps numpy scalars without importing
numpy, and stringifies non-primitive dict keys (group-key tuples).
:func:`dumps` is the drop-in serialiser: sanitise, then
``json.dumps(..., allow_nan=False)`` so a regression fails loudly at
the write site instead of corrupting the artifact.
"""

from __future__ import annotations

import json
import math
from typing import Any


def json_safe(value: Any) -> Any:
    """A copy of ``value`` that serialises to strict (finite) JSON."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, float):  # covers numpy.float64 (a float subclass)
        return value if math.isfinite(value) else None
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        return {
            k if isinstance(k, str) else str(k): json_safe(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    item = getattr(value, "item", None)  # numpy scalars, zero-d arrays
    if callable(item):
        try:
            return json_safe(item())
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)  # numpy arrays
    if callable(tolist):
        return json_safe(tolist())
    return str(value)


def dumps(value: Any, **kwargs: Any) -> str:
    """``json.dumps`` of the sanitised value; never emits NaN/Infinity."""
    kwargs.setdefault("allow_nan", False)
    return json.dumps(json_safe(value), **kwargs)


__all__ = ["dumps", "json_safe"]
