"""Per-query profiles: one structured record of how a query was served.

A :class:`QueryProfile` is assembled by the middleware session *after*
the answer is computed (``session.sql(..., profile=True)``), from three
write-only channels the engine filled in along the way:

* the span tree (:mod:`repro.obs.trace`) — parse → plan → §4.2.2
  rewrite → per-piece execution → combine, with pool submit/wait times;
* the data-skipping report (:class:`~repro.engine.zonemap.SkipReport`)
  — per piece, zone-map chunk verdicts and rows actually touched;
* the execution-cache counter delta
  (:class:`~repro.engine.cache.CacheMetrics`) — hits/misses by kind
  attributable to this query (process-wide counters, so concurrent
  sessions make the delta approximate; single-session use is exact).

``to_dict`` is strict-JSON-safe (non-finite floats become ``null`` via
:mod:`repro.obs.jsonsafe`), which is what ``--profile-json`` writes and
CI uploads next to the ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.jsonsafe import json_safe
from repro.obs.trace import Span


def _finite_or_none(value: float | None) -> float | None:
    """``value`` when it is a finite number, else ``None``."""
    if value is None or not math.isfinite(value):
        return None
    return value


def skip_report_dict(report: Any) -> dict | None:
    """Plain-dict view of a zone-map :class:`SkipReport` (duck-typed)."""
    if report is None:
        return None
    return {
        "enabled": report.enabled,
        "rows_total": report.rows_total,
        "rows_touched": report.rows_touched,
        "chunks_skipped": report.chunks_skipped,
        "chunks_scanned": report.chunks_scanned,
        "pieces_pruned": report.pieces_pruned,
        "pieces": [
            {
                "description": piece.description,
                "rows_total": piece.rows_total,
                "rows_touched": piece.rows_touched,
                "n_chunks": piece.n_chunks,
                "chunks_skipped": piece.chunks_skipped,
                "chunks_accepted": piece.chunks_accepted,
                "chunks_scanned": piece.chunks_scanned,
                "pruned": piece.pruned,
                "mask_cached": piece.mask_cached,
                "appended_unknown": getattr(piece, "appended_unknown", 0),
            }
            for piece in report.pieces
        ],
    }


def cache_delta(before: dict, after: dict) -> dict:
    """Per-kind hit/miss delta between two ``CacheMetrics`` views.

    Accepts the cheap ``counts()`` dicts (preferred on the per-query
    hot path) or full ``snapshot()``s — only ``"hits"``/``"misses"``
    are read.
    """
    kinds = sorted(set(after["hits"]) | set(after["misses"]))
    delta: dict[str, dict[str, int]] = {}
    for kind in kinds:
        hits = after["hits"].get(kind, 0) - before["hits"].get(kind, 0)
        misses = after["misses"].get(kind, 0) - before["misses"].get(kind, 0)
        if hits or misses:
            delta[kind] = {"hits": hits, "misses": misses}
    return delta


class QueryProfile:
    """Everything observed while serving one query.

    Attributes
    ----------
    sql, mode, technique:
        The query text, execution mode, and installed technique name
        (``None`` when no technique was involved).
    trace:
        Root :class:`~repro.obs.trace.Span` of the query's lifecycle.
    approx_seconds / exact_seconds:
        Wall-clock seconds per side (``None`` for sides not run).
    speedup:
        Exact over approximate seconds; ``None`` when either timing is
        missing or zero (never NaN — see ``SessionResult.speedup``).
    rows_scanned:
        Sample rows charged by the §4.2.2 cost model (approx side).
    cache:
        Per-kind execution-cache hit/miss delta for this query.
        Computed lazily from the raw ``CacheMetrics.counts()`` views
        captured around the query, so profiled queries that never
        render their profile pay ~nothing (the <5% overhead budget).
    skip:
        Data-skipping outcome as a plain dict (see
        :func:`skip_report_dict`), or ``None``.  Also lazy — the raw
        :class:`SkipReport` is held and converted on first access.
    """

    def __init__(
        self,
        sql: str,
        mode: str,
        technique: str | None = None,
        trace: Span | None = None,
        approx_seconds: float | None = None,
        exact_seconds: float | None = None,
        speedup: float | None = None,
        rows_scanned: int | None = None,
        cache_before: dict | None = None,
        cache_after: dict | None = None,
        skip_report: Any | None = None,
    ) -> None:
        self.sql = sql
        self.mode = mode
        self.technique = technique
        self.trace = trace
        self.approx_seconds = approx_seconds
        self.exact_seconds = exact_seconds
        self.speedup = speedup
        self.rows_scanned = rows_scanned
        self._cache_before = cache_before
        self._cache_after = cache_after
        self._cache: dict | None = None
        self._skip_report = skip_report
        self._skip: dict | None = None

    @property
    def cache(self) -> dict:
        """Per-kind hit/miss delta (computed on first access)."""
        if self._cache is None:
            if self._cache_before is None or self._cache_after is None:
                self._cache = {}
            else:
                self._cache = cache_delta(
                    self._cache_before, self._cache_after
                )
        return self._cache

    @property
    def skip(self) -> dict | None:
        """Data-skipping outcome dict (converted on first access)."""
        if self._skip is None:
            self._skip = skip_report_dict(self._skip_report)
        return self._skip

    def phase_seconds(self) -> dict[str, float]:
        """Top-level lifecycle phases (direct children of the root)."""
        if self.trace is None:
            return {}
        return {span.name: span.seconds for span in self.trace.children}

    def to_dict(self) -> dict:
        """Strict-JSON-safe plain dict (the ``--profile-json`` payload)."""
        return json_safe(
            {
                "sql": self.sql,
                "mode": self.mode,
                "technique": self.technique,
                "approx_seconds": _finite_or_none(self.approx_seconds),
                "exact_seconds": _finite_or_none(self.exact_seconds),
                "speedup": _finite_or_none(self.speedup),
                "rows_scanned": self.rows_scanned,
                "phases": self.phase_seconds(),
                "cache": self.cache,
                "skip": self.skip,
                "trace": None if self.trace is None else self.trace.to_dict(),
            }
        )

    def to_text(self) -> str:
        """Human-readable rendering (the CLI ``--profile`` body)."""
        lines = [f"query profile (mode={self.mode}"]
        if self.technique:
            lines[0] += f", technique={self.technique}"
        lines[0] += ")"
        phases = self.phase_seconds()
        if phases:
            lines.append(
                "  phases: "
                + "  ".join(
                    f"{name} {seconds * 1000:.2f} ms"
                    for name, seconds in phases.items()
                )
            )
        if self.rows_scanned is not None:
            lines.append(f"  rows scanned: {self.rows_scanned}")
        if self.skip is not None:
            lines.append(
                f"  data skipping: touched {self.skip['rows_touched']} of "
                f"{self.skip['rows_total']} rows "
                f"({self.skip['chunks_skipped']} chunks skipped, "
                f"{self.skip['chunks_scanned']} scanned, "
                f"{self.skip['pieces_pruned']} pieces pruned)"
            )
        if self.cache:
            parts = [
                f"{kind} {c['hits']}/{c['hits'] + c['misses']}"
                for kind, c in sorted(self.cache.items())
            ]
            lines.append("  cache hits/lookups: " + ", ".join(parts))
        speedup = _finite_or_none(self.speedup)
        lines.append(
            "  speedup: "
            + (f"{speedup:.1f}x" if speedup is not None else "n/a")
        )
        if self.trace is not None:
            lines.append("  spans:")
            for child_line in self.trace.to_text(indent=2).splitlines():
                lines.append(child_line)
        return "\n".join(lines)


__all__ = ["QueryProfile", "cache_delta", "skip_report_dict"]
