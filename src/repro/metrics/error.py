"""Accuracy metrics for approximate group-by answers (Section 4.3).

Given an exact answer with ``n`` groups and an approximate answer covering
``m ≤ n`` of them (sampling estimators never invent spurious groups):

* ``PctGroups`` (Definition 4.1) — percentage of groups missed,
  ``(n - m)/n × 100``;
* ``RelErr`` (Definition 4.2) — average relative error in the aggregate
  values, counting each missed group as 100% error;
* ``SqRelErr`` (Definition 4.3) — same with squared relative errors, the
  analytically tractable variant used in Section 4.4.

All three take the answers as plain ``group → value`` mappings so they can
score any technique (or the analytical model's idealised answers).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

GroupKey = tuple[Any, ...]


def _split_groups(
    exact: Mapping[GroupKey, float], approx: Mapping[GroupKey, float]
) -> tuple[list[GroupKey], int]:
    """Common groups and the count of groups missed by the approximation.

    Spurious approximate groups (absent from the exact answer) are ignored,
    matching the paper's assumption ``G' ⊆ G``.
    """
    common = [g for g in approx if g in exact]
    return common, len(exact) - len(common)


def pct_groups(
    exact: Mapping[GroupKey, float], approx: Mapping[GroupKey, float]
) -> float:
    """Percentage of exact-answer groups missing from the approximation."""
    n = len(exact)
    if n == 0:
        return 0.0
    _, missed = _split_groups(exact, approx)
    return 100.0 * missed / n


def rel_err(
    exact: Mapping[GroupKey, float], approx: Mapping[GroupKey, float]
) -> float:
    """Average relative error (Definition 4.2).

    Missed groups contribute a relative error of 1 (i.e. 100%).  Groups
    whose exact aggregate is 0 are skipped in the ratio term (they cannot
    occur for COUNT; for SUM they would make the metric undefined).
    """
    n = len(exact)
    if n == 0:
        return 0.0
    common, missed = _split_groups(exact, approx)
    total = float(missed)
    for g in common:
        x = exact[g]
        if x == 0:
            continue
        total += abs(x - approx[g]) / abs(x)
    return total / n


def sq_rel_err(
    exact: Mapping[GroupKey, float], approx: Mapping[GroupKey, float]
) -> float:
    """Average squared relative error (Definition 4.3)."""
    n = len(exact)
    if n == 0:
        return 0.0
    common, missed = _split_groups(exact, approx)
    total = float(missed)
    for g in common:
        x = exact[g]
        if x == 0:
            continue
        ratio = (x - approx[g]) / x
        total += ratio * ratio
    return total / n


@dataclass(frozen=True)
class QueryAccuracy:
    """All three accuracy metrics for one query."""

    rel_err: float
    pct_groups: float
    sq_rel_err: float
    n_exact_groups: int
    n_approx_groups: int


def score(
    exact: Mapping[GroupKey, float], approx: Mapping[GroupKey, float]
) -> QueryAccuracy:
    """Compute all metrics for one (exact, approximate) answer pair."""
    return QueryAccuracy(
        rel_err=rel_err(exact, approx),
        pct_groups=pct_groups(exact, approx),
        sq_rel_err=sq_rel_err(exact, approx),
        n_exact_groups=len(exact),
        n_approx_groups=len([g for g in approx if g in exact]),
    )
