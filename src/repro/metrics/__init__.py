"""Accuracy metrics from Section 4.3."""

from repro.metrics.error import (
    QueryAccuracy,
    pct_groups,
    rel_err,
    score,
    sq_rel_err,
)

__all__ = ["QueryAccuracy", "pct_groups", "rel_err", "score", "sq_rel_err"]
