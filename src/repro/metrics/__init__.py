"""Accuracy metrics from Section 4.3 and execution-cache counters."""

from repro.engine.cache import CacheMetrics, execution_cache_metrics
from repro.metrics.error import (
    QueryAccuracy,
    pct_groups,
    rel_err,
    score,
    sq_rel_err,
)

__all__ = [
    "CacheMetrics",
    "QueryAccuracy",
    "execution_cache_metrics",
    "pct_groups",
    "rel_err",
    "score",
    "sq_rel_err",
]
