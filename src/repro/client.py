"""Thin stdlib client for the AQP server (:mod:`repro.server`).

:class:`ReproClient` speaks the JSON protocol from ``docs/serving.md``
over a persistent ``http.client`` connection.  Protocol failures raise
:class:`~repro.errors.ServerError` carrying the machine-readable wire
``code`` (``overloaded``, ``deadline_exceeded``, ...) and HTTP status so
callers can branch on them (back off on ``overloaded``, surface
``parse_error`` to the user, and so on).

One client is one connection: share a client across threads and requests
serialise on its lock — give each worker thread its own client for
parallel load (the CLI and the serving benchmark both do).
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any

from repro.errors import ServerError
from repro.obs.jsonsafe import dumps


class ReproClient:
    """JSON-over-HTTP client for one AQP server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        check: bool = True,
    ) -> dict:
        payload = (
            dumps(body).encode("utf-8") if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        with self._lock:
            # One retry through a fresh connection: the server may have
            # dropped a kept-alive connection between requests.
            for attempt in (0, 1):
                conn = self._connection()
                try:
                    conn.request(method, path, body=payload, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                    break
                except (OSError, http.client.HTTPException) as error:
                    self._drop_connection()
                    if attempt:
                        raise ServerError(
                            f"cannot reach server at "
                            f"{self.host}:{self.port}: {error}"
                        ) from error
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServerError(
                f"server returned invalid JSON (HTTP {response.status})",
                status=response.status,
            ) from error
        if not isinstance(decoded, dict):
            raise ServerError(
                "server response is not a JSON object",
                status=response.status,
            )
        if check and (response.status != 200 or not decoded.get("ok", False)):
            error_obj = decoded.get("error") or {}
            raise ServerError(
                error_obj.get("message", f"HTTP {response.status}"),
                code=error_obj.get("code"),
                status=response.status,
            )
        return decoded

    # ------------------------------------------------------------------
    # Protocol ops
    # ------------------------------------------------------------------
    def query(
        self,
        sql: str,
        mode: str = "approx",
        explain: bool = False,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Run one SQL aggregation query; returns the response object.

        The response carries ``answer`` (canonically-ordered groups),
        ``fingerprint`` (SHA-256 of the canonical answer), ``timings``,
        and ``coalesced`` (whether this request shared an identical
        in-flight execution).  ``timeout`` becomes the server-side
        per-request deadline; expiry raises ``ServerError`` with
        ``code="deadline_exceeded"``.
        """
        body: dict[str, Any] = {"sql": sql, "mode": mode}
        if explain:
            body["explain"] = True
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/query", body)

    def append_rows(
        self, table: str, rows: dict[str, list]
    ) -> dict[str, Any]:
        """Append a column-oriented batch to ``table`` on the server."""
        return self._request(
            "POST", "/append", {"table": table, "rows": rows}
        )

    def healthz(self) -> dict[str, Any]:
        """Server liveness: status, protocol version, in-flight gauge.

        A draining server answers 503 with ``status: "closed"`` — a
        probe wants that payload, not an exception, so this is the one
        op that returns non-200 bodies instead of raising.
        """
        return self._request("GET", "/healthz", check=False)

    def stats(self) -> dict[str, Any]:
        """Server observability snapshot (registry + cache + gate)."""
        return self._request("GET", "/stats")

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["ReproClient"]
