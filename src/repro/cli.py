"""Command-line interface: regenerate the paper's figures and tables.

Usage::

    python -m repro list                  # enumerate reproducible results
    python -m repro figure 4 6           # regenerate figures 4 and 6
    python -m repro figure all --out results/
    python -m repro figure 4 --quick     # tiny/fast parameterisation

Each figure prints the same series the paper plots and can also be
written to CSV with ``--out``.
"""

from __future__ import annotations

import argparse
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.experiments.figures import (
    FigureRun,
    run_figure3a,
    run_figure3b,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table_outlier,
    run_table_preprocessing,
)
from repro.engine.parallel import ExecutionOptions, set_default_options
from repro.experiments.reporting import format_table, write_csv

#: Figure id → (description, full runner, quick runner).
FIGURES: dict[str, tuple[str, Callable[[], FigureRun], Callable[[], FigureRun]]] = {
    "3a": (
        "Analytical SqRelErr vs sampling allocation ratio",
        run_figure3a,
        run_figure3a,
    ),
    "3b": (
        "Analytical SqRelErr vs skew",
        run_figure3b,
        run_figure3b,
    ),
    "4": (
        "SmGroup vs Uniform on TPCH1G2.0z by #grouping columns",
        lambda: run_figure4(queries_per_combo=10),
        lambda: run_figure4(rows_per_scale=8000, queries_per_combo=2),
    ),
    "5": (
        "Error vs per-group selectivity on SALES",
        lambda: run_figure5(queries_per_combo=10),
        lambda: run_figure5(sales_scale=0.2, queries_per_combo=2),
    ),
    "5-tpch": (
        "Error vs per-group selectivity on TPCH (§5.3.1)",
        lambda: run_figure5(database="tpch", queries_per_combo=8),
        lambda: run_figure5(
            database="tpch", rows_per_scale=8000, queries_per_combo=2
        ),
    ),
    "6": (
        "RelErr vs skew on the TPCH1Gyz family",
        lambda: run_figure6(queries_per_combo=8),
        lambda: run_figure6(
            skews=(1.0, 2.0), rows_per_scale=8000, queries_per_combo=2
        ),
    ),
    "7": (
        "Error vs base sampling rate on TPCH1G2.0z",
        lambda: run_figure7(queries_per_combo=8),
        lambda: run_figure7(
            rates=(0.02, 0.08), rows_per_scale=8000, queries_per_combo=2
        ),
    ),
    "8": (
        "SmGroup vs Basic Congress vs Uniform on SALES",
        lambda: run_figure8(queries_per_combo=10),
        lambda: run_figure8(sales_scale=0.2, queries_per_combo=2),
    ),
    "5.3.3": (
        "SUM queries: SG+outlier vs outlier indexing vs uniform",
        lambda: run_table_outlier(queries_per_combo=10),
        lambda: run_table_outlier(sales_scale=0.2, queries_per_combo=2),
    ),
    "9": (
        "Query-processing speedups (TPCH5G1.5z)",
        lambda: run_figure9(queries_per_combo=5),
        lambda: run_figure9(
            rows_per_scale=8000, scale=1.0, queries_per_combo=2
        ),
    ),
    "5.4.2": (
        "Pre-processing time and space for all techniques",
        run_table_preprocessing,
        lambda: run_table_preprocessing(
            rows_per_scale=8000, sales_scale=0.2, base_rates=(0.04,)
        ),
    ),
}


def render_run(run: FigureRun) -> str:
    """Render one figure run as text."""
    lines = [f"=== Paper figure/table {run.figure} ==="]
    for name, data in sorted(run.series.items()):
        lines.append(f"-- {name}")
        lines.append(
            format_table(["x", "value"], [[x, y] for x, y in data.items()])
        )
    if run.extras:
        lines.append("-- extras")
        lines.append(
            format_table(
                ["key", "value"],
                [[k, v] for k, v in sorted(run.extras.items())],
            )
        )
    return "\n".join(lines)


def _save(run: FigureRun, out_dir: Path) -> Path:
    safe = run.figure.replace(".", "_")
    path = out_dir / f"figure_{safe}.csv"
    rows = [
        [series, x, y]
        for series, data in sorted(run.series.items())
        for x, y in data.items()
    ]
    write_csv(path, ["series", "x", "value"], rows)
    return path


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Dynamic Sample Selection for Approximate Query "
            "Processing' (SIGMOD 2003)"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=1,
        help=(
            "worker threads for piece execution and chunked preprocessing "
            "(1 = serial, 0 = one per CPU); answers are identical for any "
            "value"
        ),
    )
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=65536,
        help=(
            "rows per execution chunk (zone-map granularity); answers are "
            "identical for any value"
        ),
    )
    parser.add_argument(
        "--no-skipping",
        action="store_true",
        help=(
            "disable zone-map data skipping (WHERE masks scan every row); "
            "answers are identical either way"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help=(
            "backend for scattering independent work: worker threads "
            "(default), worker processes with shared-memory zero-copy "
            "columns (true multi-core for GIL-bound workloads), or a "
            "forced serial loop; answers are identical for any choice"
        ),
    )
    parser.add_argument(
        "--chunk-selection",
        action="store_true",
        help=(
            "PS3-style weighted chunk selection on approximate scans: "
            "draw a budgeted chunk subset scored from the zone maps and "
            "reweight with Horvitz-Thompson inverse-inclusion weights; "
            "changes approximate answers (trades rows touched for "
            "variance), never exact ones; deterministic for a fixed "
            "seed+budget at any worker count"
        ),
    )
    parser.add_argument(
        "--selection-budget",
        type=int,
        default=65536,
        help=(
            "rows-touched budget per piece for --chunk-selection; the "
            "draw only engages when the eligible rows exceed it"
        ),
    )
    parser.add_argument(
        "--selection-seed",
        type=int,
        default=0,
        help="seed for the --chunk-selection weighted draw",
    )
    parser.add_argument(
        "--no-incremental-appends",
        action="store_true",
        help=(
            "disable incremental append maintenance: append_rows falls "
            "back to fully invalidating derived structures (zone maps, "
            "word summaries, provenance sketches, reservoir state) "
            "instead of extending them; answers are byte-identical "
            "either way"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list reproducible figures/tables")
    figure = subparsers.add_parser(
        "figure", help="regenerate one or more figures"
    )
    figure.add_argument(
        "ids",
        nargs="+",
        help=f"figure ids ({', '.join(FIGURES)}) or 'all'",
    )
    figure.add_argument(
        "--quick",
        action="store_true",
        help="tiny parameterisation (seconds instead of minutes)",
    )
    figure.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write per-figure CSV files to",
    )
    plan = subparsers.add_parser(
        "plan",
        help="recommend small-group-sampling parameters from the model",
    )
    plan.add_argument("--z", type=float, default=1.8, help="Zipf skew")
    plan.add_argument(
        "--distinct", type=int, default=50, help="distinct values per column"
    )
    plan.add_argument(
        "--group-columns", type=int, default=2, help="grouping columns"
    )
    plan.add_argument(
        "--selectivity", type=float, default=0.1, help="predicate selectivity"
    )
    plan.add_argument(
        "--rows", type=int, default=1_000_000, help="database rows"
    )
    plan.add_argument(
        "--budget",
        type=float,
        default=0.02,
        help="runtime sample budget as a fraction of the database",
    )
    plan.add_argument(
        "--target",
        type=float,
        default=None,
        help="target SqRelErr; when given, also plan the minimum budget",
    )
    report = subparsers.add_parser(
        "report",
        help="summarise previously recorded benchmark results",
    )
    report.add_argument(
        "--results",
        type=Path,
        default=Path("benchmarks/results"),
        help="directory holding figure_*.csv files",
    )
    sql = subparsers.add_parser(
        "sql",
        help="run one aggregation query against a stored database",
    )
    sql.add_argument(
        "database", type=Path, help="directory written by repro.storage"
    )
    sql.add_argument("query", help="SQL aggregation query text")
    sql.add_argument(
        "--mode",
        choices=("exact", "approx", "both"),
        default="exact",
        help=(
            "exact executor (default), small-group approximate answering, "
            "or both side by side"
        ),
    )
    sql.add_argument(
        "--base-rate",
        type=float,
        default=0.04,
        help="base sampling rate for approx/both modes",
    )
    sql.add_argument(
        "--explain",
        action="store_true",
        help=(
            "also print the data-skipping report: per piece, chunks "
            "scanned vs skipped and rows touched"
        ),
    )
    sql.add_argument(
        "--profile",
        action="store_true",
        help=(
            "also print the query profile: lifecycle spans, cache "
            "hit/miss delta, and skipping outcome (answer-neutral)"
        ),
    )
    sql.add_argument(
        "--profile-json",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "write the query profile as strict JSON to PATH "
            "('-' for stdout); implies profiling"
        ),
    )
    stats = subparsers.add_parser(
        "stats",
        help=(
            "run a small workload and print process-wide observability "
            "stats (metrics registry + execution-cache counters)"
        ),
    )
    stats.add_argument(
        "database", type=Path, help="directory written by repro.storage"
    )
    stats.add_argument(
        "--query",
        action="append",
        default=None,
        metavar="SQL",
        help=(
            "SQL aggregation query to run (repeatable); default is one "
            "COUNT(*) over the largest table"
        ),
    )
    stats.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="times to run each query (warm passes exercise the caches)",
    )
    stats.add_argument(
        "--mode",
        choices=("exact", "approx", "both"),
        default="both",
        help="execution mode for the workload queries",
    )
    stats.add_argument(
        "--base-rate",
        type=float,
        default=0.04,
        help="base sampling rate for approx/both modes",
    )
    stats.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the stats as strict JSON to PATH ('-' for stdout)",
    )
    serve = subparsers.add_parser(
        "serve",
        help=(
            "serve a stored database to concurrent clients over the JSON "
            "protocol (docs/serving.md)"
        ),
    )
    serve.add_argument(
        "database", type=Path, help="directory written by repro.storage"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="address to bind"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="port to bind (0 picks a free port)",
    )
    serve.add_argument(
        "--base-rate",
        type=float,
        default=0.04,
        help="base sampling rate for the installed technique",
    )
    serve.add_argument(
        "--exact-only",
        action="store_true",
        help="skip technique installation; serve exact queries only",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help=(
            "concurrent queries admitted before new ones are rejected "
            "with 'overloaded' (HTTP 429)"
        ),
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "default per-request deadline applied when a request carries "
            "no timeout of its own"
        ),
    )
    query = subparsers.add_parser(
        "query",
        help="send one SQL query to a running `repro serve` instance",
    )
    query.add_argument("sql", help="SQL aggregation query text")
    query.add_argument(
        "--host", default="127.0.0.1", help="server address"
    )
    query.add_argument(
        "--port", type=int, default=8642, help="server port"
    )
    query.add_argument(
        "--mode",
        choices=("exact", "approx", "both"),
        default="approx",
        help="execution mode requested from the server",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="server-side per-request deadline",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="print the raw response object instead of a rendered table",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    set_default_options(
        ExecutionOptions(
            max_workers=args.max_workers,
            chunk_rows=args.chunk_rows,
            data_skipping=not args.no_skipping,
            executor=args.executor,
            chunk_selection=args.chunk_selection,
            selection_budget=args.selection_budget,
            selection_seed=args.selection_seed,
            incremental_appends=not args.no_incremental_appends,
        )
    )
    if args.command == "sql":
        return _run_sql(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "list":
        rows = [[fid, desc] for fid, (desc, _, _) in FIGURES.items()]
        print(format_table(["id", "description"], rows))
        return 0
    if args.command == "plan":
        return _run_plan(args)
    if args.command == "report":
        return _run_report(args.results)
    ids = list(FIGURES) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in FIGURES]
    if unknown:
        print(f"unknown figure ids: {unknown}; use 'repro list'")
        return 2
    for fid in ids:
        description, full, quick = FIGURES[fid]
        print(f"\nRunning {fid}: {description} ...")
        run = (quick if args.quick else full)()
        print(render_run(run))
        if args.out is not None:
            path = _save(run, args.out)
            print(f"wrote {path}")
    return 0


def _run_sql(args) -> int:
    """Answer one SQL query against a database stored on disk."""
    from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
    from repro.errors import ReproError
    from repro.middleware.session import AQPSession
    from repro.storage.io import load_database

    try:
        db = load_database(args.database)
    except ReproError as error:
        print(f"cannot load database from {args.database}: {error}")
        return 1
    session = AQPSession(db)
    profile = args.profile or args.profile_json is not None
    try:
        if args.mode in ("approx", "both"):
            session.install(
                SmallGroupSampling(SmallGroupConfig(base_rate=args.base_rate))
            )
        result = session.sql(
            args.query, mode=args.mode, explain=args.explain, profile=profile
        )
    except ReproError as error:
        print(f"query failed: {error}")
        return 1
    print(result.to_text())
    if args.profile_json is not None and result.profile is not None:
        _write_json(result.profile.to_dict(), args.profile_json)
    return 0


def _write_json(payload: dict, path: str) -> None:
    """Write strict JSON to ``path``, or stdout when ``path`` is ``-``."""
    from repro.obs import dumps

    text = dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        Path(path).write_text(text + "\n")
        print(f"wrote {path}")


def _run_stats(args) -> int:
    """Run a small workload and report process-wide observability stats.

    The registry counters and the execution-cache metrics are
    process-wide, so the numbers cover exactly what this invocation ran:
    ``--repeat`` passes over each ``--query`` (first pass cold, the rest
    exercising the parse/plan memos and the execution cache).
    """
    from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
    from repro.engine.cache import get_cache
    from repro.errors import ReproError
    from repro.middleware.session import AQPSession
    from repro.obs import get_registry
    from repro.storage.io import load_database

    try:
        db = load_database(args.database)
    except ReproError as error:
        print(f"cannot load database from {args.database}: {error}")
        return 1
    queries = args.query
    if not queries:
        largest = max(
            (db.table(name) for name in db.table_names),
            key=lambda t: t.n_rows,
        )
        queries = [f"SELECT COUNT(*) AS n FROM {largest.name}"]
    get_registry().reset()
    get_cache().metrics.reset()
    session = AQPSession(db)
    try:
        if args.mode in ("approx", "both"):
            session.install(
                SmallGroupSampling(SmallGroupConfig(base_rate=args.base_rate))
            )
        for _ in range(max(1, args.repeat)):
            for query in queries:
                session.sql(query, mode=args.mode)
    except ReproError as error:
        print(f"workload failed: {error}")
        return 1
    registry_snapshot = get_registry().snapshot()
    cache_snapshot = get_cache().metrics.snapshot()
    print(
        f"workload: {len(queries)} quer{'y' if len(queries) == 1 else 'ies'}"
        f" x {max(1, args.repeat)} repeats, mode={args.mode}"
    )
    counters = registry_snapshot.get("counters", {})
    if counters:
        print(
            format_table(
                ["counter", "value"], sorted(counters.items())
            )
        )
    gauges = registry_snapshot.get("gauges", {})
    if gauges:
        print(format_table(["gauge", "value"], sorted(gauges.items())))
    histograms = registry_snapshot.get("histograms", {})
    if histograms:
        rows = [
            [
                name,
                h["count"],
                h["sum"],
                h["min"],
                h["max"],
                h["mean"],
            ]
            for name, h in sorted(histograms.items())
        ]
        print(
            format_table(
                ["histogram", "count", "sum", "min", "max", "mean"], rows
            )
        )
    kinds = cache_snapshot.get("by_kind", {})
    if kinds:
        rows = [
            [kind, c["hits"], c["misses"], f"{c['hit_rate']:.2f}"]
            for kind, c in sorted(kinds.items())
        ]
        print(format_table(["cache kind", "hits", "misses", "rate"], rows))
    # Chunk-selection summary: always printed (zeros included) so a run
    # can confirm the sketch/selection machinery did or did not engage.
    counter = get_registry().counter
    print(
        "selection: "
        f"sketch_hits={counter('selection.sketch_hits'):g} "
        f"sketch_misses={counter('selection.sketch_misses'):g} "
        f"plans={counter('selection.plans'):g} "
        f"chunks_selected={counter('selection.chunks_selected'):g}"
        f"/{counter('selection.chunks_eligible'):g} eligible"
    )
    # Incremental-ingestion summary, same always-printed discipline.
    print(
        "ingest: "
        f"events={counter('ingest.events'):g} "
        f"chunks_extended={counter('ingest.chunks_extended'):g} "
        f"chunks_recomputed={counter('ingest.chunks_recomputed'):g} "
        f"sketches_retained={counter('ingest.sketches_retained'):g} "
        f"reservoir_updates={counter('ingest.reservoir_updates'):g}"
    )
    if args.json is not None:
        _write_json(
            {"registry": registry_snapshot, "cache": cache_snapshot},
            args.json,
        )
    return 0


def _run_serve(args) -> int:
    """Serve a stored database to concurrent clients until interrupted."""
    from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
    from repro.errors import ReproError
    from repro.middleware.session import AQPSession
    from repro.server import ServerConfig, make_server
    from repro.storage.io import load_database

    try:
        db = load_database(args.database)
    except ReproError as error:
        print(f"cannot load database from {args.database}: {error}")
        return 1
    session = AQPSession(db)
    try:
        if not args.exact_only:
            print(
                f"pre-processing samples (base rate {args.base_rate:g}) ..."
            )
            session.install(
                SmallGroupSampling(SmallGroupConfig(base_rate=args.base_rate))
            )
        server = make_server(
            session,
            host=args.host,
            port=args.port,
            config=ServerConfig(
                max_inflight=args.max_inflight,
                default_deadline=args.deadline,
            ),
        )
    except ReproError as error:
        session.close()
        print(f"cannot start server: {error}")
        return 1
    host, port = server.server_address[:2]
    print(
        f"serving {args.database} on http://{host}:{port} "
        f"(max_inflight={args.max_inflight}"
        + (
            f", default deadline {args.deadline:g}s"
            if args.deadline is not None
            else ""
        )
        + "); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down ...")
    finally:
        server.shutdown()
        server.server_close()
        session.close()
    return 0


def _run_query(args) -> int:
    """Send one query to a running server and render the answer."""
    from repro.client import ReproClient
    from repro.errors import ServerError

    with ReproClient(host=args.host, port=args.port) as client:
        try:
            response = client.query(
                args.sql, mode=args.mode, timeout=args.timeout
            )
        except ServerError as error:
            code = f" [{error.code}]" if error.code else ""
            print(f"query failed{code}: {error}")
            return 1
    if args.json:
        _write_json(response, "-")
        return 0
    answer = response.get("answer", {})
    for kind in ("approx", "exact"):
        part = answer.get(kind)
        if part is None:
            continue
        headers = list(part["group_columns"]) + list(part["aggregate_names"])
        rows = [
            list(group["key"])
            + list(group.get("estimates", group.get("values", [])))
            for group in part["groups"]
        ]
        label = (
            f"approximate answer ({part.get('technique', '')}, "
            f"{part['n_groups']} groups)"
            if kind == "approx"
            else f"exact answer ({part['n_groups']} groups)"
        )
        print(label)
        print(format_table(headers, rows))
    timings = response.get("timings", {})
    parts = [
        f"{name}={timings[key]:.4f}s"
        for name, key in (
            ("approx", "approx_seconds"),
            ("exact", "exact_seconds"),
        )
        if timings.get(key) is not None
    ]
    if parts:
        print("timings: " + " ".join(parts))
    return 0


def _run_report(results_dir: Path) -> int:
    """Summarise recorded figure CSVs: per series, the value range."""
    import csv

    files = sorted(results_dir.glob("figure_*.csv"))
    if not files:
        print(
            f"no figure_*.csv files in {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
        return 1
    rows = []
    for path in files:
        figure = path.stem.removeprefix("figure_")
        series: dict[str, list[float]] = {}
        with path.open() as handle:
            for record in csv.DictReader(handle):
                try:
                    value = float(record["value"])
                except ValueError:
                    continue
                series.setdefault(record["series"], []).append(value)
        for name, values in sorted(series.items()):
            rows.append(
                [figure, name, len(values), min(values), max(values)]
            )
    print(format_table(["figure", "series", "points", "min", "max"], rows))
    print(f"\n{len(files)} recorded figures in {results_dir}")
    return 0


def _run_plan(args) -> int:
    from repro.analysis.model import AnalysisScenario
    from repro.analysis.planner import plan_allocation_ratio, plan_budget
    from repro.errors import ExperimentError

    scenario = AnalysisScenario(
        n_group_columns=args.group_columns,
        selectivity=args.selectivity,
        n_distinct=args.distinct,
        z=args.z,
        database_rows=args.rows,
        budget_fraction=args.budget,
    )
    plan = plan_allocation_ratio(scenario)
    print("At the given budget (Theorem 4.1 model):")
    print(
        format_table(
            ["parameter", "value"],
            [
                ["budget fraction", plan.budget_fraction],
                ["allocation ratio (gamma)", plan.allocation_ratio],
                ["base rate r", plan.base_rate],
                ["predicted SqRelErr", plan.predicted_sq_rel_err],
            ],
        )
    )
    if args.target is not None:
        try:
            sized = plan_budget(scenario, args.target)
        except ExperimentError as error:
            print(f"cannot reach target: {error}")
            return 1
        print(f"\nMinimum budget for SqRelErr <= {args.target}:")
        print(
            format_table(
                ["parameter", "value"],
                [
                    ["budget fraction", sized.budget_fraction],
                    ["allocation ratio (gamma)", sized.allocation_ratio],
                    ["base rate r", sized.base_rate],
                    ["predicted SqRelErr", sized.predicted_sq_rel_err],
                ],
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
