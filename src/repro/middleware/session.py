"""The AQP middleware session.

The paper frames sampling-based AQP systems as "a thin layer of
middleware which re-writes queries to run against sample tables stored as
ordinary relations in a standard, off-the-shelf database server".
:class:`AQPSession` is that layer over this package's engine: SQL text
goes in, approximate (and/or exact) answers come out, and every query is
logged so the observed workload can drive workload-aware tuning
(column trimming, §5.4.2).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.answer import ApproxAnswer
from repro.core.combiner import execute_pieces
from repro.core.interfaces import AQPTechnique, PreprocessReport
from repro.engine.cache import get_cache
from repro.engine.database import Database
from repro.engine.executor import GroupedResult, execute
from repro.engine.expressions import Query
from repro.engine.parallel import ExecutionOptions, resolve_options
from repro.engine.zonemap import PieceSkipStats, SkipReport
from repro.errors import RuntimePhaseError
from repro.experiments.reporting import format_table
from repro.sql.parser import parse_query
from repro.workload.spec import Workload, WorkloadConfig, WorkloadQuery


@dataclass
class SessionResult:
    """Outcome of one middleware query.

    Holds whichever of the approximate/exact answers were requested, with
    wall-clock timings, and renders a side-by-side comparison.
    """

    sql: str
    query: Query
    approx: ApproxAnswer | None = None
    exact: GroupedResult | None = None
    approx_seconds: float = 0.0
    exact_seconds: float = 0.0
    #: Data-skipping outcome (:class:`~repro.engine.zonemap.SkipReport`)
    #: — the approximate answer's report when available, else the exact
    #: scan's.  Rendered by :meth:`to_text` when ``explained`` is set.
    skip_report: SkipReport | None = None
    explained: bool = False

    @property
    def speedup(self) -> float:
        """Exact time over approximate time (requires mode="both")."""
        if self.approx_seconds <= 0 or self.exact_seconds <= 0:
            return float("nan")
        return self.exact_seconds / self.approx_seconds

    def to_text(self, max_rows: int = 20, level: float = 0.95) -> str:
        """Human-readable rendering of the result."""
        lines = []
        if self.approx is not None:
            lines.append(
                f"approximate answer ({self.approx.technique}, "
                f"{self.approx.n_groups} groups, "
                f"{self.approx_seconds * 1000:.1f} ms)"
            )
            headers = list(self.approx.group_columns) + [
                f"{name} (est.)" for name in self.approx.aggregate_names
            ] + ["95% CI", "exact?"]
            rows = []
            ordered = sorted(
                self.approx.groups.items(),
                key=lambda item: -item[1][0].value,
            )
            for group, estimates in ordered[:max_rows]:
                first = estimates[0]
                lo, hi = first.confidence_interval(level)
                rows.append(
                    list(group)
                    + [e.value for e in estimates]
                    + [f"[{lo:.1f}, {hi:.1f}]", "yes" if first.exact else ""]
                )
            lines.append(format_table(headers, rows))
        if self.exact is not None:
            lines.append(
                f"exact answer ({self.exact.n_groups} groups, "
                f"{self.exact_seconds * 1000:.1f} ms)"
            )
            if self.exact.rows:
                headers = list(self.exact.group_columns) + list(
                    self.exact.aggregate_names
                )
                ordered = sorted(
                    self.exact.rows.items(), key=lambda item: -item[1][0]
                )
                lines.append(
                    format_table(
                        headers,
                        [
                            list(group) + list(row)
                            for group, row in ordered[:max_rows]
                        ],
                    )
                )
        if self.approx is not None and self.exact is not None:
            lines.append(f"speedup: {self.speedup:.1f}x")
        if self.explained and self.skip_report is not None:
            lines.append(self.skip_report.to_text())
        return "\n".join(lines)


@dataclass
class _LogEntry:
    sql: str
    query: Query
    mode: str
    seconds: float


class AQPSession:
    """SQL-in / answers-out middleware over a database and an AQP technique.

    Safe for concurrent :meth:`sql` / :meth:`execute` callers: the query
    log and the parse/plan memos take the session lock, and the engine
    layers underneath (execution cache, worker pool) are thread-safe.
    The lock is never held across parsing, rewriting, or execution —
    concurrent misses on the same memo key recompute independently
    (benign stampede, last put wins) rather than serialising the
    session.  :meth:`install` is the exception: installing a technique
    while queries are in flight is not supported.
    """

    def __init__(
        self,
        db: Database,
        technique: AQPTechnique | None = None,
        options: ExecutionOptions | None = None,
    ) -> None:
        self.db = db
        self.technique = technique
        self.report: PreprocessReport | None = None
        #: Parallelism knobs forwarded to piece execution and the exact
        #: executor; ``None`` uses the process-wide defaults.
        self.options = options
        self._lock = threading.Lock()
        self._log: list[_LogEntry] = []
        # SQL text -> parsed Query (parse is deterministic, text is frozen).
        self._parse_memo: dict[str, Query] = {}
        # Query -> (technique, plan_version, pieces): the rewrite plan for
        # structurally identical queries, revalidated per lookup.
        self._plan_memo: dict[Query, tuple[AQPTechnique, int, list]] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def install(self, technique: AQPTechnique) -> PreprocessReport:
        """Pre-process ``technique`` against the database and adopt it."""
        self.report = technique.preprocess(self.db)
        self.technique = technique
        return self.report

    def require_technique(self) -> AQPTechnique:
        """The installed technique, or an explanatory error."""
        if self.technique is None:
            raise RuntimePhaseError(
                "no AQP technique installed; call session.install(...) first"
            )
        return self.technique

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def sql(
        self, text: str, mode: str = "approx", explain: bool = False
    ) -> SessionResult:
        """Run a SQL aggregation query.

        ``mode`` is ``"approx"`` (default), ``"exact"``, or ``"both"``.
        With ``explain=True`` the result also carries (and renders) the
        data-skipping report: per piece, chunks scanned vs skipped and
        rows actually touched while building the WHERE mask.
        """
        if mode not in ("approx", "exact", "both"):
            raise RuntimePhaseError(
                f"mode must be approx, exact, or both; got {mode!r}"
            )
        query = self._parse(text)
        result = SessionResult(sql=text, query=query, explained=explain)
        if mode in ("approx", "both"):
            technique = self.require_technique()
            start = time.perf_counter()
            result.approx = self._answer_approx(technique, query)
            result.approx_seconds = time.perf_counter() - start
            if result.approx.skip_report is not None:
                result.skip_report = result.approx.skip_report
        if mode in ("exact", "both"):
            exact_options = resolve_options(self.options)
            exact_report = SkipReport(enabled=exact_options.data_skipping)
            exact_stats = PieceSkipStats(description=f"exact:{query.table}")
            exact_report.pieces.append(exact_stats)
            start = time.perf_counter()
            result.exact = execute(
                self.db, query, options=self.options, skip_stats=exact_stats
            )
            result.exact_seconds = time.perf_counter() - start
            if result.skip_report is None:
                result.skip_report = exact_report
        with self._lock:
            self._log.append(
                _LogEntry(
                    sql=text,
                    query=query,
                    mode=mode,
                    seconds=result.approx_seconds or result.exact_seconds,
                )
            )
        return result

    def _parse(self, text: str) -> Query:
        """Parse SQL, memoising by exact text (parsing is deterministic)."""
        metrics = get_cache().metrics
        with self._lock:
            query = self._parse_memo.get(text)
        if query is None:
            metrics.record_miss("sql_parse")
            query = parse_query(text)
            with self._lock:
                self._parse_memo[text] = query
        else:
            metrics.record_hit("sql_parse")
        return query

    def _answer_approx(
        self, technique: AQPTechnique, query: Query
    ) -> ApproxAnswer:
        """Answer approximately, memoising the technique's rewrite plan.

        Techniques exposing ``choose_samples`` (the dynamic-selection
        family) get a per-query plan memo keyed by the parsed
        :class:`Query` — so structurally identical SQL skips sample
        selection and rewriting — validated against the technique's
        ``plan_version`` (bumped by preprocess and incremental inserts).
        """
        chooser = getattr(technique, "choose_samples", None)
        version = getattr(technique, "plan_version", None)
        if chooser is None or version is None:
            return technique.answer(query)
        metrics = get_cache().metrics
        try:
            with self._lock:
                entry = self._plan_memo.get(query)
        except TypeError:  # unhashable literal somewhere in the query
            return technique.answer(query)
        if (
            entry is not None
            and entry[0] is technique
            and entry[1] == version
        ):
            metrics.record_hit("plan")
            pieces = entry[2]
        else:
            metrics.record_miss("plan")
            technique.require_preprocessed()
            pieces = chooser(query)
            with self._lock:
                self._plan_memo[query] = (technique, version, pieces)
        return execute_pieces(
            pieces, technique=technique.name, options=self.options
        )

    def explain(self, text: str) -> str:
        """Describe how the installed technique would answer ``text``.

        Shows the chosen sample tables and the rewritten SQL without
        executing the aggregation.
        """
        technique = self.require_technique()
        query = parse_query(text)
        chooser = getattr(technique, "choose_samples", None)
        if chooser is None:
            return (
                f"technique {technique.name!r} does not expose a rewrite "
                "plan; it would scan "
                f"{technique.rows_for_query(query)} sample rows"
            )
        pieces = chooser(query)
        from repro.core.rewriter import pieces_to_sql

        lines = [f"technique: {technique.name}", "pieces:"]
        for piece in pieces:
            lines.append(
                f"  - {piece.description or piece.table.name}: "
                f"{piece.table.n_rows} rows, scale {piece.scale:g}"
                f"{', exact' if piece.zero_variance else ''}"
            )
        lines.append("rewritten SQL:")
        lines.append(pieces_to_sql(pieces))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Workload feedback
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Number of queries issued through the session."""
        return len(self._log)

    def observed_workload(self) -> Workload:
        """The session's query log as a :class:`Workload`.

        Feed this to :func:`repro.core.workload_policy.trim_columns` to
        retune the sample layout to what users actually ask.
        """
        queries = []
        for index, entry in enumerate(self._log):
            query = entry.query
            predicates = (
                len(getattr(query.where, "operands", (query.where,)))
                if query.where is not None
                else 0
            )
            queries.append(
                WorkloadQuery(
                    query=query,
                    n_group_columns=len(query.group_by),
                    n_predicates=predicates,
                    subset_fraction=0.0,
                    aggregate=query.aggregates[0].func.value,
                    index=index,
                )
            )
        config = WorkloadConfig(queries_per_combo=max(1, len(queries)))
        return Workload(config=config, queries=tuple(queries))
