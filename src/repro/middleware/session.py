"""The AQP middleware session.

The paper frames sampling-based AQP systems as "a thin layer of
middleware which re-writes queries to run against sample tables stored as
ordinary relations in a standard, off-the-shelf database server".
:class:`AQPSession` is that layer over this package's engine: SQL text
goes in, approximate (and/or exact) answers come out, and every query is
logged so the observed workload can drive workload-aware tuning
(column trimming, §5.4.2).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.answer import ApproxAnswer
from repro.core.combiner import execute_pieces
from repro.core.interfaces import AQPTechnique, PreprocessReport
from repro.engine.cache import SingleFlight, get_cache
from repro.engine.database import Database
from repro.engine.deadline import Deadline
from repro.engine.executor import GroupedResult, execute
from repro.engine.expressions import Query
from repro.engine.parallel import ExecutionOptions, resolve_options
from repro.engine.table import Table
from repro.engine.zonemap import PieceSkipStats, SkipReport
from repro.errors import InternalError, RuntimePhaseError, SchemaError
from repro.experiments.reporting import format_table
from repro.obs.profile import QueryProfile
from repro.obs.registry import get_registry
from repro.obs.trace import NULL_SPAN, Span
from repro.sql.parser import parse_query
from repro.workload.spec import Workload, WorkloadConfig, WorkloadQuery


@dataclass
class SessionResult:
    """Outcome of one middleware query.

    Holds whichever of the approximate/exact answers were requested, with
    wall-clock timings, and renders a side-by-side comparison.
    """

    sql: str
    query: Query
    approx: ApproxAnswer | None = None
    exact: GroupedResult | None = None
    approx_seconds: float = 0.0
    exact_seconds: float = 0.0
    #: Data-skipping outcome (:class:`~repro.engine.zonemap.SkipReport`)
    #: — the approximate answer's report when available, else the exact
    #: scan's.  Rendered by :meth:`to_text` when ``explained`` is set.
    skip_report: SkipReport | None = None
    explained: bool = False
    #: Per-query observability record (:class:`~repro.obs.QueryProfile`)
    #: when the query ran with ``profile=True``; ``None`` otherwise.
    profile: QueryProfile | None = None

    @property
    def speedup(self) -> float:
        """Exact time over approximate time (requires mode="both").

        NaN when either side did not run (kept NaN — not ``None`` — for
        backward compatibility; presentation layers must render via
        :attr:`speedup_or_none` so the NaN never leaks into text or,
        worse, a strict-JSON report).
        """
        if self.approx_seconds <= 0 or self.exact_seconds <= 0:
            return float("nan")
        return self.exact_seconds / self.approx_seconds

    @property
    def speedup_or_none(self) -> float | None:
        """:attr:`speedup` as a finite float, or ``None``.

        This is the JSON-safe view: ``None`` serialises as ``null``
        where NaN would produce invalid strict JSON.
        """
        value = self.speedup
        return value if value == value else None

    def to_text(self, max_rows: int = 20, level: float = 0.95) -> str:
        """Human-readable rendering of the result."""
        lines = []
        if self.approx is not None:
            lines.append(
                f"approximate answer ({self.approx.technique}, "
                f"{self.approx.n_groups} groups, "
                f"{self.approx_seconds * 1000:.1f} ms)"
            )
            headers = list(self.approx.group_columns) + [
                f"{name} (est.)" for name in self.approx.aggregate_names
            ] + [f"{level:.0%} CI", "exact?"]
            rows = []
            ordered = sorted(
                self.approx.groups.items(),
                key=lambda item: -item[1][0].value,
            )
            for group, estimates in ordered[:max_rows]:
                first = estimates[0]
                lo, hi = first.confidence_interval(level)
                rows.append(
                    list(group)
                    + [e.value for e in estimates]
                    + [f"[{lo:.1f}, {hi:.1f}]", "yes" if first.exact else ""]
                )
            lines.append(format_table(headers, rows))
        if self.exact is not None:
            lines.append(
                f"exact answer ({self.exact.n_groups} groups, "
                f"{self.exact_seconds * 1000:.1f} ms)"
            )
            if self.exact.rows:
                headers = list(self.exact.group_columns) + list(
                    self.exact.aggregate_names
                )
                ordered = sorted(
                    self.exact.rows.items(), key=lambda item: -item[1][0]
                )
                lines.append(
                    format_table(
                        headers,
                        [
                            list(group) + list(row)
                            for group, row in ordered[:max_rows]
                        ],
                    )
                )
        if self.approx is not None and self.exact is not None:
            speedup = self.speedup_or_none
            lines.append(
                "speedup: "
                + (f"{speedup:.1f}x" if speedup is not None else "n/a")
            )
        if self.explained and self.skip_report is not None:
            lines.append(self.skip_report.to_text())
        if self.profile is not None:
            lines.append(self.profile.to_text())
        return "\n".join(lines)


@dataclass
class _LogEntry:
    sql: str
    query: Query
    mode: str
    seconds: float


class AQPSession:
    """SQL-in / answers-out middleware over a database and an AQP technique.

    Safe for concurrent :meth:`sql` / :meth:`execute` callers: the query
    log and the parse/plan memos take the session lock, and the engine
    layers underneath (execution cache, worker pool) are thread-safe.
    The lock is never held across parsing, rewriting, or execution —
    concurrent misses on the same memo key are **single-flighted** (one
    caller parses/plans, the concurrent duplicates wait and share the
    result) rather than either serialising the session or stampeding N
    identical computations.  :meth:`install` is the exception:
    installing a technique while queries are in flight is not supported.

    :meth:`close` is idempotent and may race other callers; once closed,
    every query/ingest entry point raises a clean
    ``InternalError("session closed")`` instead of operating on torn
    state (the serving layer's lifecycle management relies on both).
    """

    def __init__(
        self,
        db: Database,
        technique: AQPTechnique | None = None,
        options: ExecutionOptions | None = None,
    ) -> None:
        self.db = db
        self.technique = technique
        self.report: PreprocessReport | None = None
        #: Parallelism knobs forwarded to piece execution and the exact
        #: executor; ``None`` uses the process-wide defaults.
        self.options = options
        self._lock = threading.Lock()
        self._closed = False
        self._log: list[_LogEntry] = []
        # SQL text -> parsed Query (parse is deterministic, text is frozen).
        self._parse_memo: dict[str, Query] = {}
        # Query -> (technique, plan_version, pieces): the rewrite plan for
        # structurally identical queries, revalidated per lookup.
        self._plan_memo: dict[Query, tuple[AQPTechnique, int, list]] = {}
        # Cold parse/plan misses coalesce here instead of stampeding.
        self._flight = SingleFlight()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def _require_open(self) -> None:
        """Reject use after :meth:`close` with a clean error.

        Without this guard a post-close ``sql()`` would die deep in the
        engine with a raw ``AttributeError`` (or, worse, double-release
        shared-memory arena segments on a second ``__exit__``).
        """
        if self._closed:
            raise InternalError("session closed")

    def close(self) -> None:
        """Release session-scoped derived state (idempotent).

        Clears the parse/plan memos, drops every recorded provenance
        sketch, and releases every shared-memory segment of the process
        backend's column arena.  The sketch store and arena are
        process-wide (like the execution cache), so closing one session
        drops state other live sessions may be about to use — that is
        safe, not wrong: a released segment is simply republished on the
        next process scatter, and a dropped sketch is re-recorded on the
        next evaluation.  The worker pools stay up (they are
        process-wide and shut down atexit, or explicitly via
        :func:`repro.engine.parallel.shutdown_default_pools`).

        Safe to call more than once — including the implicit second call
        of ``with session: ... finally session.close()`` patterns: only
        the first caller releases anything, later calls (and concurrent
        racers) return immediately, so arena segments can never be
        double-released through this path.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._parse_memo.clear()
            self._plan_memo.clear()
        from repro.engine.selection import get_sketch_store

        get_sketch_store().clear()
        import sys

        procpool = sys.modules.get("repro.engine.procpool")
        if procpool is not None:
            procpool.get_arena().release_all()

    def __enter__(self) -> "AQPSession":
        self._require_open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def install(self, technique: AQPTechnique) -> PreprocessReport:
        """Pre-process ``technique`` against the database and adopt it."""
        self._require_open()
        self.report = technique.preprocess(self.db)
        self.technique = technique
        return self.report

    def require_technique(self) -> AQPTechnique:
        """The installed technique, or an explanatory error."""
        if self.technique is None:
            raise RuntimePhaseError(
                "no AQP technique installed; call session.install(...) first"
            )
        return self.technique

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append_rows(self, name: str, batch: Table) -> Table:
        """Append ``batch`` to table ``name``, maintaining derived state.

        Routes through :meth:`Database.append_rows` with this session's
        options, so under ``ExecutionOptions.incremental_appends`` (the
        default) zone maps, word summaries, provenance sketches, and
        shared-memory segments are extended/retired incrementally rather
        than rebuilt.  When the appended table is the fact table and the
        installed technique advertises incremental maintenance
        (``supports_incremental_maintenance()``), the batch is also fed
        to the technique's ``insert_rows`` so its samples keep tracking
        the base data without a rebuild.  Memoised rewrite plans
        revalidate against the technique's plan version on the next
        lookup, so no memo clearing is needed here.

        Under a star schema the technique classifies against the joined
        view, so the batch may (must, for incremental maintenance) carry
        the dimension attributes too; only the stored table's own
        columns are persisted, the full batch goes to ``insert_rows``.
        """
        self._require_open()
        stored_names = self.db.table(name).column_names
        to_store = batch
        if set(stored_names) <= set(batch.column_names) and len(
            batch.column_names
        ) > len(stored_names):
            to_store = batch.select(stored_names)
        merged = self.db.append_rows(name, to_store, options=self.options)
        technique = self.technique
        if technique is not None:
            try:
                is_fact = name == self.db.fact_table.name
            except SchemaError:
                is_fact = False
            supports = getattr(
                technique, "supports_incremental_maintenance", None
            )
            if is_fact and callable(supports) and supports():
                technique.insert_rows(batch)
        return merged

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def sql(
        self,
        text: str,
        mode: str = "approx",
        explain: bool = False,
        profile: bool = False,
        deadline: Deadline | None = None,
    ) -> SessionResult:
        """Run a SQL aggregation query.

        ``mode`` is ``"approx"`` (default), ``"exact"``, or ``"both"``.
        With ``explain=True`` the result also carries (and renders) the
        data-skipping report: per piece, chunks scanned vs skipped and
        rows actually touched while building the WHERE mask.

        With ``profile=True`` the result additionally carries a
        :class:`~repro.obs.QueryProfile` — the span tree of the query's
        lifecycle (parse → plan → per-piece execution → combine), the
        execution-cache hit/miss delta, and the data-skipping outcome.
        Profiling is answer-neutral: the estimates are byte-identical
        with it on or off (the engine treats spans as write-only — lint
        rule RL009 — and the determinism sweep test verifies it
        end to end).

        ``deadline`` (a :class:`~repro.engine.deadline.Deadline`) bounds
        the request: checkpoints after parse, before planning, at the
        head of each piece task, and between modes raise
        :class:`~repro.errors.DeadlineExceeded` once it expires.
        Deadlines never change answers — a request either completes
        byte-identically to an unbounded run or raises.
        """
        self._require_open()
        if mode not in ("approx", "exact", "both"):
            raise RuntimePhaseError(
                f"mode must be approx, exact, or both; got {mode!r}"
            )
        root = Span("query") if profile else NULL_SPAN
        cache_before = get_cache().metrics.counts() if profile else None
        registry = get_registry()
        registry.incr("session.queries")
        registry.incr(f"session.queries.{mode}")
        with root:
            parse_span = root.child("parse")
            with parse_span:
                query = self._parse(text)
            if deadline is not None:
                deadline.check("parse")
            result = SessionResult(sql=text, query=query, explained=explain)
            if mode in ("approx", "both"):
                technique = self.require_technique()
                approx_span = root.child("execute.approx")
                start = time.perf_counter()
                with approx_span:
                    result.approx = self._answer_approx(
                        technique, query, span=approx_span, deadline=deadline
                    )
                result.approx_seconds = time.perf_counter() - start
                registry.observe(
                    "session.approx_seconds", result.approx_seconds
                )
                if result.approx.skip_report is not None:
                    result.skip_report = result.approx.skip_report
            if mode in ("exact", "both"):
                if deadline is not None:
                    deadline.check("exact execution")
                exact_options = resolve_options(self.options)
                exact_report = SkipReport(enabled=exact_options.data_skipping)
                exact_stats = PieceSkipStats(
                    description=f"exact:{query.table}"
                )
                exact_report.pieces.append(exact_stats)
                exact_span = root.child("execute.exact")
                start = time.perf_counter()
                with exact_span:
                    result.exact = execute(
                        self.db,
                        query,
                        options=self.options,
                        skip_stats=exact_stats,
                        span=exact_span,
                    )
                result.exact_seconds = time.perf_counter() - start
                registry.observe(
                    "session.exact_seconds", result.exact_seconds
                )
                if result.skip_report is None:
                    result.skip_report = exact_report
        if profile:
            result.profile = QueryProfile(
                sql=text,
                mode=mode,
                technique=(
                    result.approx.technique
                    if result.approx is not None
                    else None
                ),
                trace=root,
                approx_seconds=(
                    result.approx_seconds
                    if result.approx is not None
                    else None
                ),
                exact_seconds=(
                    result.exact_seconds
                    if result.exact is not None
                    else None
                ),
                speedup=result.speedup_or_none,
                rows_scanned=(
                    result.approx.rows_scanned
                    if result.approx is not None
                    else None
                ),
                cache_before=cache_before,
                cache_after=get_cache().metrics.counts(),
                skip_report=result.skip_report,
            )
        with self._lock:
            self._log.append(
                _LogEntry(
                    sql=text,
                    query=query,
                    mode=mode,
                    seconds=result.approx_seconds or result.exact_seconds,
                )
            )
        return result

    def _parse(self, text: str) -> Query:
        """Parse SQL, memoising by exact text (parsing is deterministic).

        Cold misses on the same text are single-flighted: one thread
        parses, concurrent duplicates wait and share the memo entry
        (counted as ``coalesced``) instead of each re-parsing.
        """
        metrics = get_cache().metrics
        with self._lock:
            query = self._parse_memo.get(text)
        if query is not None:
            metrics.record_hit("sql_parse")
            return query

        def _parse_and_memoise() -> Query:
            metrics.record_miss("sql_parse")
            parsed = parse_query(text)
            with self._lock:
                self._parse_memo[text] = parsed
            return parsed

        query, leader = self._flight.do(("parse", text), _parse_and_memoise)
        if not leader:
            metrics.record_coalesced("sql_parse")
        return query

    def _answer_approx(
        self,
        technique: AQPTechnique,
        query: Query,
        span: Span = NULL_SPAN,
        deadline: Deadline | None = None,
    ) -> ApproxAnswer:
        """Answer approximately, memoising the technique's rewrite plan.

        Techniques exposing ``choose_samples`` (the dynamic-selection
        family) get a per-query plan memo keyed by the parsed
        :class:`Query` — so structurally identical SQL skips sample
        selection and rewriting — validated against the technique's
        ``plan_version`` (bumped by preprocess and incremental inserts).
        Cold plan misses on the same query are single-flighted: one
        thread runs sample selection, concurrent duplicates wait and
        share the memoised pieces.

        ``span`` (when profiling) gains a ``plan`` child timing sample
        selection/rewriting and a ``pieces`` child owning the per-piece
        execution spans.
        """
        chooser = getattr(technique, "choose_samples", None)
        version = getattr(technique, "plan_version", None)
        if chooser is None or version is None:
            return technique.answer(query)
        metrics = get_cache().metrics

        def _memo_lookup():
            with self._lock:
                entry = self._plan_memo.get(query)
            if (
                entry is not None
                and entry[0] is technique
                and entry[1] == version
            ):
                return entry[2]
            return None

        try:
            pieces = _memo_lookup()
        except TypeError:  # unhashable literal somewhere in the query
            return technique.answer(query)
        plan_span = span.child("plan")
        with plan_span:
            if pieces is not None:
                metrics.record_hit("plan")
                plan_span.annotate(memo_hit=True)
            else:
                def _plan_and_memoise():
                    # Re-check inside the flight: a coalesced waiter that
                    # lost the leadership race re-enters here after the
                    # first leader already filled the memo.
                    memoised = _memo_lookup()
                    if memoised is not None:
                        return memoised
                    metrics.record_miss("plan")
                    technique.require_preprocessed()
                    chosen = chooser(query)
                    with self._lock:
                        self._plan_memo[query] = (technique, version, chosen)
                    return chosen

                pieces, leader = self._flight.do(
                    ("plan", query, id(technique), version),
                    _plan_and_memoise,
                )
                plan_span.annotate(memo_hit=False)
                if not leader:
                    metrics.record_coalesced("plan")
        pieces_span = span.child("pieces")
        with pieces_span:
            return execute_pieces(
                pieces,
                technique=technique.name,
                options=self.options,
                span=pieces_span,
                deadline=deadline,
            )

    def explain(self, text: str) -> str:
        """Describe how the installed technique would answer ``text``.

        Shows the chosen sample tables and the rewritten SQL without
        executing the aggregation.
        """
        technique = self.require_technique()
        query = parse_query(text)
        chooser = getattr(technique, "choose_samples", None)
        if chooser is None:
            return (
                f"technique {technique.name!r} does not expose a rewrite "
                "plan; it would scan "
                f"{technique.rows_for_query(query)} sample rows"
            )
        pieces = chooser(query)
        from repro.core.rewriter import pieces_to_sql

        lines = [f"technique: {technique.name}", "pieces:"]
        for piece in pieces:
            lines.append(
                f"  - {piece.description or piece.table.name}: "
                f"{piece.table.n_rows} rows, scale {piece.scale:g}"
                f"{', exact' if piece.zero_variance else ''}"
            )
        lines.append("rewritten SQL:")
        lines.append(pieces_to_sql(pieces))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Workload feedback
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Number of queries issued through the session."""
        return len(self._log)

    def observed_workload(self) -> Workload:
        """The session's query log as a :class:`Workload`.

        Feed this to :func:`repro.core.workload_policy.trim_columns` to
        retune the sample layout to what users actually ask.
        """
        queries = []
        for index, entry in enumerate(self._log):
            query = entry.query
            predicates = (
                len(getattr(query.where, "operands", (query.where,)))
                if query.where is not None
                else 0
            )
            queries.append(
                WorkloadQuery(
                    query=query,
                    n_group_columns=len(query.group_by),
                    n_predicates=predicates,
                    subset_fraction=0.0,
                    aggregate=query.aggregates[0].func.value,
                    index=index,
                )
            )
        config = WorkloadConfig(queries_per_combo=max(1, len(queries)))
        return Workload(config=config, queries=tuple(queries))
