"""Thin SQL middleware over the engine + an AQP technique."""

from repro.middleware.session import AQPSession, SessionResult

__all__ = ["AQPSession", "SessionResult"]
