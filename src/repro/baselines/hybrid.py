"""Small group sampling enhanced with outlier indexing (Section 4.2.1).

The paper notes that small group sampling is orthogonal to weighted
sampling of the overall sample: "it is also possible to use a non-uniform
sampling technique to construct the overall sample; for example ... we use
outlier indexing to construct the overall sample."  This technique does
exactly that: the small group tables are built as usual, while the overall
sample's row budget (``base_rate · N``) is split between an exact outlier
stratum — selected on a measure column per [9] — and a uniform sample of
the remaining rows.  Both overall parts carry the small-group bitmask and
are filtered against used small group tables at runtime, so the combining
logic is unchanged.

Section 5.3.3 compares this hybrid against outlier indexing alone on SUM
queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.outlier import select_outlier_indices
from repro.core.smallgroup import (
    OverallPart,
    SmallGroupConfig,
    SmallGroupSampling,
)
from repro.engine.reservoir import uniform_sample_indices
from repro.engine.table import Table
from repro.errors import PreprocessingError, SamplingError


@dataclass(frozen=True)
class HybridConfig(SmallGroupConfig):
    """Small-group config plus the outlier-index parameters.

    Attributes
    ----------
    measure:
        Measure column the outlier set is selected on.
    outlier_share:
        Fraction of the overall-sample budget stored as exact outliers.
    """

    measure: str = ""
    outlier_share: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.measure:
            raise SamplingError("hybrid small group sampling needs a measure")
        if not 0.0 < self.outlier_share < 1.0:
            raise SamplingError(
                f"outlier share must be in (0, 1), got {self.outlier_share}"
            )


class SmallGroupWithOutlier(SmallGroupSampling):
    """Small group sampling whose overall sample is outlier-indexed."""

    name = "small_group+outlier"

    def __init__(self, config: HybridConfig) -> None:
        super().__init__(config)
        self.config: HybridConfig = config

    def build_overall_parts(
        self,
        view: Table,
        member_matrix: np.ndarray,
        rng: np.random.Generator,
    ) -> list[OverallPart]:
        """Outlier stratum + uniform remainder within the overall budget."""
        if not view.has_column(self.config.measure):
            raise PreprocessingError(
                f"no measure column {self.config.measure!r}"
            )
        n = view.n_rows
        budget = max(2, round(self.config.base_rate * n))
        k = max(1, round(self.config.outlier_share * budget))
        values = view.column(self.config.measure).numeric_values()
        outlier_idx = select_outlier_indices(values, k)
        keep = np.ones(n, dtype=bool)
        keep[outlier_idx] = False
        rest_idx = np.flatnonzero(keep)
        sample_size = max(1, budget - outlier_idx.size)
        sampled = rest_idx[
            uniform_sample_indices(rest_idx.size, sample_size, rng)
        ]
        remainder_rate = sampled.size / rest_idx.size if rest_idx.size else 1.0

        outliers = self._store_rows(
            view, outlier_idx, "sg_outliers", member_matrix
        )
        remainder = self._store_rows(
            view, sampled, "sg_overall", member_matrix
        )
        return [
            OverallPart(
                table=outliers, scale=1.0, rate=1.0, zero_variance=True
            ),
            OverallPart(
                table=remainder,
                scale=1.0 / remainder_rate,
                rate=remainder_rate,
            ),
        ]
