"""Baseline AQP techniques the paper compares against (plus the
workload-based baseline the paper deferred)."""

from repro.baselines.congress import (
    BasicCongress,
    CongressConfig,
    FullCongress,
)
from repro.baselines.hybrid import HybridConfig, SmallGroupWithOutlier
from repro.baselines.icicles import IciclesConfig, IciclesSampling
from repro.baselines.outlier import (
    OutlierConfig,
    OutlierIndexing,
    select_outlier_indices,
)
from repro.baselines.uniform import UniformConfig, UniformSampling

__all__ = [
    "BasicCongress",
    "CongressConfig",
    "FullCongress",
    "HybridConfig",
    "IciclesConfig",
    "IciclesSampling",
    "OutlierConfig",
    "OutlierIndexing",
    "SmallGroupWithOutlier",
    "UniformConfig",
    "UniformSampling",
    "select_outlier_indices",
]
