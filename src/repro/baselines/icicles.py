"""Workload-based self-tuning sampling (in the spirit of Icicles [15]).

The paper's §5 footnote: "we do not present comparisons against other
sampling-based AQP systems such as [10, 15] as these methods require the
presence of workloads."  This library *has* a workload generator, so the
deferred comparison can be run: this baseline biases its sample toward
tuples frequently touched by a training workload — each tuple's
inclusion probability mixes a uniform floor with a share proportional to
how many training queries select the tuple — and answers queries with
Horvitz–Thompson weights.

The expected behaviour (and the reason the paper's authors favoured
syntax-driven dynamic selection): strong accuracy on queries distributed
like the training workload, degradation on ad hoc queries that touch
regions the workload never did.  The `beyond-paper` benchmark
demonstrates both halves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.answer import ApproxAnswer
from repro.core.combiner import execute_pieces
from repro.core.interfaces import (
    AQPTechnique,
    PreprocessReport,
    SampleTableInfo,
)
from repro.core.rewriter import SamplePiece
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.engine.reservoir import as_generator, weighted_sample_indices
from repro.engine.table import Table
from repro.errors import PreprocessingError, RuntimePhaseError, SamplingError
from repro.workload.spec import Workload


@dataclass(frozen=True)
class IciclesConfig:
    """Parameters of the workload-based sampling baseline.

    Attributes
    ----------
    rates:
        Sample-space budgets (fractions of the database).
    uniform_mix:
        Fraction of each budget allocated as a uniform floor, so tuples
        never touched by the training workload still have non-zero
        inclusion probability (keeping every estimator defined and
        unbiased).
    seed:
        RNG seed.
    """

    rates: tuple[float, ...] = (0.01,)
    uniform_mix: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.rates:
            raise SamplingError("at least one budget rate is required")
        for rate in self.rates:
            if not 0.0 < rate <= 1.0:
                raise SamplingError(f"rate must be in (0, 1], got {rate}")
        if not 0.0 < self.uniform_mix <= 1.0:
            raise SamplingError(
                f"uniform mix must be in (0, 1], got {self.uniform_mix}"
            )


@dataclass
class _WeightedSample:
    table: Table
    weights: np.ndarray
    variance_weights: np.ndarray


class IciclesSampling(AQPTechnique):
    """Self-tuning biased sampling driven by a training workload."""

    name = "icicles"

    def __init__(
        self, workload: Workload, config: IciclesConfig | None = None
    ) -> None:
        super().__init__()
        if not workload.queries:
            raise PreprocessingError(
                "icicles requires a non-empty training workload"
            )
        self.workload = workload
        self.config = config or IciclesConfig()
        self._samples: dict[float, _WeightedSample] = {}
        self._touch_fraction = 0.0

    def preprocess(self, db: Database) -> PreprocessReport:
        """Count per-tuple workload touches and draw biased samples."""
        start = time.perf_counter()
        view = db.joined_view()
        n = view.n_rows
        hits = np.zeros(n, dtype=np.float64)
        for wq in self.workload.queries:
            predicate = wq.query.where
            if predicate is None:
                hits += 1.0
            else:
                hits += predicate.evaluate(view)
        total_hits = float(hits.sum())
        self._touch_fraction = float((hits > 0).mean())
        rng = as_generator(self.config.seed)
        self._samples = {}
        for rate in self.config.rates:
            budget = max(1.0, rate * n)
            expected = np.full(n, self.config.uniform_mix * budget / n)
            if total_hits > 0:
                expected += (
                    (1.0 - self.config.uniform_mix) * budget * hits / total_hits
                )
            probabilities = np.minimum(expected, 1.0)
            # Rescale after capping so the budget is actually spent.
            for _ in range(4):
                total = probabilities.sum()
                if total <= 0:
                    break
                probabilities = np.minimum(
                    probabilities * (budget / total), 1.0
                )
            chosen = weighted_sample_indices(probabilities, rng)
            weights = 1.0 / probabilities[chosen]
            variance_weights = (
                1.0 - probabilities[chosen]
            ) * weights * weights
            name = f"icicles_{rate:.6f}".rstrip("0").rstrip(".")
            self._samples[rate] = _WeightedSample(
                table=view.take(chosen).rename(name),
                weights=weights,
                variance_weights=variance_weights,
            )
        self._preprocessed = True
        elapsed = time.perf_counter() - start
        return self._report(
            db,
            elapsed,
            details={
                "training_queries": len(self.workload),
                "touched_fraction": self._touch_fraction,
            },
        )

    def sample_tables(self) -> list[SampleTableInfo]:
        """One weighted sample table per budget."""
        return [
            SampleTableInfo(
                table=s.table, kind="workload", rate=rate, weights=s.weights
            )
            for rate, s in self._samples.items()
        ]

    def _pick_rate(self, rate: float | None) -> float:
        if rate is None:
            rate = self.config.rates[0]
        if rate in self._samples:
            return rate
        return min(self._samples, key=lambda r: abs(r - rate))

    def answer(self, query: Query) -> ApproxAnswer:
        """Answer from the first-budget sample."""
        return self.answer_at_rate(query, None)

    def answer_at_rate(self, query: Query, rate: float | None) -> ApproxAnswer:
        """Answer with Horvitz–Thompson weights."""
        self.require_preprocessed()
        if not self._samples:
            raise RuntimePhaseError("no samples built")
        sample = self._samples[self._pick_rate(rate)]
        piece = SamplePiece(
            table=sample.table,
            query=query.with_table(sample.table.name),
            weights=sample.weights,
            variance_weights=sample.variance_weights,
            counts_as_exact=False,
            description=f"{sample.table.name} (workload-biased)",
        )
        return execute_pieces([piece], technique=self.name)

    def rows_for_query(self, query: Query) -> int:
        """Rows scanned by the default-budget sample."""
        self.require_preprocessed()
        return self._samples[self._pick_rate(None)].table.n_rows
