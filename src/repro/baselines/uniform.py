"""Uniform random sampling baseline.

The classic static technique: one uniform sample of the (joined) database,
queries rewritten against it with results scaled by the inverse sampling
rate.  To support the paper's matched-sample-space comparisons — a query
with ``i`` grouping columns run by small group sampling at base rate ``r``
and allocation ratio ``γ`` touches ``(1 + γ·i)·r·N`` rows, so its uniform
competitor gets a sample of rate ``(1 + γ·i)·r`` — the technique can build
a *family* of samples at several rates and select per query, itself a
trivial instance of dynamic sample selection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.answer import ApproxAnswer
from repro.core.combiner import execute_pieces
from repro.core.interfaces import (
    AQPTechnique,
    PreprocessReport,
    SampleTableInfo,
)
from repro.core.rewriter import SamplePiece
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.engine.reservoir import (
    ReservoirSampler,
    as_generator,
    uniform_sample_indices,
)
from repro.engine.table import Table
from repro.errors import RuntimePhaseError, SamplingError


@dataclass(frozen=True)
class UniformConfig:
    """Parameters of the uniform sampling baseline.

    Attributes
    ----------
    rates:
        Sampling rates to pre-build samples for.  :meth:`answer` uses
        ``default_rate``; :meth:`answer_at_rate` picks the closest built
        rate (the matched-space harness uses this).
    default_rate:
        Rate used when none is requested (defaults to the first rate).
    use_reservoir:
        Build samples with streaming reservoir sampling or a direct draw.
    seed:
        RNG seed.
    """

    rates: tuple[float, ...] = (0.01,)
    default_rate: float | None = None
    use_reservoir: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.rates:
            raise SamplingError("at least one sampling rate is required")
        for rate in self.rates:
            if not 0.0 < rate <= 1.0:
                raise SamplingError(f"rate must be in (0, 1], got {rate}")
        if self.default_rate is not None and self.default_rate not in self.rates:
            raise SamplingError("default_rate must be one of rates")


class UniformSampling(AQPTechnique):
    """Uniform random sampling over the joined view (join synopsis)."""

    name = "uniform"

    def __init__(self, config: UniformConfig | None = None) -> None:
        super().__init__()
        self.config = config or UniformConfig()
        self._samples: dict[float, tuple[Table, float]] = {}

    def preprocess(self, db: Database) -> PreprocessReport:
        """Draw one uniform sample of the joined view per configured rate."""
        start = time.perf_counter()
        view = db.joined_view()
        rng = as_generator(self.config.seed)
        n = view.n_rows
        self._samples = {}
        for rate in self.config.rates:
            k = max(1, round(rate * n))
            if self.config.use_reservoir:
                sampler = ReservoirSampler(k, rng)
                sampler.offer_many(range(n))
                indices = sampler.sample()
            else:
                indices = uniform_sample_indices(n, k, rng)
            name = f"uniform_{rate:.6f}".rstrip("0").rstrip(".")
            table = view.take(indices).rename(name)
            actual_rate = indices.size / n if n else rate
            self._samples[rate] = (table, actual_rate)
        self._preprocessed = True
        elapsed = time.perf_counter() - start
        return self._report(db, elapsed, details={"rates": list(self.config.rates)})

    def sample_tables(self) -> list[SampleTableInfo]:
        """One stored sample table per configured rate."""
        return [
            SampleTableInfo(table=table, kind="uniform", rate=actual)
            for table, actual in self._samples.values()
        ]

    def _pick_rate(self, rate: float | None) -> float:
        if rate is None:
            rate = self.config.default_rate or self.config.rates[0]
        if rate in self._samples:
            return rate
        return min(self._samples, key=lambda r: abs(r - rate))

    def answer(self, query: Query) -> ApproxAnswer:
        """Answer using the default-rate sample."""
        return self.answer_at_rate(query, None)

    def answer_at_rate(self, query: Query, rate: float | None) -> ApproxAnswer:
        """Answer using the built sample whose rate is closest to ``rate``."""
        self.require_preprocessed()
        if not self._samples:
            raise RuntimePhaseError("no samples built")
        chosen = self._pick_rate(rate)
        table, actual_rate = self._samples[chosen]
        scale = 1.0 / actual_rate
        piece = SamplePiece(
            table=table,
            query=query.with_table(table.name),
            scale=scale,
            variance_weights=np.full(
                table.n_rows, (1.0 - actual_rate) * scale * scale
            ),
            counts_as_exact=False,
            description=f"{table.name} (rate {actual_rate:.4f})",
        )
        return execute_pieces([piece], technique=self.name)

    def rows_for_query(self, query: Query) -> int:
        """Rows scanned by the default-rate sample."""
        self.require_preprocessed()
        table, _ = self._samples[self._pick_rate(None)]
        return table.n_rows
