"""Basic congress (congressional sampling) baseline [2].

Congressional sampling builds a single stratified sample meant to serve
*all* group-by queries at once.  The *basic congress* variant — the one
the paper could run on a many-column database — considers the grouping on
the full set of candidate columns jointly:

* **house**: allocate sample space proportionally to stratum size
  (i.e. a uniform sample);
* **senate**: allocate sample space equally among the strata of the
  all-columns grouping;
* **basic congress**: give each stratum the *max* of its house and senate
  allocations, rescaled to the space budget.

Each sampled row carries weight ``stratum_size / stratum_sample_size``.
With many candidate columns the joint grouping shatters the table into a
huge number of tiny strata (the paper observed ~166,000 for SALES) and
the allocation degenerates toward uniform — the behaviour Figure 8
demonstrates.

Like the uniform baseline, a family of budgets can be pre-built so the
harness can match per-query sample space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.answer import ApproxAnswer
from repro.core.combiner import execute_pieces
from repro.core.interfaces import (
    AQPTechnique,
    PreprocessReport,
    SampleTableInfo,
)
from repro.core.rewriter import SamplePiece
from repro.engine.column import ColumnKind
from repro.engine.database import Database
from repro.engine.executor import dense_ids
from repro.engine.expressions import Query
from repro.engine.reservoir import as_generator
from repro.engine.table import Table
from repro.errors import PreprocessingError, RuntimePhaseError, SamplingError


@dataclass(frozen=True)
class CongressConfig:
    """Parameters of the basic congress baseline.

    Attributes
    ----------
    rates:
        Sample-space budgets (fractions of the database) to build samples
        for; one stratified sample per budget.
    columns:
        Candidate grouping columns (``None`` = all categorical columns).
    exclude_columns:
        Columns removed from the candidate set.
    max_distinct:
        Candidate columns with more distinct values are dropped.
    seed:
        RNG seed.
    """

    rates: tuple[float, ...] = (0.01,)
    columns: tuple[str, ...] | None = None
    exclude_columns: tuple[str, ...] = ()
    max_distinct: int = 5000
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.rates:
            raise SamplingError("at least one budget rate is required")
        for rate in self.rates:
            if not 0.0 < rate <= 1.0:
                raise SamplingError(f"rate must be in (0, 1], got {rate}")


@dataclass
class _StratifiedSample:
    """One stratified sample with exact and float HT weights.

    ``weights`` holds the exact rational Horvitz–Thompson weights
    (``Fraction`` objects: ``stratum_size / realized_count`` reconstructs
    the stratum size *exactly*, which no float64 weight can guarantee);
    ``weights_float`` is the correctly-rounded float64 twin used by the
    vectorised execution paths.
    """

    table: Table
    weights: np.ndarray
    variance_weights: np.ndarray
    weights_float: np.ndarray


class BasicCongress(AQPTechnique):
    """Basic congress: house ∪ senate stratified sampling."""

    name = "basic_congress"

    def __init__(self, config: CongressConfig | None = None) -> None:
        super().__init__()
        self.config = config or CongressConfig()
        self._samples: dict[float, _StratifiedSample] = {}
        self._n_strata = 0

    def candidate_columns(self, view: Table) -> list[str]:
        """Categorical columns considered for the joint grouping."""
        if self.config.columns is not None:
            return [c for c in self.config.columns if view.has_column(c)]
        excluded = set(self.config.exclude_columns)
        return [
            c
            for c in view.column_names
            if c not in excluded
            and view.column(c).kind is ColumnKind.STRING
            and view.column(c).distinct_count() <= self.config.max_distinct
        ]

    def preprocess(self, db: Database) -> PreprocessReport:
        """Stratify on all candidate columns and draw per-budget samples."""
        start = time.perf_counter()
        view = db.joined_view()
        columns = self.candidate_columns(view)
        if not columns:
            raise PreprocessingError("no candidate grouping columns")
        code_arrays = [view.column(c).data for c in columns]
        strata, n_strata = dense_ids(code_arrays)
        sizes = np.bincount(strata, minlength=n_strata).astype(np.float64)
        self._n_strata = n_strata
        rng = as_generator(self.config.seed)
        n = view.n_rows
        self._samples = {}
        for rate in self.config.rates:
            budget = max(1.0, rate * n)
            targets = self._targets(
                view, columns, strata, sizes, budget
            )
            self._samples[rate] = self._draw(view, strata, sizes, targets, rng, rate)
        self._preprocessed = True
        elapsed = time.perf_counter() - start
        return self._report(
            db,
            elapsed,
            details=dict(self._details(), n_strata=n_strata, columns=columns),
        )

    def _targets(
        self,
        view: Table,
        columns: list[str],
        strata: np.ndarray,
        sizes: np.ndarray,
        budget: float,
    ) -> np.ndarray:
        """Per-(finest-)stratum expected sample sizes (variant hook)."""
        return self._allocate(sizes, budget)

    def _details(self) -> dict:
        """Variant-specific report fields."""
        return {}

    @staticmethod
    def _allocate(sizes: np.ndarray, budget: float) -> np.ndarray:
        """Per-stratum expected sample sizes: max(house, senate), rescaled.

        The max-of-allocations vector is rescaled to the budget and capped
        at the stratum sizes, iterating a few times so the cap does not
        leave budget unused.
        """
        n = sizes.sum()
        n_strata = len(sizes)
        house = sizes * (budget / n)
        senate = np.full(n_strata, budget / n_strata)
        expected = np.maximum(house, senate)
        for _ in range(4):
            total = expected.sum()
            if total <= 0:
                break
            expected = np.minimum(expected * (budget / total), sizes)
        return expected

    @staticmethod
    def _draw(
        view: Table,
        strata: np.ndarray,
        sizes: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
        rate: float,
    ) -> _StratifiedSample:
        """Draw the per-stratum sample via randomised rounding.

        Each stratum's target ``e`` yields ``floor(e) + Bernoulli(frac(e))``
        rows sampled without replacement.  Horvitz–Thompson weights are
        derived from the *realized* per-stratum sampled counts and kept as
        exact rationals, so ``weight * realized_count`` reconstructs the
        stratum size exactly.
        """
        counts = np.floor(targets).astype(np.int64)
        counts += (rng.random(len(targets)) < (targets - counts)).astype(np.int64)
        counts = np.minimum(counts, sizes.astype(np.int64))
        # Random order within each stratum, then keep the first k_s rows.
        order = np.lexsort((rng.random(strata.size), strata))
        sorted_strata = strata[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_strata[1:] != sorted_strata[:-1]))
        )
        occurrence = np.arange(strata.size) - np.repeat(
            boundaries, np.diff(np.append(boundaries, strata.size))
        )
        keep = occurrence < counts[sorted_strata]
        chosen = np.sort(order[keep])
        chosen_strata = strata[chosen]
        realized = np.bincount(chosen_strata, minlength=sizes.size)
        # One exact rational weight per stratum, shared across its rows.
        stratum_weight = np.empty(sizes.size, dtype=object)
        for s in range(sizes.size):
            stratum_weight[s] = (
                Fraction(int(round(sizes[s])), int(realized[s]))
                if realized[s] > 0
                else Fraction(0)
            )
        weights = stratum_weight[chosen_strata]
        realized_f = realized.astype(np.float64)
        weights_float = (
            sizes[chosen_strata] / realized_f[chosen_strata]
            if chosen.size
            else np.empty(0, dtype=np.float64)
        )
        inclusion = (
            realized_f[chosen_strata] / sizes[chosen_strata]
            if chosen.size
            else np.empty(0, dtype=np.float64)
        )
        variance_weights = (1.0 - inclusion) * weights_float * weights_float
        name = f"congress_{rate:.6f}".rstrip("0").rstrip(".")
        return _StratifiedSample(
            table=view.take(chosen).rename(name),
            weights=weights,
            variance_weights=variance_weights,
            weights_float=weights_float,
        )

    def sample_tables(self) -> list[SampleTableInfo]:
        """One stratified sample table per budget."""
        return [
            SampleTableInfo(
                table=s.table,
                kind="stratified",
                rate=rate,
                weights=s.weights_float,
            )
            for rate, s in self._samples.items()
        ]

    def _pick_rate(self, rate: float | None) -> float:
        if rate is None:
            rate = self.config.rates[0]
        if rate in self._samples:
            return rate
        return min(self._samples, key=lambda r: abs(r - rate))

    def answer(self, query: Query) -> ApproxAnswer:
        """Answer from the first-budget sample."""
        return self.answer_at_rate(query, None)

    def answer_at_rate(self, query: Query, rate: float | None) -> ApproxAnswer:
        """Answer from the sample whose budget is closest to ``rate``."""
        self.require_preprocessed()
        if not self._samples:
            raise RuntimePhaseError("no samples built")
        sample = self._samples[self._pick_rate(rate)]
        piece = SamplePiece(
            table=sample.table,
            query=query.with_table(sample.table.name),
            weights=sample.weights_float,
            variance_weights=sample.variance_weights,
            counts_as_exact=False,
            description=f"{sample.table.name} ({self._n_strata} strata)",
        )
        return execute_pieces([piece], technique=self.name)

    def rows_for_query(self, query: Query) -> int:
        """Rows scanned by the default-budget sample."""
        self.require_preprocessed()
        return self._samples[self._pick_rate(None)].table.n_rows


class FullCongress(BasicCongress):
    """The full congress algorithm of [2].

    For *every* grouping ``G`` over subsets of the candidate columns —
    including the empty grouping (the *house*, i.e. a uniform sample) —
    each tuple's ideal inclusion probability under ``G`` divides the
    budget equally among ``G``'s groups and then equally among each
    group's tuples.  A tuple's final allocation is the **maximum** over
    all groupings, rescaled to the space budget.

    The number of groupings is ``2^k`` for ``k`` candidate columns, which
    is exactly why the paper could not run full congress on its
    245-column SALES database and fell back to basic congress; the
    ``max_subset_columns`` guard enforces the same reality here, and the
    preprocessing-time blowup is demonstrated in the benchmarks.
    """

    name = "congress"

    #: Refuse to enumerate more than 2^this groupings.
    DEFAULT_MAX_SUBSET_COLUMNS = 12

    def __init__(
        self,
        config: CongressConfig | None = None,
        max_subset_columns: int | None = None,
    ) -> None:
        super().__init__(config)
        self.max_subset_columns = (
            max_subset_columns
            if max_subset_columns is not None
            else self.DEFAULT_MAX_SUBSET_COLUMNS
        )
        self._n_groupings = 0
        self._subset_cache: list[tuple[np.ndarray, int]] | None = None

    def _targets(
        self,
        view: Table,
        columns: list[str],
        strata: np.ndarray,
        sizes: np.ndarray,
        budget: float,
    ) -> np.ndarray:
        from itertools import combinations

        k = len(columns)
        if k > self.max_subset_columns:
            raise PreprocessingError(
                f"full congress over {k} columns needs 2^{k} groupings; "
                f"the cap is {self.max_subset_columns} columns — use "
                "BasicCongress for wide schemas (as the paper did)"
            )
        n = view.n_rows
        n_strata = len(sizes)
        # Representative row per finest stratum: every grouping G is a
        # coarsening of the finest grouping, so a tuple's G-stratum is
        # determined by its finest stratum.
        _, rep_rows = np.unique(strata, return_index=True)
        if self._subset_cache is None:
            cache: list[tuple[np.ndarray, int]] = []
            for r in range(1, k + 1):
                for combo in combinations(range(k), r):
                    ids_g, n_g = dense_ids(
                        [view.column(columns[i]).data for i in combo]
                    )
                    group_sizes = np.bincount(ids_g, minlength=n_g)
                    # Size of each finest stratum's G-group.
                    cache.append((group_sizes[ids_g[rep_rows]], n_g))
            self._subset_cache = cache
        per_tuple = np.full(n_strata, budget / n)  # the house
        for group_sizes_at_rep, n_g in self._subset_cache:
            per_tuple = np.maximum(
                per_tuple, budget / (n_g * group_sizes_at_rep)
            )
        self._n_groupings = len(self._subset_cache) + 1
        expected = np.minimum(per_tuple, 1.0) * sizes
        for _ in range(4):
            total = expected.sum()
            if total <= 0:
                break
            expected = np.minimum(expected * (budget / total), sizes)
        return expected

    def _details(self) -> dict:
        return {"n_groupings": self._n_groupings}
