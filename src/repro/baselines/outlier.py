"""Outlier indexing baseline [9].

For SUM aggregates over a skewed measure, a uniform sample has huge
variance because a few extreme rows dominate the sum.  Outlier indexing
splits the table into an *outlier set* — the ``k`` rows whose removal
minimises the variance of the remainder — stored completely, and a
uniform sample of the remaining rows.  A query's answer is the exact
aggregate over the (predicate-filtered) outliers plus the scaled estimate
from the remainder sample.

The variance-minimising size-``k`` removal set of a one-dimensional
distribution is always taken from the two tails: remove ``d`` rows from
the bottom and ``k − d`` from the top for the best ``d``
(:func:`select_outlier_indices` scans all ``d`` with prefix sums).

One outlier partition is built per configured measure column (mirroring
[9], which builds one index per aggregate expression in a pre-specified
list); at runtime the partition matching the query's SUM column is used,
falling back to the first for COUNT queries (where the partition is
harmless: the combination remains unbiased).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.answer import ApproxAnswer
from repro.core.combiner import execute_pieces
from repro.core.interfaces import (
    AQPTechnique,
    PreprocessReport,
    SampleTableInfo,
)
from repro.core.rewriter import SamplePiece
from repro.engine.database import Database
from repro.engine.expressions import AggFunc, Query
from repro.engine.reservoir import as_generator, uniform_sample_indices
from repro.engine.table import Table
from repro.errors import PreprocessingError, SamplingError


def select_outlier_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` values whose removal minimises the remainder's
    variance.

    The optimal removal set under variance minimisation consists of the
    ``d`` smallest and ``k − d`` largest values for some ``d``; all
    ``k + 1`` splits are evaluated with prefix sums in O(n log n).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if k < 0:
        raise SamplingError(f"outlier count must be >= 0, got {k}")
    if k == 0 or n == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    prefix = np.concatenate(([0.0], np.cumsum(sorted_values)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(sorted_values * sorted_values)))
    m = n - k
    d = np.arange(k + 1)
    window_sum = prefix[d + m] - prefix[d]
    window_sq = prefix_sq[d + m] - prefix_sq[d]
    variance = window_sq / m - (window_sum / m) ** 2
    best_d = int(np.argmin(variance))
    removed = np.concatenate(
        [order[:best_d], order[best_d + m :]]
    )
    return np.sort(removed.astype(np.int64))


@dataclass(frozen=True)
class OutlierConfig:
    """Parameters of the outlier indexing baseline.

    Attributes
    ----------
    rates:
        Total sample-space budgets (fractions of the database); each
        budget is split between the outlier index and the remainder
        sample.
    outlier_share:
        Fraction of each budget devoted to the outlier index.
    measures:
        Measure columns to build outlier partitions for (at least one).
    seed:
        RNG seed.
    """

    rates: tuple[float, ...] = (0.01,)
    outlier_share: float = 1.0 / 3.0
    measures: tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.rates:
            raise SamplingError("at least one budget rate is required")
        for rate in self.rates:
            if not 0.0 < rate <= 1.0:
                raise SamplingError(f"rate must be in (0, 1], got {rate}")
        if not 0.0 < self.outlier_share < 1.0:
            raise SamplingError(
                f"outlier share must be in (0, 1), got {self.outlier_share}"
            )
        if not self.measures:
            raise SamplingError("outlier indexing requires measure columns")


@dataclass
class _Partition:
    outliers: Table
    remainder: Table
    remainder_rate: float


class OutlierIndexing(AQPTechnique):
    """Outlier indexing: exact outliers + uniform sample of the rest."""

    name = "outlier_index"

    def __init__(self, config: OutlierConfig) -> None:
        super().__init__()
        self.config = config
        self._partitions: dict[tuple[float, str], _Partition] = {}

    def preprocess(self, db: Database) -> PreprocessReport:
        """Build per-(budget, measure) outlier partitions."""
        start = time.perf_counter()
        view = db.joined_view()
        rng = as_generator(self.config.seed)
        n = view.n_rows
        self._partitions = {}
        for measure in self.config.measures:
            if not view.has_column(measure):
                raise PreprocessingError(f"no measure column {measure!r}")
            values = view.column(measure).numeric_values()
            for rate in self.config.rates:
                budget = max(2, round(rate * n))
                k = max(1, round(self.config.outlier_share * budget))
                outlier_idx = select_outlier_indices(values, k)
                keep = np.ones(n, dtype=bool)
                keep[outlier_idx] = False
                rest_idx = np.flatnonzero(keep)
                sample_size = max(1, budget - outlier_idx.size)
                sampled = rest_idx[
                    uniform_sample_indices(rest_idx.size, sample_size, rng)
                ]
                remainder_rate = (
                    sampled.size / rest_idx.size if rest_idx.size else 1.0
                )
                suffix = f"{measure}_{rate:.6f}".rstrip("0").rstrip(".")
                self._partitions[(rate, measure)] = _Partition(
                    outliers=view.take(outlier_idx).rename(f"outliers_{suffix}"),
                    remainder=view.take(sampled).rename(f"outrest_{suffix}"),
                    remainder_rate=remainder_rate,
                )
        self._preprocessed = True
        elapsed = time.perf_counter() - start
        return self._report(
            db, elapsed, details={"measures": list(self.config.measures)}
        )

    def sample_tables(self) -> list[SampleTableInfo]:
        """Outlier and remainder tables for every (budget, measure)."""
        infos = []
        for partition in self._partitions.values():
            infos.append(
                SampleTableInfo(table=partition.outliers, kind="outlier", rate=1.0)
            )
            infos.append(
                SampleTableInfo(
                    table=partition.remainder,
                    kind="uniform",
                    rate=partition.remainder_rate,
                )
            )
        return infos

    def _pick(self, query: Query, rate: float | None) -> _Partition:
        measure = None
        for agg in query.aggregates:
            if agg.func is AggFunc.SUM and agg.column in self.config.measures:
                measure = agg.column
                break
        if measure is None:
            measure = self.config.measures[0]
        rates = sorted({r for r, m in self._partitions if m == measure})
        if rate is None:
            chosen_rate = rates[0]
        else:
            chosen_rate = min(rates, key=lambda r: abs(r - rate))
        return self._partitions[(chosen_rate, measure)]

    def answer(self, query: Query) -> ApproxAnswer:
        """Answer from the first-budget partition."""
        return self.answer_at_rate(query, None)

    def answer_at_rate(self, query: Query, rate: float | None) -> ApproxAnswer:
        """Answer combining exact outliers with the scaled remainder."""
        self.require_preprocessed()
        partition = self._pick(query, rate)
        scale = 1.0 / partition.remainder_rate
        pieces = [
            SamplePiece(
                table=partition.outliers,
                query=query.with_table(partition.outliers.name),
                zero_variance=True,
                counts_as_exact=False,
                description=f"{partition.outliers.name} (exact outliers)",
            ),
            SamplePiece(
                table=partition.remainder,
                query=query.with_table(partition.remainder.name),
                scale=scale,
                variance_weights=np.full(
                    partition.remainder.n_rows,
                    (1.0 - partition.remainder_rate) * scale * scale,
                ),
                counts_as_exact=False,
                description=(
                    f"{partition.remainder.name} "
                    f"(rate {partition.remainder_rate:.4f})"
                ),
            ),
        ]
        return execute_pieces(pieces, technique=self.name)

    def rows_for_query(self, query: Query) -> int:
        """Rows scanned by the default-budget partition."""
        self.require_preprocessed()
        partition = self._pick(
            query, None
        )
        return partition.outliers.n_rows + partition.remainder.n_rows
