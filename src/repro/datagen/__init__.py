"""Synthetic data generators: Zipf utilities, skewed TPC-H, SALES-like."""

from repro.datagen.sales import (
    SALES_KEY_COLUMNS,
    SALES_MEASURE_COLUMNS,
    SalesConfig,
    generate_sales,
    generate_sales_config,
)
from repro.datagen.synthetic import (
    CategoricalSpec,
    MeasureSpec,
    categorical_values,
    example_3_1,
    generate_flat_database,
    generate_flat_table,
)
from repro.datagen.tpch import (
    TPCH_KEY_COLUMNS,
    TPCH_MEASURE_COLUMNS,
    TPCHConfig,
    generate_tpch,
    generate_tpch_config,
)
from repro.datagen.zipf import ZipfDistribution, zipf_pmf

__all__ = [
    "CategoricalSpec",
    "MeasureSpec",
    "SALES_KEY_COLUMNS",
    "SALES_MEASURE_COLUMNS",
    "SalesConfig",
    "TPCH_KEY_COLUMNS",
    "TPCH_MEASURE_COLUMNS",
    "TPCHConfig",
    "ZipfDistribution",
    "categorical_values",
    "example_3_1",
    "generate_flat_database",
    "generate_flat_table",
    "generate_sales",
    "generate_sales_config",
    "generate_tpch",
    "generate_tpch_config",
    "zipf_pmf",
]
