"""SALES-like star schema generator.

The paper's real-world database, SALES, was a proprietary corporate sales
star schema: an ~800k-row fact table, 6 dimension tables (largest ~200k
rows), 245 columns in total, and skew that the paper describes as
noticeably *lower* than TPCH2.0z.  This generator produces a synthetic
database playing the same role in the experiments: a wide, many-column,
moderately-skewed sales star schema with 6 dimensions.

Row counts are scaled to laptop sizes via ``scale``; column structure and
relative dimension sizes are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.synthetic import categorical_values
from repro.datagen.zipf import ZipfDistribution
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.reservoir import as_generator
from repro.engine.schema import ForeignKey, StarSchema
from repro.engine.table import Table

#: Numeric fact columns eligible for SUM aggregation in workloads.
SALES_MEASURE_COLUMNS = ("s_qty", "s_revenue", "s_cost")

#: Key columns, excluded from grouping and predicates.
SALES_KEY_COLUMNS = (
    "s_store",
    "s_product",
    "s_customer",
    "s_promo",
    "s_channel",
    "s_time",
    "st_id",
    "pr_id",
    "cu_id",
    "pm_id",
    "ch_id",
    "tp_id",
)


@dataclass(frozen=True)
class SalesConfig:
    """Parameters of the SALES generator.

    Attributes
    ----------
    scale:
        Multiplier on all row counts (1.0 → 40k fact rows).
    z:
        Base Zipf skew.  The default 1.5 gives the "moderate skew, less
        than TPCH2.0z" character the paper attributes to SALES (TPCH2.0z
        concentrates 61% of a column's rows in its top value; SALES at
        z=1.5 concentrates ~40%).
    seed:
        RNG seed.
    """

    scale: float = 1.0
    z: float = 1.5
    seed: int = 0

    @property
    def fact_rows(self) -> int:
        """Number of fact-table rows."""
        return max(200, int(40000 * self.scale))


def _categorical(
    name: str, n_values: int, z: float, n_rows: int, rng: np.random.Generator
) -> Column:
    ranks = ZipfDistribution(n_values, z).sample(n_rows, rng)
    return Column.from_codes(ranks.astype(np.int32), categorical_values(name, n_values))


def _skewed_keys(
    n_keys: int, z: float, n_rows: int, rng: np.random.Generator
) -> np.ndarray:
    ranks = ZipfDistribution(n_keys, z).sample(n_rows, rng)
    permutation = rng.permutation(n_keys)
    return permutation[ranks]


def generate_sales(
    scale: float = 1.0, z: float = 1.5, seed: int = 0
) -> Database:
    """Generate a SALES-like star-schema database."""
    return generate_sales_config(SalesConfig(scale, z, seed))


def generate_sales_config(config: SalesConfig) -> Database:
    """Generate a database from an explicit :class:`SalesConfig`."""
    rng = as_generator(config.seed)
    n = config.fact_rows
    z = config.z
    n_stores = max(20, n // 400)
    n_products = max(40, n // 40)
    n_customers = max(50, n // 8)
    n_promos = max(10, n // 800)
    n_channels = 6
    n_periods = max(30, min(730, n // 50))

    store = Table(
        "store",
        {
            "st_id": Column.ints(np.arange(n_stores)),
            "st_region": _categorical("st_region", 8, z, n_stores, rng),
            "st_state": _categorical("st_state", 30, z, n_stores, rng),
            "st_size_class": _categorical("st_size_class", 5, z, n_stores, rng),
            "st_format": _categorical("st_format", 4, z, n_stores, rng),
            "st_age_band": _categorical("st_age_band", 6, z, n_stores, rng),
        },
    )
    product = Table(
        "product",
        {
            "pr_id": Column.ints(np.arange(n_products)),
            "pr_category": _categorical("pr_category", 20, z, n_products, rng),
            "pr_subcategory": _categorical("pr_subcategory", 60, z, n_products, rng),
            "pr_brand": _categorical("pr_brand", 80, z, n_products, rng),
            "pr_style": _categorical("pr_style", 150, z, n_products, rng),
            "pr_color": _categorical("pr_color", 12, z, n_products, rng),
            "pr_price_band": _categorical("pr_price_band", 8, z, n_products, rng),
            "pr_season": _categorical("pr_season", 4, z, n_products, rng),
        },
    )
    customer = Table(
        "customer",
        {
            "cu_id": Column.ints(np.arange(n_customers)),
            "cu_segment": _categorical("cu_segment", 6, z, n_customers, rng),
            "cu_age_band": _categorical("cu_age_band", 7, z, n_customers, rng),
            "cu_country": _categorical("cu_country", 20, z, n_customers, rng),
            "cu_city": _categorical(
                "cu_city", min(400, max(20, n_customers // 12)), z, n_customers, rng
            ),
            "cu_loyalty": _categorical("cu_loyalty", 4, z, n_customers, rng),
            "cu_channel_pref": _categorical("cu_channel_pref", 3, z, n_customers, rng),
        },
    )
    promotion = Table(
        "promotion",
        {
            "pm_id": Column.ints(np.arange(n_promos)),
            "pm_type": _categorical("pm_type", 8, z, n_promos, rng),
            "pm_medium": _categorical("pm_medium", 5, z, n_promos, rng),
            "pm_budget_band": _categorical("pm_budget_band", 4, z, n_promos, rng),
        },
    )
    channel = Table(
        "channel",
        {
            "ch_id": Column.ints(np.arange(n_channels)),
            "ch_kind": Column.from_codes(
                np.arange(n_channels, dtype=np.int32),
                categorical_values("ch_kind", n_channels),
            ),
            "ch_is_online": _categorical("ch_is_online", 2, 0.0, n_channels, rng),
        },
    )
    timeperiod = Table(
        "timeperiod",
        {
            "tp_id": Column.ints(np.arange(n_periods)),
            "tp_week": _categorical(
                "tp_week", min(104, max(10, n_periods // 7)), 0.4, n_periods, rng
            ),
            "tp_year": _categorical("tp_year", 2, 0.3, n_periods, rng),
            "tp_quarter": _categorical("tp_quarter", 4, 0.3, n_periods, rng),
            "tp_month": _categorical("tp_month", 12, 0.3, n_periods, rng),
            "tp_dow": _categorical("tp_dow", 7, 0.3, n_periods, rng),
            "tp_holiday": _categorical("tp_holiday", 2, z, n_periods, rng),
        },
    )
    sales = Table(
        "sales",
        {
            "s_store": Column.ints(_skewed_keys(n_stores, z, n, rng)),
            "s_product": Column.ints(_skewed_keys(n_products, z, n, rng)),
            "s_customer": Column.ints(_skewed_keys(n_customers, z, n, rng)),
            "s_promo": Column.ints(_skewed_keys(n_promos, z, n, rng)),
            "s_channel": Column.ints(_skewed_keys(n_channels, z, n, rng)),
            "s_time": Column.ints(_skewed_keys(n_periods, 0.5, n, rng)),
            "s_qty": Column.ints(ZipfDistribution(20, 1.0).sample(n, rng) + 1),
            "s_revenue": Column.floats(rng.lognormal(4.0, 1.2, n)),
            "s_cost": Column.floats(rng.lognormal(3.5, 1.0, n)),
            "s_payment": _categorical("s_payment", 5, z, n, rng),
            "s_status": _categorical("s_status", 3, z, n, rng),
        },
    )
    schema = StarSchema(
        "sales",
        (
            ForeignKey("s_store", "store", "st_id"),
            ForeignKey("s_product", "product", "pr_id"),
            ForeignKey("s_customer", "customer", "cu_id"),
            ForeignKey("s_promo", "promotion", "pm_id"),
            ForeignKey("s_channel", "channel", "ch_id"),
            ForeignKey("s_time", "timeperiod", "tp_id"),
        ),
    )
    return Database(
        [sales, store, product, customer, promotion, channel, timeperiod], schema
    )
