"""Simple single-table synthetic data.

These generators back the unit tests and the paper's worked examples: a
configurable flat table of Zipf-distributed categorical columns plus
numeric measures, and the 90-stereos/10-TVs table of Example 3.1.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.datagen.zipf import ZipfDistribution
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.reservoir import as_generator
from repro.engine.table import Table


@dataclass(frozen=True)
class CategoricalSpec:
    """One Zipf-distributed categorical column.

    Attributes
    ----------
    name:
        Column name.
    n_values:
        Number of distinct values (``<name>_000`` ... style labels).
    z:
        Zipf skew parameter; 0 means uniform.
    """

    name: str
    n_values: int
    z: float


@dataclass(frozen=True)
class MeasureSpec:
    """One numeric measure column.

    ``distribution`` selects the value model:

    * ``"uniform"`` — Uniform(low, high);
    * ``"lognormal"`` — exp(Normal(mu, sigma)), a right-skewed distribution
      suitable for the outlier-indexing experiments;
    * ``"zipf_int"`` — integer ranks + 1 from a Zipf(z) over ``high`` values.
    """

    name: str
    distribution: str = "uniform"
    low: float = 0.0
    high: float = 100.0
    mu: float = 3.0
    sigma: float = 1.0
    z: float = 1.0


def categorical_values(name: str, n_values: int) -> list[str]:
    """Deterministic string labels for a categorical column's domain."""
    width = max(3, len(str(n_values - 1)))
    return [f"{name}_{i:0{width}d}" for i in range(n_values)]


def generate_categorical(
    spec: CategoricalSpec, n_rows: int, rng: np.random.Generator
) -> Column:
    """Generate one categorical column per its spec."""
    dist = ZipfDistribution(spec.n_values, spec.z)
    ranks = dist.sample(n_rows, rng)
    return Column.from_codes(ranks.astype(np.int32), categorical_values(spec.name, spec.n_values))


def generate_measure(
    spec: MeasureSpec, n_rows: int, rng: np.random.Generator
) -> Column:
    """Generate one measure column per its spec."""
    if spec.distribution == "uniform":
        return Column.floats(rng.uniform(spec.low, spec.high, n_rows))
    if spec.distribution == "lognormal":
        return Column.floats(rng.lognormal(spec.mu, spec.sigma, n_rows))
    if spec.distribution == "zipf_int":
        dist = ZipfDistribution(max(1, int(spec.high)), spec.z)
        return Column.ints(dist.sample(n_rows, rng) + 1)
    raise ValueError(f"unknown measure distribution {spec.distribution!r}")


def generate_flat_table(
    name: str,
    n_rows: int,
    categoricals: Sequence[CategoricalSpec],
    measures: Sequence[MeasureSpec] = (),
    seed: int | np.random.Generator | None = 0,
) -> Table:
    """Generate a flat table of independent Zipf categoricals + measures."""
    rng = as_generator(seed)
    columns: dict[str, Column] = {}
    for spec in categoricals:
        columns[spec.name] = generate_categorical(spec, n_rows, rng)
    for spec in measures:
        columns[spec.name] = generate_measure(spec, n_rows, rng)
    return Table(name, columns)


def generate_flat_database(
    name: str,
    n_rows: int,
    categoricals: Sequence[CategoricalSpec],
    measures: Sequence[MeasureSpec] = (),
    seed: int | np.random.Generator | None = 0,
) -> Database:
    """Like :func:`generate_flat_table`, wrapped in a single-table database."""
    return Database([generate_flat_table(name, n_rows, categoricals, measures, seed)])


def example_3_1() -> Table:
    """The paper's Example 3.1: 90 Stereo tuples and 10 TV tuples."""
    products = ["Stereo"] * 90 + ["TV"] * 10
    return Table.from_dict("products", {"Product": products})
