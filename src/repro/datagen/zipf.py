"""Truncated Zipfian distributions.

The paper's synthetic databases use Zipfian value distributions: the
frequency of the *i*-th most common value is proportional to ``i**-z`` for
a skew parameter ``z``, truncated to ``c`` distinct values (Section 4.4).
The analytical model, the TPC-H-with-skew generator [13], and the SALES
generator all draw from :class:`ZipfDistribution`.
"""

from __future__ import annotations

import numpy as np

from repro.engine.reservoir import as_generator
from repro.errors import SamplingError


def zipf_pmf(n_values: int, z: float) -> np.ndarray:
    """Probability mass of a Zipf(z) distribution truncated to ``n_values``.

    ``pmf[i]`` is the probability of the ``(i+1)``-th most common value.
    ``z = 0`` gives the uniform distribution.
    """
    if n_values <= 0:
        raise SamplingError(f"need at least one value, got {n_values}")
    if z < 0:
        raise SamplingError(f"skew parameter must be >= 0, got {z}")
    ranks = np.arange(1, n_values + 1, dtype=np.float64)
    weights = ranks**-z
    return weights / weights.sum()


class ZipfDistribution:
    """A truncated Zipfian distribution over ranks ``0 .. n_values - 1``.

    Rank 0 is the most common value.  Generators map ranks onto domain
    values (strings, dimension keys, ...).
    """

    def __init__(self, n_values: int, z: float) -> None:
        self.n_values = n_values
        self.z = z
        self.pmf = zipf_pmf(n_values, z)
        self._cdf = np.cumsum(self.pmf)
        # Guard against floating point drift in the final bucket.
        self._cdf[-1] = 1.0

    def sample(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw ``n`` ranks (int64) via inverse-CDF sampling."""
        gen = as_generator(rng)
        u = gen.random(n)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def expected_counts(self, n: int) -> np.ndarray:
        """Expected frequency of each rank in an ``n``-row sample."""
        return self.pmf * n

    def head_coverage(self, k: int) -> float:
        """Total probability mass of the ``k`` most common ranks."""
        if k <= 0:
            return 0.0
        return float(self._cdf[min(k, self.n_values) - 1])

    def common_rank_count(self, small_fraction: float) -> int:
        """Size of the minimal common-value prefix covering ``1 - t`` mass.

        This mirrors :meth:`ColumnStats.common_values` on the *expected*
        distribution and is what the analytical model uses for ``L(C)``.
        """
        if not 0.0 <= small_fraction <= 1.0:
            raise SamplingError(
                f"small fraction must be in [0, 1], got {small_fraction}"
            )
        target = 1.0 - small_fraction
        # Smallest k with cdf[k-1] >= target; k = 0 when target <= 0.
        if target <= 0.0:
            return 0
        return int(np.searchsorted(self._cdf, target - 1e-12, side="left")) + 1
