"""Skewed TPC-H-style star schema generator.

The paper evaluates on synthetic databases produced by a modified TPC-H
``dbgen`` [13] whose value distributions are Zipfian with skew parameter
``z`` instead of uniform, named ``TPCHxGyz`` for scale factor ``x`` and
skew ``y``.  This module generates databases of the same shape:

* a ``lineitem`` fact table with foreign keys into ``orders``, ``part``,
  and ``supplier`` dimension tables (the star-schema restriction of
  Section 4: lineitem→orders→customer is folded into the ``orders``
  dimension, which carries the customer attributes);
* Zipf(z)-distributed categorical attributes throughout, and Zipf-skewed
  foreign-key popularity (some orders/parts/suppliers are much hotter than
  others);
* skewed numeric measures (``l_extendedprice`` is lognormal) so the
  outlier-indexing experiments have something to bite on.

Scale factor ``x`` maps to row counts through ``rows_per_scale`` — the
default produces laptop-sized databases whose *relative* behaviour matches
the paper's 1 GB / 5 GB databases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.synthetic import categorical_values
from repro.datagen.zipf import ZipfDistribution
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.reservoir import as_generator
from repro.engine.schema import ForeignKey, StarSchema
from repro.engine.table import Table

#: Numeric fact columns eligible for SUM aggregation in workloads.
TPCH_MEASURE_COLUMNS = ("l_quantity", "l_extendedprice", "l_discount")

#: Key columns, excluded from grouping and predicates.
TPCH_KEY_COLUMNS = (
    "l_orderkey",
    "l_partkey",
    "l_suppkey",
    "o_orderkey",
    "p_partkey",
    "s_suppkey",
)


@dataclass(frozen=True)
class TPCHConfig:
    """Parameters of the skewed TPC-H generator.

    Attributes
    ----------
    scale:
        TPC-H scale factor ``x`` (the paper uses 1 and 5).
    z:
        Zipf skew parameter ``y`` (the paper uses 1.0, 1.5, 2.0, 2.5).
    rows_per_scale:
        Fact-table rows per unit of scale factor.
    seed:
        RNG seed for reproducibility.
    """

    scale: float = 1.0
    z: float = 2.0
    rows_per_scale: int = 20000
    seed: int = 0

    @property
    def name(self) -> str:
        """Database name in the paper's ``TPCHxGyz`` convention."""
        scale = int(self.scale) if float(self.scale).is_integer() else self.scale
        return f"TPCH{scale}G{self.z:.1f}z"

    @property
    def fact_rows(self) -> int:
        """Number of fact-table rows."""
        return max(100, int(self.scale * self.rows_per_scale))


def _categorical(
    name: str, n_values: int, z: float, n_rows: int, rng: np.random.Generator
) -> Column:
    ranks = ZipfDistribution(n_values, z).sample(n_rows, rng)
    return Column.from_codes(ranks.astype(np.int32), categorical_values(name, n_values))


def _skewed_keys(
    n_keys: int, z: float, n_rows: int, rng: np.random.Generator
) -> np.ndarray:
    """Foreign keys with Zipf-skewed popularity over a shuffled key space."""
    ranks = ZipfDistribution(n_keys, z).sample(n_rows, rng)
    permutation = rng.permutation(n_keys)
    return permutation[ranks]


def generate_tpch(
    scale: float = 1.0,
    z: float = 2.0,
    rows_per_scale: int = 20000,
    seed: int = 0,
) -> Database:
    """Generate a ``TPCHxGyz`` star-schema database."""
    return generate_tpch_config(TPCHConfig(scale, z, rows_per_scale, seed))


def generate_tpch_config(config: TPCHConfig) -> Database:
    """Generate a database from an explicit :class:`TPCHConfig`."""
    rng = as_generator(config.seed)
    n = config.fact_rows
    z = config.z
    n_orders = max(50, n // 4)
    n_parts = max(40, n // 30)
    n_suppliers = max(20, n // 120)

    orders = Table(
        "orders",
        {
            "o_orderkey": Column.ints(np.arange(n_orders)),
            "o_orderstatus": _categorical("o_orderstatus", 3, z, n_orders, rng),
            "o_orderpriority": _categorical("o_orderpriority", 5, z, n_orders, rng),
            "o_orderdate": _categorical(
                "o_orderdate", min(730, max(30, n_orders // 4)), z, n_orders, rng
            ),
            "o_ordermonth": _categorical("o_ordermonth", 12, z, n_orders, rng),
            "o_orderyear": _categorical("o_orderyear", 7, z, n_orders, rng),
            "o_custsegment": _categorical("o_custsegment", 5, z, n_orders, rng),
            "o_custnation": _categorical("o_custnation", 25, z, n_orders, rng),
            "o_custregion": _categorical("o_custregion", 5, z, n_orders, rng),
            "o_clerkband": _categorical("o_clerkband", 15, z, n_orders, rng),
        },
    )
    part = Table(
        "part",
        {
            "p_partkey": Column.ints(np.arange(n_parts)),
            "p_mfgr": _categorical("p_mfgr", 5, z, n_parts, rng),
            "p_brand": _categorical("p_brand", 25, z, n_parts, rng),
            "p_type": _categorical("p_type", 150, z, n_parts, rng),
            "p_size": _categorical("p_size", 50, z, n_parts, rng),
            "p_container": _categorical("p_container", 40, z, n_parts, rng),
        },
    )
    supplier = Table(
        "supplier",
        {
            "s_suppkey": Column.ints(np.arange(n_suppliers)),
            "s_nation": _categorical("s_nation", 25, z, n_suppliers, rng),
            "s_region": _categorical("s_region", 5, z, n_suppliers, rng),
            "s_acctband": _categorical("s_acctband", 10, z, n_suppliers, rng),
        },
    )
    lineitem = Table(
        "lineitem",
        {
            "l_orderkey": Column.ints(_skewed_keys(n_orders, z, n, rng)),
            "l_partkey": Column.ints(_skewed_keys(n_parts, z, n, rng)),
            "l_suppkey": Column.ints(_skewed_keys(n_suppliers, z, n, rng)),
            "l_quantity": Column.ints(
                ZipfDistribution(50, max(z, 0.5)).sample(n, rng) + 1
            ),
            "l_extendedprice": Column.floats(rng.lognormal(6.0, 1.0, n)),
            "l_discount": Column.floats(rng.uniform(0.0, 0.1, n)),
            "l_returnflag": _categorical("l_returnflag", 3, z, n, rng),
            "l_linestatus": _categorical("l_linestatus", 2, z, n, rng),
            "l_shipmode": _categorical("l_shipmode", 7, z, n, rng),
            "l_shipinstruct": _categorical("l_shipinstruct", 4, z, n, rng),
            "l_shipdate": _categorical(
                "l_shipdate", min(730, max(30, n // 30)), z, n, rng
            ),
            "l_shipmonth": _categorical("l_shipmonth", 12, z, n, rng),
            "l_shipyear": _categorical("l_shipyear", 7, z, n, rng),
            "l_priorityclass": _categorical("l_priorityclass", 5, z, n, rng),
        },
    )
    schema = StarSchema(
        "lineitem",
        (
            ForeignKey("l_orderkey", "orders", "o_orderkey"),
            ForeignKey("l_partkey", "part", "p_partkey"),
            ForeignKey("l_suppkey", "supplier", "s_suppkey"),
        ),
    )
    return Database([lineitem, orders, part, supplier], schema)
