"""HTTP transport for the AQP server (stdlib ``http.server``).

One :class:`ReproHTTPServer` (a ``ThreadingHTTPServer``: one handler
thread per connection) adapts the wire routes onto
:meth:`repro.server.app.AQPServer.handle`:

========  =========  =======================================
method    path       protocol op
========  =========  =======================================
POST      /query     ``query`` (body = request object)
POST      /append    ``append`` (body = request object)
GET       /healthz   ``health``
GET       /stats     ``stats``
========  =========  =======================================

The handler does transport only — reading the body, decoding JSON,
serialising the response with the repo's strict-JSON ``dumps`` — every
decision (admission, dedup, locking, error mapping) lives in the
transport-independent :class:`~repro.server.app.AQPServer` so tests can
drive it without sockets.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import QueryError
from repro.middleware.session import AQPSession
from repro.obs.jsonsafe import dumps
from repro.server.app import AQPServer, ServerConfig
from repro.server.protocol import error_response

#: Largest request body accepted, bytes (a chunk-aligned append of a few
#: hundred thousand rows fits comfortably; anything larger is abuse).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ReproHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server holding the shared :class:`AQPServer`."""

    #: Handler threads must not block interpreter exit.
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: AQPServer) -> None:
        super().__init__(address, _Handler)
        self.app = app


class _Handler(BaseHTTPRequestHandler):
    """Per-connection request handler: decode, dispatch, encode."""

    #: Keep connections alive between requests (clients pipeline).
    protocol_version = "HTTP/1.1"
    server: ReproHTTPServer

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/healthz":
            self._respond(*self.server.app.handle({"op": "health"}))
        elif self.path == "/stats":
            self._respond(*self.server.app.handle({"op": "stats"}))
        else:
            self._respond(
                *error_response(
                    QueryError(f"no such route: GET {self.path}"),
                    code="invalid_request",
                )
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        op = {"/query": "query", "/append": "append"}.get(self.path)
        if op is None:
            self._respond(
                *error_response(
                    QueryError(f"no such route: POST {self.path}"),
                    code="invalid_request",
                )
            )
            return
        try:
            request = self._read_json_body()
        except QueryError as error:
            self._respond(*error_response(error, code="invalid_request"))
            return
        if isinstance(request, dict):
            request["op"] = op
        self._respond(*self.server.app.handle(request))

    # -- transport helpers ---------------------------------------------
    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise QueryError("invalid Content-Length header") from None
        if length <= 0:
            raise QueryError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise QueryError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise QueryError(f"request body is not JSON: {error}") from None

    def _respond(self, status: int, body: dict) -> None:
        payload = dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr chatter; /stats carries the counts."""


def make_server(
    session: AQPSession,
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServerConfig | None = None,
) -> ReproHTTPServer:
    """Bind a :class:`ReproHTTPServer` (``port=0`` picks a free port).

    The caller owns the lifecycle::

        server = make_server(session)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()      # stop accepting
        server.server_close()  # release the socket
        session.close()        # release session state (idempotent)
    """
    return ReproHTTPServer((host, port), AQPServer(session, config))


__all__ = ["MAX_BODY_BYTES", "ReproHTTPServer", "make_server"]
