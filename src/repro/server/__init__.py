"""Concurrent multi-client serving layer over one shared AQP session.

The paper positions the AQP system as middleware in front of a database
serving many analysts at once; this package is that front door.  A
long-lived process owns one :class:`~repro.middleware.session.AQPSession`
(samples pre-processed once, caches warm) and serves concurrent clients
over a small JSON-over-HTTP protocol — see ``docs/serving.md`` for the
wire format and :mod:`repro.server.app` for the concurrency discipline
(admission control, single-flight dedup, append-vs-read snapshots,
per-request deadlines).
"""

from repro.server.app import AQPServer, ServerConfig
from repro.server.http import ReproHTTPServer, make_server
from repro.server.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    answer_fingerprint,
    encode_result,
)

__all__ = [
    "AQPServer",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "ReproHTTPServer",
    "ServerConfig",
    "answer_fingerprint",
    "encode_result",
    "make_server",
]
