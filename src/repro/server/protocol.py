"""Wire protocol for the AQP server: strict-JSON requests and responses.

The serving layer speaks a small JSON protocol (``docs/serving.md``):
every request is a JSON object with an ``op`` (``query`` / ``append`` /
``health`` / ``stats``), every response is a JSON object with ``ok``
(bool) plus either a payload or an ``error`` object carrying a
machine-readable ``code`` from :data:`ERROR_CODES`.

Two properties are load-bearing:

* **Determinism** — :func:`encode_result` renders an answer with groups
  in a canonical order (sorted by a type-tagged key, so mixed-type group
  values never hit Python's cross-type ``<``), and
  :func:`answer_fingerprint` hashes the canonical serialisation.  The
  serving determinism gate compares fingerprints of concurrent answers
  against a serial replay byte for byte.
* **Strict JSON** — everything goes through
  :func:`repro.obs.jsonsafe.json_safe` / ``dumps(allow_nan=False)``, the
  same discipline as every other ``.json`` artifact in the repo.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.core.answer import ApproxAnswer
from repro.engine.executor import GroupedResult
from repro.errors import (
    DeadlineExceeded,
    InternalError,
    QueryError,
    ReproError,
    SQLSyntaxError,
    UnsupportedQueryError,
)
from repro.obs.jsonsafe import dumps, json_safe

#: Machine-readable error code -> HTTP status it travels with.
ERROR_CODES: dict[str, int] = {
    "invalid_request": 400,   # malformed request object / bad field values
    "parse_error": 400,       # SQL text failed to tokenise/parse
    "unsupported": 400,       # valid SQL outside the aggregation subset
    "overloaded": 429,        # admission gate full; retry later
    "deadline_exceeded": 504, # per-request deadline expired mid-execution
    "session_closed": 503,    # server is draining; session already closed
    "internal": 500,          # invariant violation (a bug, not bad input)
}

#: Wire protocol version; bumped on incompatible changes.
PROTOCOL_VERSION = 1


def classify_error(error: BaseException) -> tuple[str, int]:
    """Map an exception to its wire ``(code, http_status)``.

    Order matters: the most specific classes first (``DeadlineExceeded``
    is a ``RuntimePhaseError``; ``SQLSyntaxError`` and
    ``UnsupportedQueryError`` are ``QueryError``\\ s).
    """
    if isinstance(error, DeadlineExceeded):
        return "deadline_exceeded", ERROR_CODES["deadline_exceeded"]
    if isinstance(error, InternalError):
        if "session closed" in str(error):
            return "session_closed", ERROR_CODES["session_closed"]
        return "internal", ERROR_CODES["internal"]
    if isinstance(error, SQLSyntaxError):
        return "parse_error", ERROR_CODES["parse_error"]
    if isinstance(error, UnsupportedQueryError):
        return "unsupported", ERROR_CODES["unsupported"]
    if isinstance(error, (QueryError, ReproError)):
        return "invalid_request", ERROR_CODES["invalid_request"]
    return "internal", ERROR_CODES["internal"]


def error_response(
    error: BaseException, code: str | None = None
) -> tuple[int, dict]:
    """``(http_status, body)`` for a failed request."""
    if code is None:
        code, status = classify_error(error)
    else:
        status = ERROR_CODES[code]
    return status, {
        "ok": False,
        "error": {"code": code, "message": str(error)},
    }


def _canonical_key(group: tuple) -> tuple:
    """Type-tagged sort key for one group tuple.

    Group values are heterogeneous (strings, ints, floats, ``None``);
    Python refuses ``"a" < 1``, so each value sorts by
    ``(is_none, type_name, repr)``.  ``repr`` of ints/floats/strings is
    deterministic across processes, which is all the determinism gate
    needs — natural ordering is irrelevant, stable ordering is not.
    """
    return tuple(
        (value is None, type(value).__name__, repr(value))
        for value in group
    )


def encode_approx(answer: ApproxAnswer, level: float = 0.95) -> dict:
    """Canonical strict-JSON rendering of an approximate answer."""
    groups = []
    for key in sorted(answer.groups, key=_canonical_key):
        estimates = answer.groups[key]
        intervals = [e.confidence_interval(level) for e in estimates]
        groups.append(
            {
                "key": list(key),
                "estimates": [e.value for e in estimates],
                "variances": [e.variance for e in estimates],
                "intervals": [[lo, hi] for lo, hi in intervals],
                "exact": [e.exact for e in estimates],
            }
        )
    return json_safe(
        {
            "technique": answer.technique,
            "group_columns": list(answer.group_columns),
            "aggregate_names": list(answer.aggregate_names),
            "n_groups": answer.n_groups,
            "rows_scanned": answer.rows_scanned,
            "confidence_level": level,
            "groups": groups,
        }
    )


def encode_exact(result: GroupedResult) -> dict:
    """Canonical strict-JSON rendering of an exact answer."""
    groups = [
        {"key": list(key), "values": list(result.rows[key])}
        for key in sorted(result.rows, key=_canonical_key)
    ]
    return json_safe(
        {
            "group_columns": list(result.group_columns),
            "aggregate_names": list(result.aggregate_names),
            "n_groups": result.n_groups,
            "groups": groups,
        }
    )


def encode_result(result: Any) -> dict:
    """Encode a :class:`~repro.middleware.session.SessionResult`.

    The ``answer`` sub-object (approx and/or exact renderings) is what
    :func:`answer_fingerprint` hashes — timings are reported alongside
    but deliberately excluded, since wall-clock is never deterministic.
    """
    answer: dict[str, Any] = {}
    if result.approx is not None:
        answer["approx"] = encode_approx(result.approx)
    if result.exact is not None:
        answer["exact"] = encode_exact(result.exact)
    payload = {
        "sql": result.sql,
        "answer": answer,
        "fingerprint": answer_fingerprint(answer),
        "timings": json_safe(
            {
                "approx_seconds": (
                    result.approx_seconds
                    if result.approx is not None
                    else None
                ),
                "exact_seconds": (
                    result.exact_seconds
                    if result.exact is not None
                    else None
                ),
                "speedup": result.speedup_or_none,
            }
        ),
    }
    return payload


def answer_fingerprint(answer: dict) -> str:
    """SHA-256 of the canonical serialisation of an ``answer`` object.

    Canonical = ``sort_keys=True`` strict-JSON over the already
    canonically-ordered group lists, so two byte-identical answers hash
    identically regardless of which thread/process produced them.
    """
    return hashlib.sha256(
        dumps(answer, sort_keys=True).encode("utf-8")
    ).hexdigest()


def validate_query_request(request: dict) -> tuple[str, str, bool, float | None]:
    """Validate a ``query`` request; returns ``(sql, mode, explain, timeout)``.

    Raises :class:`QueryError` (wire code ``invalid_request``) on bad
    shape — *before* any admission/locking, so malformed requests are
    rejected without consuming capacity.
    """
    sql = request.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise QueryError("query request needs a non-empty 'sql' string")
    mode = request.get("mode", "approx")
    if mode not in ("approx", "exact", "both"):
        raise QueryError(
            f"mode must be approx, exact, or both; got {mode!r}"
        )
    explain = request.get("explain", False)
    if not isinstance(explain, bool):
        raise QueryError("'explain' must be a boolean")
    timeout = request.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool):
            raise QueryError("'timeout' must be a number of seconds")
        if not timeout > 0:
            raise QueryError(f"'timeout' must be positive, got {timeout!r}")
        timeout = float(timeout)
    return sql, mode, explain, timeout


def validate_append_request(request: dict) -> tuple[str, dict[str, list]]:
    """Validate an ``append`` request; returns ``(table, columns)``."""
    table = request.get("table")
    if not isinstance(table, str) or not table:
        raise QueryError("append request needs a non-empty 'table' string")
    rows = request.get("rows")
    if not isinstance(rows, dict) or not rows:
        raise QueryError(
            "append request needs 'rows': {column: [values, ...]}"
        )
    lengths = set()
    for column, values in rows.items():
        if not isinstance(column, str):
            raise QueryError("append column names must be strings")
        if not isinstance(values, list) or not values:
            raise QueryError(
                f"append column {column!r} must be a non-empty list"
            )
        lengths.add(len(values))
    if len(lengths) != 1:
        raise QueryError(
            f"append columns have mismatched lengths: {sorted(lengths)}"
        )
    return table, rows


__all__ = [
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "answer_fingerprint",
    "classify_error",
    "encode_approx",
    "encode_exact",
    "encode_result",
    "error_response",
    "validate_append_request",
    "validate_query_request",
]
