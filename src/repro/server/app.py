"""Transport-independent serving core: admission, dedup, snapshots.

:class:`AQPServer` wraps one shared
:class:`~repro.middleware.session.AQPSession` and turns decoded protocol
requests (plain dicts) into ``(http_status, response_dict)`` pairs.  The
HTTP layer (:mod:`repro.server.http`) is a thin adapter over
:meth:`AQPServer.handle`; tests drive :meth:`handle` directly.

Concurrency discipline, in the order a request meets it:

1. **Validation** — malformed requests are rejected before consuming
   any capacity.
2. **Admission gate** — a bounded in-flight counter; when
   ``max_inflight`` requests are already executing, new queries are
   rejected immediately with ``overloaded`` (HTTP 429) instead of
   queueing unboundedly behind a slow pool.
3. **Single-flight dedup** — identical in-flight queries (same SQL,
   mode, explain) coalesce onto one execution via the same
   :class:`~repro.engine.cache.SingleFlight` primitive the execution
   cache uses; followers share the leader's encoded response and count
   under ``server.coalesced``.  A follower whose own deadline expires
   while waiting stops waiting and fails with ``deadline_exceeded``.
4. **Snapshot semantics** — queries take the read side and appends the
   write side of a writer-preferring read/write lock, so a query never
   observes a half-applied ``append_rows`` (the
   :class:`~repro.engine.database.AppendEvent` fan-out, technique
   ``insert_rows``, and the table swap all complete atomically with
   respect to reads).  Readers pin the table objects they resolved for
   the duration of the scan; the engine's identity-anchored cache makes
   a superseded table's derived state simply unreachable, never torn.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.engine.cache import SingleFlight, get_cache
from repro.engine.column import Column
from repro.engine.deadline import Deadline
from repro.engine.table import Table
from repro.errors import QueryError, ReproError
from repro.middleware.session import AQPSession
from repro.obs.registry import get_registry
from repro.server.protocol import (
    PROTOCOL_VERSION,
    encode_result,
    error_response,
    validate_append_request,
    validate_query_request,
)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`AQPServer`.

    Attributes
    ----------
    max_inflight:
        Queries allowed to execute concurrently before the admission
        gate rejects with ``overloaded``.  Appends do not count against
        the gate (they serialise on the write lock instead).
    default_deadline:
        Per-request deadline (seconds) applied when the request does not
        carry its own ``timeout``; ``None`` means unbounded.
    """

    max_inflight: int = 16
    default_deadline: float | None = None


class _ReadWriteLock:
    """Writer-preferring read/write lock (stdlib Condition).

    Queries share the read side; appends take the write side
    exclusively.  Writer preference (readers queue behind a *waiting*
    writer, not just an active one) keeps a steady query stream from
    starving appends forever.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class AQPServer:
    """Concurrent request broker over one shared :class:`AQPSession`."""

    def __init__(
        self,
        session: AQPSession,
        config: ServerConfig | None = None,
    ) -> None:
        self.session = session
        self.config = config or ServerConfig()
        if self.config.max_inflight < 1:
            raise QueryError(
                f"max_inflight must be >= 1, got {self.config.max_inflight}"
            )
        self._rw = _ReadWriteLock()
        self._flight = SingleFlight()
        self._admission_lock = threading.Lock()
        self._inflight = 0

    # ------------------------------------------------------------------
    # Admission gate
    # ------------------------------------------------------------------
    @contextmanager
    def _admitted(self) -> Iterator[bool]:
        """Reserve one in-flight slot; yields False when saturated.

        Never blocks: overload is reported to the client immediately
        (fast 429) so it can back off, instead of parking its request in
        an unbounded queue that hides the saturation.
        """
        with self._admission_lock:
            if self._inflight >= self.config.max_inflight:
                admitted = False
            else:
                self._inflight += 1
                admitted = True
        try:
            yield admitted
        finally:
            if admitted:
                with self._admission_lock:
                    self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Queries currently holding an admission slot."""
        with self._admission_lock:
            return self._inflight

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, request: dict) -> tuple[int, dict]:
        """Process one decoded request; returns ``(http_status, body)``.

        Never raises: every failure is mapped to a protocol error
        response (``docs/serving.md``).
        """
        registry = get_registry()
        registry.incr("server.requests")
        if not isinstance(request, dict):
            return error_response(
                QueryError("request body must be a JSON object"),
                code="invalid_request",
            )
        op = request.get("op")
        handler = {
            "query": self._handle_query,
            "append": self._handle_append,
            "health": self._handle_health,
            "stats": self._handle_stats,
        }.get(op)
        if handler is None:
            return error_response(
                QueryError(
                    f"unknown op {op!r}; expected query, append, health, "
                    "or stats"
                ),
                code="invalid_request",
            )
        registry.incr(f"server.requests.{op}")
        try:
            return handler(request)
        except ReproError as error:
            registry.incr("server.errors")
            return error_response(error)
        except Exception as error:  # noqa: BLE001 — wire boundary
            registry.incr("server.errors")
            return error_response(error, code="internal")

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _handle_query(self, request: dict) -> tuple[int, dict]:
        sql, mode, explain, timeout = validate_query_request(request)
        registry = get_registry()
        with self._admitted() as admitted:
            if not admitted:
                registry.incr("server.rejected_overload")
                return error_response(
                    QueryError(
                        f"server at capacity "
                        f"({self.config.max_inflight} in flight); retry"
                    ),
                    code="overloaded",
                )
            seconds = (
                timeout
                if timeout is not None
                else self.config.default_deadline
            )
            deadline = Deadline(seconds) if seconds is not None else None

            def _execute() -> dict:
                with self._rw.read_locked():
                    result = self.session.sql(
                        sql, mode=mode, explain=explain, deadline=deadline
                    )
                return encode_result(result)

            payload, leader = self._flight.do(
                (sql, mode, explain),
                _execute,
                deadline_check=(
                    deadline.check if deadline is not None else None
                ),
            )
            if not leader:
                registry.incr("server.coalesced")
            body = dict(payload)
            body["ok"] = True
            body["coalesced"] = not leader
            return 200, body

    def _handle_append(self, request: dict) -> tuple[int, dict]:
        table_name, columns = validate_append_request(request)
        try:
            batch = Table(
                table_name,
                {
                    name: Column.from_values(values)
                    for name, values in columns.items()
                },
            )
        except ReproError:
            raise
        except Exception as error:
            raise QueryError(f"cannot build append batch: {error}") from error
        with self._rw.write_locked():
            merged = self.session.append_rows(table_name, batch)
        get_registry().incr("server.rows_appended", batch.n_rows)
        return 200, {
            "ok": True,
            "table": table_name,
            "appended_rows": batch.n_rows,
            "total_rows": merged.n_rows,
        }

    def _handle_health(self, request: dict) -> tuple[int, dict]:
        closed = self.session.closed
        body = {
            "ok": not closed,
            "status": "closed" if closed else "ok",
            "protocol_version": PROTOCOL_VERSION,
            "inflight": self.inflight,
            "max_inflight": self.config.max_inflight,
        }
        return (503 if closed else 200), body

    def _handle_stats(self, request: dict) -> tuple[int, dict]:
        return 200, {
            "ok": True,
            "registry": get_registry().snapshot(),
            "cache": get_cache().metrics.snapshot(),
            "server": {
                "inflight": self.inflight,
                "max_inflight": self.config.max_inflight,
                "inflight_queries_coalescing": self._flight.inflight_count(),
                "queries_logged": self.session.query_count,
            },
        }


__all__ = ["AQPServer", "ServerConfig"]
