"""Single-parse whole-program index shared by every lint rule.

PRs 3 and 6 made the engine concurrent, which moved the correctness
story from per-file facts ("this function invalidates") to *global*
properties — "no shared-state mutation is reachable from a pool task",
"every mutation path reaches an invalidation", "locks acquire in a
consistent order".  Per-file, name-heuristic rules cannot prove those;
they need a symbol table and a call graph.

This module provides the first layer: :class:`ProjectIndex`, built from
the :class:`~repro.lint.core.FileContext` objects the runner already
parsed (one parse per file per lint run — rules and whole-program
passes share it).  The index knows:

* every **module** (package-relative path ↔ dotted module name);
* every **function/method** (:class:`FunctionInfo`, keyed by its
  module-qualified name, e.g. ``repro.engine.parallel.parallel_map`` or
  ``repro.engine.cache.ExecutionCache.get``), including nested
  functions and lambdas (synthetic ``<lambda@LINE>`` names);
* every **class** (:class:`ClassInfo` with its method table and base
  names, so ``self.method(...)`` resolves through inheritance);
* per-module **import resolution** (absolute and relative), so a local
  name resolves to the module-qualified symbol it denotes.

The call graph (:mod:`repro.lint.callgraph`) and the dataflow passes
(:mod:`repro.lint.dataflow`) are built lazily on top and cached here,
so N project-wide rules in one run share one graph.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.lint.core import FileContext

#: In-file symbol suffix used for lambdas (they have no name).
LAMBDA_PREFIX = "<lambda@"


def module_name_for(path: str) -> str:
    """Dotted module name for a package-relative posix path.

    ``repro/engine/parallel.py`` → ``repro.engine.parallel``;
    ``repro/lint/__init__.py`` → ``repro.lint``.  Paths outside a
    ``repro`` package (test fixtures) drop the ``.py`` suffix and join
    the remaining components, which keeps cross-file resolution working
    for fixture trees rooted at a temp directory.
    """
    parts = path.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(part for part in parts if part)


@dataclass
class FunctionInfo:
    """One function, method, nested function, or lambda."""

    qualname: str  # module-qualified, e.g. repro.engine.cache.ExecutionCache.get
    module: str
    path: str
    symbol: str  # in-file dotted symbol (Class.method, outer.inner, ...)
    name: str  # bare name ("get", "<lambda@12>")
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    ctx: FileContext
    class_qualname: str | None = None  # owning class for methods

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None


@dataclass
class ClassInfo:
    """One class definition with its method table."""

    qualname: str
    module: str
    path: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    methods: dict[str, str] = field(default_factory=dict)  # bare -> qualname
    bases: list[str] = field(default_factory=list)  # raw dotted base names
    #: ``self.attr = Class()`` / ``self.attr = factory()`` assignments
    #: collected from the class body (``__init__`` and friends):
    #: attribute name -> class qualname, when statically resolvable.
    attr_types: dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """Symbol table + import resolution over one parse of the tree."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.files: dict[str, FileContext] = {}
        self.modules: dict[str, FileContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions_by_name: dict[str, list[str]] = {}
        #: module -> local name -> canonical dotted target
        self.imports: dict[str, dict[str, str]] = {}
        #: class qualname -> direct project subclasses (virtual dispatch)
        self.subclasses: dict[str, list[str]] = {}
        self._call_graph = None
        self._analysis = None
        for ctx in sorted(contexts, key=lambda c: c.path):
            self._index_file(ctx)
        self._resolve_class_attr_types()
        self._build_subclass_map()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _index_file(self, ctx: FileContext) -> None:
        module = module_name_for(ctx.path)
        self.files[ctx.path] = ctx
        self.modules[module] = ctx
        self.imports[module] = self._resolve_imports(ctx, module)

        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            symbol = ctx.symbol_for(node)
            qualname = f"{module}.{symbol}"
            owner = self._owning_class(module, symbol)
            info = FunctionInfo(
                qualname=qualname,
                module=module,
                path=ctx.path,
                symbol=symbol,
                name=node.name,
                node=node,
                ctx=ctx,
                class_qualname=owner,
            )
            self.functions[qualname] = info
            self.functions_by_name.setdefault(node.name, []).append(qualname)

        for node in ctx.nodes(ast.Lambda):
            enclosing = ctx.symbol_for(node)
            name = f"{LAMBDA_PREFIX}{node.lineno}>"
            symbol = f"{enclosing}.{name}" if enclosing != "<module>" else name
            qualname = f"{module}.{symbol}"
            self.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=module,
                path=ctx.path,
                symbol=symbol,
                name=name,
                node=node,
                ctx=ctx,
            )

        for node in ctx.nodes(ast.ClassDef):
            symbol = ctx.symbol_for(node)
            qualname = f"{module}.{symbol}"
            info = ClassInfo(
                qualname=qualname,
                module=module,
                path=ctx.path,
                name=node.name,
                node=node,
                ctx=ctx,
                bases=[
                    dotted
                    for base in node.bases
                    if (dotted := _dotted(base)) is not None
                ],
            )
            self.classes[qualname] = info

        # Method tables: a function whose enclosing symbol is a class.
        for qualname, fn in self.functions.items():
            if fn.module != module or fn.class_qualname is None:
                continue
            cls = self.classes.get(fn.class_qualname)
            if cls is not None and "." not in fn.name:
                cls.methods[fn.name] = qualname

    def _owning_class(self, module: str, symbol: str) -> str | None:
        """The class qualname a method symbol belongs to, if any."""
        if "." not in symbol:
            return None
        prefix = symbol.rsplit(".", 1)[0]
        candidate = f"{module}.{prefix}"
        ctx = self.modules.get(module)
        if ctx is None:
            return None
        for node in ctx.nodes(ast.ClassDef):
            if ctx.symbol_for(node) == prefix:
                return candidate
        return None

    def _resolve_imports(self, ctx: FileContext, module: str) -> dict[str, str]:
        """Local name -> canonical dotted target, relative imports included."""
        resolved: dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else ""
        for node in ctx.nodes(ast.Import, ast.ImportFrom):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    resolved[local] = alias.asname and alias.name or alias.name.split(".")[0]
                    if alias.asname:
                        resolved[local] = alias.name
            else:
                base = node.module or ""
                if node.level:
                    # Relative import: climb from the module's package.
                    parts = module.split(".")
                    # level 1 == current package for a module file.
                    keep = len(parts) - node.level
                    anchor = ".".join(parts[:keep]) if keep > 0 else ""
                    base = f"{anchor}.{base}".strip(".") if base else anchor
                for alias in node.names:
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    resolved[local] = target
        return resolved

    def _resolve_class_attr_types(self) -> None:
        """Infer ``self.attr`` types from ``self.attr = Class()`` stores."""
        for cls in self.classes.values():
            imports = self.imports.get(cls.module, {})
            for node in ast.walk(cls.node):
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                target_cls = self.resolve_class_of_call(
                    node.value, cls.module, imports
                )
                if target_cls is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(target.attr, target_cls)

    def _build_subclass_map(self) -> None:
        for cls in self.classes.values():
            for base in cls.bases:
                resolved = self.resolve_local(cls.module, base)
                if resolved is not None and resolved in self.classes:
                    self.subclasses.setdefault(resolved, []).append(cls.qualname)

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def all_subclasses(self, class_qualname: str) -> list[str]:
        """Transitive project subclasses of a class, sorted."""
        result: set[str] = set()
        stack = list(self.subclasses.get(class_qualname, ()))
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self.subclasses.get(current, ()))
        return sorted(result)
    def resolve_local(self, module: str, dotted: str) -> str | None:
        """Canonicalise a dotted local name against a module's imports.

        ``procpool.process_map`` in the combiner (which does ``from
        repro.engine import procpool``) resolves to
        ``repro.engine.procpool.process_map``.  Names defined in the
        module itself resolve to ``{module}.{name}``.
        """
        head, _, rest = dotted.partition(".")
        imports = self.imports.get(module, {})
        if head in imports:
            root = imports[head]
            return f"{root}.{rest}" if rest else root
        candidate = f"{module}.{dotted}"
        if candidate in self.functions or candidate in self.classes:
            return candidate
        return None

    def resolve_class_of_call(
        self, call: ast.Call, module: str, imports: dict[str, str] | None = None
    ) -> str | None:
        """Class qualname a call constructs (or a known factory returns)."""
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        target = self.resolve_local(module, dotted)
        if target is not None and target in self.classes:
            return target
        # Known factory functions returning process-wide singletons.
        bare = dotted.split(".")[-1]
        factory = FACTORY_RETURNS.get(bare)
        if factory is not None and factory in self.classes:
            return factory
        if factory is not None:
            # Allow factories whose class lives outside the linted tree
            # (single-file fixtures): return the canonical name anyway.
            return factory
        return None

    def class_method(self, class_qualname: str, method: str) -> str | None:
        """Resolve a method through the class and its project bases."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            target = cls.methods.get(method)
            if target is not None:
                return target
            for base in cls.bases:
                resolved = self.resolve_local(cls.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def function_for_node(self, ctx: FileContext, node: ast.AST) -> FunctionInfo | None:
        """The :class:`FunctionInfo` whose body encloses ``node``."""
        module = module_name_for(ctx.path)
        symbol = ctx.symbol_for(node)
        while symbol and symbol != "<module>":
            info = self.functions.get(f"{module}.{symbol}")
            if info is not None and not isinstance(info.node, ast.Lambda):
                return info
            if "." not in symbol:
                break
            symbol = symbol.rsplit(".", 1)[0]
        return None

    # ------------------------------------------------------------------
    # Lazily built analyses (shared by all project-wide rules)
    # ------------------------------------------------------------------
    def call_graph(self):
        """The shared conservative call graph (built once per run)."""
        if self._call_graph is None:
            from repro.lint.callgraph import build_call_graph

            self._call_graph = build_call_graph(self)
        return self._call_graph

    def analysis(self):
        """The shared dataflow bundle (built once per run)."""
        if self._analysis is None:
            from repro.lint.dataflow import ProjectAnalysis

            self._analysis = ProjectAnalysis(self, self.call_graph())
        return self._analysis


#: Factory functions returning process-wide singletons, by bare name.
#: Used to type receiver variables (``cache = get_cache()``) so method
#: calls and lock acquisitions resolve to the owning class.
FACTORY_RETURNS: dict[str, str] = {
    "get_cache": "repro.engine.cache.ExecutionCache",
    "get_arena": "repro.engine.procpool.ColumnArena",
    "get_registry": "repro.obs.registry.MetricsRegistry",
    "get_pool": "concurrent.futures.ThreadPoolExecutor",
    "get_process_pool": "concurrent.futures.ProcessPoolExecutor",
}


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


__all__ = [
    "FACTORY_RETURNS",
    "ClassInfo",
    "FunctionInfo",
    "ProjectIndex",
    "module_name_for",
]
