"""Baseline handling: reviewed, accepted findings that do not fail CI.

A baseline entry identifies a finding by ``(rule, path, symbol)`` — no
line numbers, so entries survive unrelated edits to the file — plus a
mandatory human ``reason``.  The contract is the one ratcheting linters
use: the gate fails on any finding *not* in the baseline, the baseline
only ever shrinks in review, and stale entries (matching nothing) are
reported so they get deleted.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.lint.core import Finding


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed, accepted finding."""

    rule: str
    path: str
    symbol: str
    reason: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "reason": self.reason,
        }


def load_baseline(path: Path | str) -> list[BaselineEntry]:
    """Parse a baseline JSON file.

    Raises
    ------
    ValueError
        If the file is structurally wrong or an entry omits its reason —
        an unexplained exemption defeats the point of the review.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or not isinstance(
        data.get("entries"), list
    ):
        raise ValueError(
            f"{path}: baseline must be an object with an 'entries' list"
        )
    entries = []
    for i, raw in enumerate(data["entries"]):
        missing = [
            k
            for k in ("rule", "path", "symbol", "reason")
            if not isinstance(raw.get(k), str) or not raw.get(k).strip()
        ]
        if missing:
            raise ValueError(
                f"{path}: entry {i} is missing non-empty {missing}"
            )
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                symbol=raw["symbol"],
                reason=raw["reason"],
            )
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split findings into (fresh, accepted) and report stale entries.

    ``fresh`` findings fail the gate; ``accepted`` ones match a baseline
    entry; ``stale`` entries matched nothing and should be deleted.
    """
    by_key = {entry.key(): entry for entry in entries}
    fresh: list[Finding] = []
    accepted: list[Finding] = []
    used: set[tuple[str, str, str]] = set()
    for finding in findings:
        entry = by_key.get(finding.key())
        if entry is None:
            fresh.append(finding)
        else:
            accepted.append(finding)
            used.add(entry.key())
    stale = [entry for entry in entries if entry.key() not in used]
    return fresh, accepted, stale


def baseline_payload(
    findings: Sequence[Finding],
    existing: Sequence[BaselineEntry] = (),
) -> tuple[dict, list[BaselineEntry]]:
    """A baseline document accepting ``findings`` (``--write-baseline``).

    The output is **deterministic**: entries are sorted by
    ``(path, rule, symbol)`` and keys are emitted in a fixed order, so
    regenerating the baseline on an unchanged tree is a no-op diff.
    Entries from ``existing`` that still match a finding keep their
    reviewed reason; new findings get TODO placeholders (a baseline is
    only valid once a human replaces each with the actual
    justification).  Existing entries that no longer match anything are
    **pruned** and returned so the caller can warn about them.
    """
    reasons = {entry.key(): entry.reason for entry in existing}
    seen: set[tuple[str, str, str]] = set()
    entries = []
    for finding in sorted(
        findings, key=lambda f: (f.path, f.rule, f.symbol)
    ):
        if finding.key() in seen:
            continue
        seen.add(finding.key())
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "reason": reasons.get(
                    finding.key(),
                    "TODO: justify or fix (see docs/linting.md)",
                ),
            }
        )
    pruned = [entry for entry in existing if entry.key() not in seen]
    payload = {
        "comment": (
            "Reviewed repro.lint findings accepted on the current tree. "
            "Entries match on (rule, path, symbol); see docs/linting.md."
        ),
        "entries": entries,
    }
    return payload, pruned
