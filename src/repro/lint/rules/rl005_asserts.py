"""RL005 — ``assert`` used as a runtime guard in library code.

``assert`` statements are compiled away under ``python -O``, so a guard
written as an assert simply disappears in optimised deployments and the
invariant it protected fails later, somewhere else, without a message.
Library code must raise :mod:`repro.errors` types instead —
:class:`~repro.errors.InternalError` for "can't happen" invariants —
which also gives callers one catchable hierarchy.  (Tests are not
linted; pytest asserts are idiomatic there.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, register


@register
class AssertAsGuard(Rule):
    rule_id = "RL005"
    title = "bare assert guards vanish under python -O"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.Assert):
            yield self.finding(
                    ctx,
                    node,
                    "assert statement enforces a runtime contract but is "
                    "stripped under python -O; raise a repro.errors type "
                    "(e.g. InternalError) with a message instead",
                )
