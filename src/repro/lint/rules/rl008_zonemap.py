"""RL008 — in-place mutation of zone-map-summarised storage.

Zone maps (:mod:`repro.engine.zonemap`) cache per-chunk summaries of
column ``data`` arrays and bitmask-vector ``words`` matrices, anchored
on the *identity* of the summarised object.  That anchoring is only
sound because the engine treats those arrays as immutable once the
owning object is published: every state change replaces the object
wholesale, so the cache's identity check drops the stale summary
automatically.  A write *into* a published array — ``col.data[i] = v``,
``vector.words[...] |= m``, ``vector.set_bit(...)`` — changes values
behind an unchanged identity, and skipping then silently drops rows the
predicate actually matches (or keeps rows it doesn't): wrong answers,
no crash.

This rule makes the immutability structural: any function in the scope
below that writes into a ``.data``/``.words`` array, rebinds one of
those attributes, or calls a mask-mutating method (``set_bit``/``set``)
must also call an ``invalidate*`` helper in the same function, be an
``__init__`` (construction precedes publication), or appear in
:data:`ALLOWLIST` with a written justification of why the mutated array
cannot be summarised yet.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, register

#: Files/directories where summarised storage lives or is manipulated.
SCOPE_PREFIXES = ("repro/engine/", "repro/middleware/")
SCOPE_FILES = ("repro/core/smallgroup.py", "repro/core/combiner.py")

#: Attributes whose arrays the zone maps summarise.
SUMMARISED_ATTRS = frozenset({"data", "words"})

#: Method calls that mutate mask storage in place.
MUTATING_MASK_METHODS = frozenset({"set_bit", "set"})

#: ``path::symbol`` entries reviewed as safe without an invalidation.
#: Every entry must say *why* the written array cannot have zone-map
#: entries at that point.
ALLOWLIST: dict[str, str] = {
    # Bitmask is a single query mask, never a summarised vector: the
    # cache only anchors on BitmaskVector and Column objects.
    "repro/engine/bitmask.py::Bitmask.set": (
        "query-mask primitive; single Bitmask objects are never "
        "zone-map-summarised"
    ),
    "repro/engine/bitmask.py::Bitmask.from_int": (
        "fills a Bitmask it just constructed; nothing can reference it yet"
    ),
    # The one in-place vector primitive: callers own the discipline of
    # only invoking it on vectors that are not yet published (this rule
    # flags those call sites).
    "repro/engine/bitmask.py::BitmaskVector.set_bit": (
        "the construction-time primitive itself; call sites carry the "
        "pre-publication obligation and are flagged individually"
    ),
    "repro/engine/bitmask.py::BitmaskVector.row_mask": (
        "copies one row into a Bitmask it just constructed"
    ),
    # Sample-table construction: the vector is freshly allocated in the
    # same function and only attached to a table afterwards, so no query
    # (and no summary) can have seen it.
    "repro/core/smallgroup.py::SmallGroupSampling._pack_bits": (
        "fills a freshly built BitmaskVector before it is published on "
        "any sample table"
    ),
    # Arena reconstruction: sets attributes on a Column it allocated via
    # __new__ one line earlier; nothing can reference (or summarise) it.
    "repro/engine/column.py::column_from_parts": (
        "assembles a Column it just created with __new__; no zone map "
        "can be anchored on an object that has never been visible"
    ),
    # ``flight.event.set()`` is a threading.Event wake-up, not a mask
    # write; SingleFlight holds no array storage at all.
    "repro/engine/cache.py::SingleFlight.do": (
        "calls threading.Event.set() to release coalesced waiters; no "
        "summarised storage is involved"
    ),
}


def _subscript_store_attr(node: ast.AST) -> str | None:
    """The summarised attribute a subscript store writes into, if any."""
    if not isinstance(node, ast.Subscript):
        return None
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in SUMMARISED_ATTRS:
        return node.attr
    return None


def _rebound_attr(node: ast.AST) -> str | None:
    """The summarised attribute a plain attribute store rebinds, if any."""
    if isinstance(node, ast.Attribute) and node.attr in SUMMARISED_ATTRS:
        return node.attr
    return None


def _is_invalidating_call(node: ast.Call) -> bool:
    func = node.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    return name is not None and name.startswith("invalidate")


def _mutating_method(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute) and (
        node.func.attr in MUTATING_MASK_METHODS
    ):
        return node.func.attr
    return None


@register
class ZoneMapMutation(Rule):
    rule_id = "RL008"
    title = "in-place mutation of zone-map-summarised storage"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.path.startswith(SCOPE_PREFIXES) or ctx.path in SCOPE_FILES

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # First mutation per enclosing symbol (stable anchor), and the
        # symbols that call an invalidation helper somewhere in their
        # body.
        mutations: dict[str, tuple[ast.AST, str]] = {}
        discharged: set[str] = set()
        for node in ctx.nodes(
            ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Call
        ):
            symbol = ctx.symbol_for(node)
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _subscript_store_attr(target)
                    if attr is not None:
                        mutations.setdefault(
                            symbol, (node, f"writes into {attr!r}")
                        )
                        continue
                    attr = _rebound_attr(target)
                    if attr is not None:
                        mutations.setdefault(
                            symbol, (node, f"rebinds {attr!r}")
                        )
            elif isinstance(node, ast.Call):
                if _is_invalidating_call(node):
                    discharged.add(symbol)
                    continue
                method = _mutating_method(node)
                if method is not None:
                    mutations.setdefault(
                        symbol, (node, f"calls {method}() on mask storage")
                    )

        for symbol, (node, action) in sorted(mutations.items()):
            if symbol.split(".")[-1] == "__init__":
                continue  # construction precedes publication and caching
            if symbol in discharged:
                continue
            if f"{ctx.path}::{symbol}" in ALLOWLIST:
                continue
            yield self.finding(
                ctx,
                node,
                f"{action} without calling an invalidate* helper in the "
                "same function; cached zone-map summaries of the mutated "
                "array would keep skipping chunks from its old values "
                "(invalidate, or allowlist with a reason)",
            )
