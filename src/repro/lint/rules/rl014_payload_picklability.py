"""RL014 — non-picklable values smuggled through process-pool payloads.

RL010 checks the *task callable* of every process-pool submission; this
rule upgrades it to the rest of the submission with the call graph's
process-submit edges.  Everything in a payload crosses the pickle
boundary too, and the failure modes mirror RL010's:

* a **lambda or nested function inside a payload item** fails to pickle
  at submit time — but only on the ``--executor process`` path, so it
  hides behind the thread/serial backends until someone flips the flag;
* a **callable parameter packed into a payload** pickles or not
  depending on what every caller passes — the function itself cannot
  guarantee the contract.  ``process_map_row_chunks`` does exactly this
  by design (it forwards its ``fn`` argument inside each chunk item),
  which is safe *only because* RL010 pins every caller's ``fn`` to a
  module-level function — precisely the kind of reviewed, cross-rule
  dependency the baseline exists to record;
* a **bound method reference in a payload** drags its object through
  the task queue, defeating the shared-memory arena.

The rule inspects every submission edge tagged ``process`` (so call
sites are found by graph reachability, not filename heuristics),
resolves payload argument expressions one assignment deep (``items =
[...]; process_map(fn, items)``), and flags lambdas, nested-function
references, bound-method references, and Callable-annotated parameters
found inside them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import Finding, Rule, register

#: ``path::symbol`` entries reviewed as safe; reasons are mandatory.
ALLOWLIST: dict[str, str] = {}

#: Annotation names that mark a parameter as carrying a callable.
CALLABLE_ANNOTATIONS = ("Callable", "callable")


@register
class PayloadPicklability(Rule):
    rule_id = "RL014"
    title = "non-picklable value in process-pool payload"
    project_wide = True

    def check_project(self, project) -> Iterable[Finding]:
        analysis = project.analysis()
        seen: set[tuple[str, int, int, str]] = set()
        for edge in analysis.graph.submit_edges():
            if edge.backend != "process":
                continue
            src_info = project.functions.get(edge.src)
            if src_info is None:
                continue  # module-level submissions: fixtures only
            if f"{src_info.path}::{src_info.symbol}" in ALLOWLIST:
                continue
            call = self._call_at(src_info, edge.line)
            if call is None:
                continue
            for finding in self._check_payloads(project, src_info, call):
                key = (finding.path, finding.line, finding.col, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    # ------------------------------------------------------------------
    def _call_at(self, info, line: int) -> ast.Call | None:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and getattr(node, "lineno", 0) == line:
                return node
        return None

    def _check_payloads(
        self, project, info, call: ast.Call
    ) -> Iterable[Finding]:
        callable_params = self._callable_params(info)
        nested = self._nested_defs(info)
        assigns = self._local_assigns(info)

        # Payload arguments: everything after the task callable.
        payloads = list(call.args[1:]) + [kw.value for kw in call.keywords]
        for payload in payloads:
            exprs = [payload]
            if isinstance(payload, ast.Name) and payload.id in assigns:
                exprs.append(assigns[payload.id])
            for expr in exprs:
                yield from self._scan_expr(
                    project, info, call, expr, callable_params, nested
                )

    def _scan_expr(
        self, project, info, call, expr, callable_params, nested
    ) -> Iterable[Finding]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    info.ctx,
                    node,
                    "packs a lambda into a process-pool payload; it will "
                    "raise PicklingError at submit time, but only under "
                    "--executor process — pass a module-level function or "
                    "a plain descriptor instead",
                )
            elif isinstance(node, ast.Name):
                if node.id in callable_params:
                    yield self.finding(
                        info.ctx,
                        node,
                        f"packs callable parameter {node.id!r} into a "
                        "process-pool payload; picklability now depends on "
                        "what every caller passes — constrain callers to "
                        "module-level functions (RL010) and record the "
                        "contract, or ship a descriptor instead",
                    )
                elif node.id in nested:
                    yield self.finding(
                        info.ctx,
                        node,
                        f"packs nested function {node.id!r} into a "
                        "process-pool payload; closures cannot pickle — "
                        "hoist it to module scope",
                    )
            elif isinstance(node, ast.Attribute) and self._is_bound_method(
                project, info, node
            ):
                yield self.finding(
                    info.ctx,
                    node,
                    f"packs bound method {node.attr!r} into a process-pool "
                    "payload; the pickled reference drags its object "
                    "through the task queue — ship arena handles and a "
                    "module-level function instead",
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _callable_params(info) -> set[str]:
        node = info.node
        if isinstance(node, ast.Lambda):
            return set()
        names: set[str] = set()
        for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
            ann = arg.annotation
            text = None
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                text = ann.value
            elif ann is not None:
                text = ast.unparse(ann)
            if text is not None and any(
                marker in text for marker in CALLABLE_ANNOTATIONS
            ):
                names.add(arg.arg)
        return names

    @staticmethod
    def _nested_defs(info) -> set[str]:
        if isinstance(info.node, ast.Lambda):
            return set()
        return {
            node.name
            for node in ast.walk(info.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not info.node
        }

    @staticmethod
    def _local_assigns(info) -> dict[str, ast.AST]:
        """Last ``name = <expr>`` per local name (one-level resolution)."""
        if isinstance(info.node, ast.Lambda):
            return {}
        assigns: dict[str, ast.AST] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns[target.id] = node.value
        return assigns

    @staticmethod
    def _is_bound_method(project, info, node: ast.Attribute) -> bool:
        """``self.method`` / ``obj.method`` referencing a known method."""
        if not isinstance(node.value, ast.Name):
            return False
        receiver = node.value.id
        if receiver == "self" and info.class_qualname is not None:
            return project.class_method(info.class_qualname, node.attr) is not None
        return False
