"""RL003 — nondeterminism in the deterministic layers.

Sample construction, query execution, and the baseline techniques must
be replayable: experiments cite seeds, property tests shrink, and the
plan/parse memos assume identical inputs give identical outputs.  Fresh
process entropy (``random.Random()`` with no seed, numpy's legacy
global RNG, unseeded ``default_rng()``) and wall clocks (``time.time``,
``datetime.now``) break that silently.  Only ``repro/datagen/``,
``repro/experiments/``, and ``repro/cli.py`` may touch them; the
monotonic ``time.perf_counter`` is allowed everywhere because elapsed
timings are reporting, not behavior.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, canonical_call_name, register

SCOPE_PREFIXES = ("repro/core/", "repro/engine/", "repro/baselines/")

#: Wall-clock reads (monotonic perf_counter is deliberately absent).
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Calls that always draw from unseeded process-global entropy.
ENTROPY_ALWAYS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.uniform",
        "random.gauss",
        "random.seed",
        "random.getrandbits",
        "random.SystemRandom",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.seed",
        "uuid.uuid4",
    }
)

#: Constructors that are fine seeded but entropy sources with no args.
UNSEEDED_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng"}
)


@register
class Nondeterminism(Rule):
    rule_id = "RL003"
    title = "wall clock or fresh entropy in a deterministic layer"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.path.startswith(SCOPE_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.Call):
            name = canonical_call_name(node.func, ctx.aliases)
            if name is None:
                continue
            if name in WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads the wall clock in a deterministic "
                    "layer; only datagen/, experiments/, and cli.py may "
                    "(use time.perf_counter for elapsed timings)",
                )
            elif name in ENTROPY_ALWAYS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() draws from process-global entropy; thread "
                    "a seeded numpy Generator through instead (see "
                    "repro.engine.reservoir.as_generator)",
                )
            elif (
                name in UNSEEDED_CONSTRUCTORS
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() without a seed is fresh entropy; pass the "
                    "configured seed or an existing Generator",
                )
