"""RL002 — scale-factor discipline on rewrite pieces.

The paper's §4.2.2 UNION-ALL rewriting is unbiased only when every
branch carries the right aggregate scale: ``1/r`` on the overall
(rate-``r``) sample, exactly ``1`` on 100%-sampled small-group tables.
A wrong literal does not raise — it returns a plausible, wrong number.
This rule checks every ``SamplePiece``/``OverallPart`` construction in
``repro/core/`` and ``repro/baselines/`` for the statically decidable
mistakes:

* a piece marked ``zero_variance=True`` (100%-sampled) with a literal
  scale other than 1.0;
* a *sampled* piece (``zero_variance`` absent or ``False``) with an
  explicit literal ``scale=1.0`` — the silent-bias case;
* a ``SamplePiece`` with no ``scale``, no per-row ``weights``, and no
  ``zero_variance=True``: the dataclass default (1.0) then silently
  under-scales the piece.

Non-literal scales (``scale=1.0 / rate``, ``scale=piece.scale``) are
runtime facts the checker cannot decide and are left to the tests.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, register

SCOPE_PREFIXES = ("repro/core/", "repro/baselines/")

#: Constructors carrying a scale contract (dataclass field order of
#: SamplePiece puts ``scale`` third, hence the positional index).
PIECE_NAMES = frozenset({"SamplePiece", "OverallPart"})
SCALE_POSITIONAL_INDEX = 2


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_number(node: ast.AST | None) -> float | None:
    """The numeric value of a literal expression, else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_number(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    return None


def _literal_bool(node: ast.AST | None) -> bool | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return None


@register
class ScaleDiscipline(Rule):
    rule_id = "RL002"
    title = "rewrite-piece scale factor violates the §4.2.2 invariant"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.path.startswith(SCOPE_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.Call):
            name = _call_name(node)
            if name not in PIECE_NAMES:
                continue
            kwargs = {k.arg: k.value for k in node.keywords if k.arg}
            scale_expr = kwargs.get("scale")
            if scale_expr is None and len(node.args) > SCALE_POSITIONAL_INDEX:
                scale_expr = node.args[SCALE_POSITIONAL_INDEX]
            scale_literal = _literal_number(scale_expr)
            zero_variance_expr = kwargs.get("zero_variance")
            zero_variance = _literal_bool(zero_variance_expr)

            if zero_variance is True:
                if scale_literal is not None and scale_literal != 1.0:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name} marked zero_variance=True (100%-sampled) "
                        f"carries literal scale={scale_literal:g}; exact "
                        "pieces must have unit scale or every aggregate "
                        "is multiplied by a bias factor",
                    )
                continue
            if zero_variance_expr is not None and zero_variance is None:
                continue  # zero_variance is a runtime expression: undecidable

            if scale_literal == 1.0:
                yield self.finding(
                    ctx,
                    node,
                    f"sampled {name} constructed with literal scale=1.0; "
                    "the overall sample must be scaled by 1/r (§4.2.2) — "
                    "pass the computed rate, or mark zero_variance=True "
                    "if the piece really is exact",
                )
            elif (
                name == "SamplePiece"
                and scale_expr is None
                and "weights" not in kwargs
            ):
                yield self.finding(
                    ctx,
                    node,
                    "SamplePiece without scale=, weights=, or "
                    "zero_variance=True defaults to scale=1.0 and "
                    "silently under-scales a sampled piece; pass "
                    "scale=1/r or per-row weights",
                )
