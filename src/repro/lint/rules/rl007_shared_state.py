"""RL007 — shared-state mutation in code that runs on the worker pool.

The parallel execution subsystem's determinism argument (see
``docs/internals.md`` §8) rests on pool tasks being *pure*: a function
scattered across worker threads may read tables and the thread-safe
execution cache, but must not mutate shared engine state — otherwise
answers depend on thread interleaving and the byte-identical-at-any-
worker-count guarantee silently breaks.  Inside
``repro/engine/parallel.py`` itself the module-level pool/option
globals may only be written while holding the module's locks.

This rule makes both disciplines structural.  Its scope is:

* **every** function in ``repro/engine/parallel.py`` (the pool module);
* any function a module *submits to the pool* — detected as the
  function argument of ``parallel_map(...)`` / ``map_row_chunks(...)``
  / ``pool.submit(...)`` calls (named functions, methods, or inline
  lambdas) — in the engine, middleware, and the small-group/combiner
  core modules.

Within that scope it flags assignments (plain, augmented, annotated,
including subscript stores and tuple unpacking) to the monitored
shared-state attributes/globals, and mutating method calls
(``append``/``pop``/``update``/…) on them, unless the statement sits
lexically inside a ``with`` block whose context expression names a
lock (dotted name containing ``"lock"``, case-insensitive).  Pool
tasks should not take engine locks at all — mutation belongs in the
serial head/tail around the scatter — but a lock-holding helper in
``parallel.py`` is exactly how the pool manages its own globals.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.callgraph import is_server_handler
from repro.lint.core import FileContext, Finding, Rule, register

#: The pool modules: every function here is in scope.
POOL_MODULES = (
    "repro/engine/parallel.py",
    "repro/engine/procpool.py",
)

#: Files whose pool-submitted functions carry the purity contract.  The
#: serving package is in scope because its request entry points run on
#: HTTP handler threads (one per connection) — the same shared-address-
#: space races as pool tasks; those entry points are scanned as roots
#: directly (see ``is_server_handler``).
SCOPE_PREFIXES = ("repro/engine/", "repro/middleware/", "repro/server/")
SCOPE_FILES = (
    "repro/core/smallgroup.py",
    "repro/core/combiner.py",
)

#: Calls whose function argument runs on the worker pool.
SUBMIT_CALLS = frozenset(
    {
        "parallel_map",
        "map_row_chunks",
        "process_map",
        "process_map_row_chunks",
        "submit",
    }
)

#: Attributes holding shared engine state (cache structures, catalogs,
#: sample layouts, session memos, metrics counters, column storage).
SHARED_STATE_ATTRS = frozenset(
    {
        "_entries",
        "_anchor_keys",
        "_tables",
        "tables",
        "_columns",
        "columns",
        "_metas",
        "_overall_parts",
        "_reduced_dims",
        "data",
        "dictionary",
        "hits",
        "misses",
        "invalidations",
        "enabled",
        "metrics",
        "_parse_memo",
        "_plan_memo",
        "_log",
    }
)

#: Module-level globals of the pool modules themselves.
SHARED_GLOBALS = frozenset(
    {
        "_POOL",
        "_POOL_WORKERS",
        "_DEFAULT_OPTIONS",
        "_PROC_POOL",
        "_PROC_POOL_WORKERS",
    }
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
    }
)


def _is_lock_context(item: ast.withitem) -> bool:
    """Whether a ``with`` item's context expression names a lock."""
    node = item.context_expr
    if isinstance(node, ast.Call):  # e.g. ``with lock_for(key):``
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return any("lock" in part.lower() for part in parts)


def _shared_target(node: ast.AST) -> str | None:
    """The shared attribute/global a store targets, or ``None``.

    Unwraps subscripts (``self._entries[key] = ...``) and reports the
    first monitored name found in the attribute chain.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    probe = node
    while isinstance(probe, ast.Attribute):
        if probe.attr in SHARED_STATE_ATTRS:
            return probe.attr
        probe = probe.value
    if isinstance(node, ast.Name) and node.id in SHARED_GLOBALS:
        return node.id
    return None


def _store_targets(node: ast.AST) -> list[ast.AST]:
    """Flatten an assignment's targets, unpacking tuples/lists."""
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return []
    flat: list[ast.AST] = []
    while targets:
        target = targets.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            targets.extend(target.elts)
        else:
            flat.append(target)
    return flat


def _mutating_call_target(node: ast.Call) -> str | None:
    """The shared state a mutating method call touches, or ``None``."""
    func = node.func
    if not (
        isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS
    ):
        return None
    probe = func.value
    while isinstance(probe, ast.Attribute):
        if probe.attr in SHARED_STATE_ATTRS:
            return probe.attr
        probe = probe.value
    if isinstance(probe, ast.Name) and probe.id in SHARED_GLOBALS:
        return probe.id
    return None


def _submitted_functions(
    calls: Iterable[ast.AST],
) -> tuple[set[str], list[ast.Lambda]]:
    """Names (and inline lambdas) these call nodes submit to the pool.

    The function argument is the first positional argument of
    ``parallel_map``/``map_row_chunks`` and ``<pool>.submit`` calls.
    Callers pass ``ctx.nodes(ast.Call)`` (the shared index).
    """
    names: set[str] = set()
    lambdas: list[ast.Lambda] = []
    for node in calls:
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        call_name = (
            func.attr if isinstance(func, ast.Attribute) else
            func.id if isinstance(func, ast.Name) else None
        )
        if call_name not in SUBMIT_CALLS:
            continue
        submitted = node.args[0]
        if isinstance(submitted, ast.Name):
            names.add(submitted.id)
        elif isinstance(submitted, ast.Attribute):
            names.add(submitted.attr)
        elif isinstance(submitted, ast.Lambda):
            lambdas.append(submitted)
    return names, lambdas


@register
class SharedStateInPoolTask(Rule):
    rule_id = "RL007"
    title = "shared-state mutation in pool-submitted code"

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            ctx.path in POOL_MODULES
            or ctx.path.startswith(SCOPE_PREFIXES)
            or ctx.path in SCOPE_FILES
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        names, lambdas = _submitted_functions(ctx.nodes(ast.Call))
        roots: list[ast.AST] = list(lambdas)
        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            if (
                # ``__init__`` is exempt from the whole-module scan:
                # construction precedes publication, so nothing can race
                # the stores (the same argument RL008 encodes).
                (ctx.path in POOL_MODULES and node.name != "__init__")
                or node.name in names
                # Serving request entry points run on HTTP handler
                # threads — same purity contract as pool tasks.
                or is_server_handler(ctx.path, node.name)
            ):
                roots.append(node)

        findings: list[Finding] = []

        def scan(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                _is_lock_context(item) for item in node.items
            ):
                locked = True
            target: str | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for stored in _store_targets(node):
                    target = target or _shared_target(stored)
            elif isinstance(node, ast.Call):
                target = _mutating_call_target(node)
            if target is not None and not locked:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"mutates shared state {target!r} in code that "
                        "runs on the worker pool without holding a lock; "
                        "pool tasks must be pure — move the mutation to "
                        "the serial head/tail around the scatter, or "
                        "guard it in a lock-holding helper",
                    )
                )
            for child in ast.iter_child_nodes(node):
                scan(child, locked)

        for root in roots:
            for child in ast.iter_child_nodes(root):
                scan(child, False)
        # One finding per (symbol, line): tuple targets can hit twice.
        seen: set[tuple[str, int, int]] = set()
        for finding in findings:
            key = (finding.symbol, finding.line, finding.col)
            if key not in seen:
                seen.add(key)
                yield finding
