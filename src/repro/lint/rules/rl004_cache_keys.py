"""RL004 — cache-key hygiene on :class:`ExecutionCache` lookups.

The execution cache validates entries by *object identity* through weak
references: a hit is only served while each anchor is the same live
object it was stored against.  Passing a freshly computed value —
``cache.get("k", (col.numeric_values(),))`` — defeats the design twice
over: the temporary's identity dies with the expression, so the entry
can never be validated against a later lookup (a 0% hit rate that looks
like a working cache), and with ``np.ndarray`` temporaries each miss
stores a new dead entry.  Anchors must be pre-bound names or attribute
references to objects that outlive the call.

The provenance-sketch store (:mod:`repro.engine.selection`) follows the
same identity-anchored design — ``store.lookup(template, anchors, ...)``
and ``store.record(template, anchors, ...)`` weakref-validate their
anchors exactly like the execution cache — so its lookups get the same
hygiene check.

Heuristics (documented limits): a receiver "looks like a cache" when
its name ends in ``cache`` (``cache``, ``self.cache``, ``_cache``) or
it is the result of ``get_cache()``; it "looks like a sketch store"
when its name ends in ``store`` or it is the result of
``get_sketch_store()``.  The rule cannot see through a name bound to a
computed tuple one line earlier.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, dotted_name, register

LOOKUP_METHODS = frozenset({"get", "put", "get_or_compute"})
STORE_LOOKUP_METHODS = frozenset({"lookup", "record", "chunk_hits"})
ANCHORS_POSITIONAL_INDEX = 1  # (kind, anchors, ...) / (template, anchors, ...)


def _is_cache_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] == "get_cache"
    name = dotted_name(node)
    return name is not None and name.split(".")[-1].lower().endswith("cache")


def _is_store_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] == "get_sketch_store"
    name = dotted_name(node)
    return name is not None and name.split(".")[-1].lower().endswith("store")


def _anchor_ok(node: ast.AST) -> bool:
    """Whether one anchor expression denotes a pre-bound object."""
    if isinstance(node, (ast.Name, ast.Attribute)):
        return True
    if isinstance(node, ast.Subscript):
        return _anchor_ok(node.value)
    if isinstance(node, ast.Starred):
        return _anchor_ok(node.value)
    return False


@register
class CacheKeyHygiene(Rule):
    rule_id = "RL004"
    title = "computed expression used as an identity-cache anchor"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            is_cache = (
                func.attr in LOOKUP_METHODS
                and _is_cache_receiver(func.value)
            )
            is_store = (
                func.attr in STORE_LOOKUP_METHODS
                and _is_store_receiver(func.value)
            )
            if not (is_cache or is_store):
                continue
            anchors: ast.AST | None = None
            for keyword in node.keywords:
                if keyword.arg == "anchors":
                    anchors = keyword.value
            if anchors is None and len(node.args) > ANCHORS_POSITIONAL_INDEX:
                anchors = node.args[ANCHORS_POSITIONAL_INDEX]
            if anchors is None:
                continue
            elements = (
                anchors.elts
                if isinstance(anchors, (ast.Tuple, ast.List))
                else [anchors]
            )
            for element in elements:
                if _anchor_ok(element):
                    continue
                receiver = "store" if is_store else "cache"
                yield self.finding(
                    ctx,
                    element,
                    f"{receiver}.{func.attr}() anchor is a computed "
                    "expression; identity-validated anchors must be "
                    "pre-bound names or attributes of objects that outlive "
                    "the call — a temporary can never validate a later hit",
                )
