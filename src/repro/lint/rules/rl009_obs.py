"""RL009 — observability reads in the compute layers.

Profiling must be answer-neutral: ``session.sql(..., profile=True)``
and ``profile=False`` must produce byte-identical estimates at any
worker count and chunk size.  That holds only if the compute layers
treat spans (:mod:`repro.obs.trace`) and the metrics registry
(:mod:`repro.obs.registry`) as **write-only** channels — create
children, time blocks, record attributes, bump counters — and never
read them back or branch on them.  The moment ``repro/engine/`` or
``repro/core/`` code consults a recorded duration or a counter, the
answer can depend on whether (and how fast) profiling ran.

This rule makes the contract structural.  In the deterministic layers
(the RL003 scope: ``repro/core/``, ``repro/engine/``,
``repro/baselines/``) it flags, on *span-ish* receivers (an identifier
containing ``span``, or named ``trace``/``tracer``):

* loads of the recorded state — ``.seconds`` / ``.attrs`` /
  ``.children`` in read position (including augmented assignment,
  which reads before it writes);
* calls to the read API — ``iter_spans`` / ``find`` / ``to_dict`` /
  ``to_text``;
* truthiness tests or method calls on a span inside a branch condition
  (``if``/``while``/ternary/``assert``) — *except* identity checks
  (``span is NULL_SPAN``, ``span is not None``), which compare plumbing
  wiring, not recorded measurements;

and, on registry receivers (``get_registry()`` or a name containing
``registry``), calls to the read API ``counter`` / ``snapshot``.

Writes are untouched: ``span.child(...)``, ``with span:``,
``span.add(...)``, ``span.annotate(...)``, ``span.seconds = ...`` in
plain store position, ``registry.incr/observe/set_gauge`` all pass.
The presentation layers (``repro/obs/``, ``repro/middleware/``, the
CLI) legitimately read spans to assemble profiles and are out of
scope.  The dynamic counterpart of this rule is the profile-determinism
sweep in ``tests/test_obs.py``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, register

SCOPE_PREFIXES = ("repro/core/", "repro/engine/", "repro/baselines/")

#: Recorded span state: reading any of these can couple answers to
#: profiling.  (``name`` is deliberately absent — far too common an
#: attribute to attribute to spans by receiver name alone.)
SPAN_READ_ATTRS = frozenset({"seconds", "attrs", "children"})

#: Span read-API methods (presentation helpers).
SPAN_READ_METHODS = frozenset({"iter_spans", "find", "to_dict", "to_text"})

#: Registry read-API methods.
REGISTRY_READ_METHODS = frozenset({"counter", "snapshot"})


def _receiver_parts(node: ast.AST) -> list[str]:
    """Identifier parts of an attribute chain's receiver, outer-first."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.extend(_receiver_parts(node.func))
    return parts


def _is_spanish(parts: list[str]) -> bool:
    """Whether any receiver part names a span ("span" in it, or trace)."""
    return any(
        "span" in part.lower() or part.lower() in ("trace", "tracer")
        for part in parts
    )


def _is_registryish(parts: list[str]) -> bool:
    """Whether the receiver is the metrics registry (or its getter)."""
    return any("registry" in part.lower() for part in parts)


def _is_identity_compare(node: ast.AST) -> bool:
    """``a is b`` / ``a is not b`` — wiring checks, not state reads."""
    return isinstance(node, ast.Compare) and all(
        isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
    )


@register
class ObservabilityReadInComputeLayer(Rule):
    rule_id = "RL009"
    title = "span/registry read in a compute layer (profiling must be write-only)"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.path.startswith(SCOPE_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aug_targets = {
            id(node.target) for node in ctx.nodes(ast.AugAssign)
        }
        for node in ctx.nodes(
            ast.Attribute, ast.If, ast.While, ast.IfExp, ast.Assert
        ):
            if isinstance(node, ast.Attribute):
                receiver = _receiver_parts(node.value)
                is_read = isinstance(node.ctx, ast.Load) or id(node) in aug_targets
                if (
                    node.attr in SPAN_READ_ATTRS
                    and is_read
                    and _is_spanish(receiver)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"reads span state '.{node.attr}' in a compute "
                        "layer; spans are a write-only channel here "
                        "(child/add/annotate/with only) — reading them "
                        "lets profiling change answers.  Assemble "
                        "profiles in repro/obs/ or the middleware",
                    )
                elif (
                    node.attr in SPAN_READ_METHODS
                    and isinstance(node.ctx, ast.Load)
                    and _is_spanish(receiver)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"calls span read-API '.{node.attr}()' in a "
                        "compute layer; only repro/obs/ and the "
                        "presentation layers may read span trees",
                    )
                elif (
                    node.attr in REGISTRY_READ_METHODS
                    and isinstance(node.ctx, ast.Load)
                    and _is_registryish(receiver)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"reads the metrics registry ('.{node.attr}') in "
                        "a compute layer; the registry is write-only "
                        "here (incr/observe/set_gauge) — metrics must "
                        "never feed back into answers",
                    )
            elif isinstance(node, (ast.If, ast.While, ast.IfExp, ast.Assert)):
                yield from self._check_branch_test(ctx, node.test)

    def _check_branch_test(
        self, ctx: FileContext, test: ast.AST
    ) -> Iterable[Finding]:
        """Flag spans used as branch conditions (truthiness or calls)."""
        stack = [test]
        while stack:
            node = stack.pop()
            if _is_identity_compare(node):
                continue  # ``span is NULL_SPAN`` compares wiring, not state
            if isinstance(node, ast.Name) and _is_spanish([node.id]):
                yield self.finding(
                    ctx,
                    node,
                    f"branches on span {node.id!r} in a compute layer; "
                    "profiling must not steer execution — use the "
                    "NULL_SPAN no-op instead of testing for a span",
                )
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and _is_spanish(_receiver_parts(node.func.value))
            ):
                yield self.finding(
                    ctx,
                    node,
                    "calls a span method inside a branch condition in a "
                    "compute layer; span state must never influence "
                    "control flow",
                )
                continue
            stack.extend(ast.iter_child_nodes(node))
