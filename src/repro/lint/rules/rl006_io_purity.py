"""RL006 — I/O purity: ``print`` belongs to the presentation layer.

Engine, core, and technique code is used as a library (and under the
experiment harness, per figure, thousands of times); a stray ``print``
pollutes captured stdout, breaks ``--format json`` consumers, and is
invisible to the reporting pipeline.  Only the CLI entry points and the
reporting module may write to stdout directly.  ``breakpoint()`` is
flagged everywhere — it is a debugging artifact, never shippable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, register

#: Presentation-layer modules allowed to print.
ALLOWED_FILES = frozenset(
    {
        "repro/cli.py",
        "repro/lint/cli.py",
        "repro/experiments/reporting.py",
    }
)


@register
class IOPurity(Rule):
    rule_id = "RL006"
    title = "print() outside the presentation layer"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        allowed = ctx.path in ALLOWED_FILES
        for node in ctx.nodes(ast.Call):
            if not isinstance(node.func, ast.Name):
                continue
            if node.func.id == "print" and not allowed:
                yield self.finding(
                    ctx,
                    node,
                    "print() outside cli.py/experiments/reporting.py; "
                    "return data and let the presentation layer render "
                    "it, or route through repro.experiments.reporting",
                )
            elif node.func.id == "breakpoint":
                yield self.finding(
                    ctx, node, "breakpoint() left in library code"
                )
