"""RL001 — mutation without cache/plan invalidation.

The cross-query :class:`~repro.engine.cache.ExecutionCache` and the
session plan memo are only safe because every code path that *replaces*
engine state — a table in a catalog, a sample table, a reduced
dimension — invalidates the derived artifacts or bumps ``plan_version``
in the same function.  A path that forgets does not crash: the cache
keeps serving artifacts of the replaced object and the answers are
silently wrong, the exact failure mode AQP literature warns about.
This rule makes the discipline structural: any function in the scope
below that assigns to one of the monitored state attributes must also
call an ``invalidate*`` / ``bump_plan_version`` / ``_report`` method
(``AQPTechnique._report`` performs the plan-version bump for every
``preprocess`` implementation) or appear in :data:`ALLOWLIST` with a
written justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, register

#: Files/directories whose functions carry the invalidation contract.
SCOPE_PREFIXES = ("repro/engine/", "repro/middleware/")
SCOPE_FILES = ("repro/core/smallgroup.py",)

#: Attributes holding state the execution cache derives artifacts from,
#: plus the provenance-sketch store's identity-anchored entry tables
#: (``repro.engine.selection.SketchStore``): a sketch slot written
#: without an invalidation path would serve stale chunk sets after
#: ``append_rows``/``insert_rows``/``drop_table``.
MUTATED_ATTRS = frozenset(
    {
        "tables",
        "_tables",
        "columns",
        "_columns",
        "_overall_parts",
        "_reduced_dims",
        "_metas",
        "_slots",
        "_anchor_slots",
        # Raw column/bitmask payloads: growing ``Column.data`` or
        # ``BitmaskVector.words`` in place changes every derived chunk
        # summary without changing the anchor identity, so the write must
        # be announced — either by invalidating, or by emitting the
        # structured append event (``notify_append``) whose listeners
        # extend the derived structures for the new tail.
        "data",
        "words",
    }
)

#: Method names whose call counts as discharging the contract.
#: ``_drop_slot`` is the sketch store's internal invalidation primitive —
#: every ``invalidate_object``/anchor-death path funnels through it.
#: ``notify_append`` is the *incremental* discharge: it broadcasts an
#: :class:`~repro.engine.cache.AppendEvent` whose listeners migrate or
#: extend every derived structure for the appended tail, which keeps the
#: cache coherent exactly like an invalidation does (just cheaper).
INVALIDATING_CALLS = frozenset(
    {"bump_plan_version", "_report", "_drop_slot", "notify_append"}
)

#: ``path::symbol`` entries reviewed as safe without an invalidation.
#: Every entry must say *why* the mutation cannot leave stale cache
#: entries behind; unexplained exemptions belong in the baseline file,
#: which is visible in review, not here.
ALLOWLIST: dict[str, str] = {
    # A brand-new table object (duplicate names are rejected) cannot have
    # cache entries: keys are object identities, not names.
    "repro/engine/database.py::Database.add_table": (
        "registers a new object; identity-keyed cache has no entries for it"
    ),
    # Recording a sketch *creates* a cache entry; staleness is covered by
    # three invalidation paths wired elsewhere: weakref death callbacks
    # on every anchor drop the slot, _live_slot re-validates identities
    # on every read, and the module-level add_invalidation_listener
    # fan-out mirrors every explicit ExecutionCache invalidation.
    "repro/engine/selection.py::SketchStore.record": (
        "writes identity-anchored entries; anchor weakrefs + lookup-time "
        "validation + the cache invalidation listener drop them on any "
        "mutation"
    ),
    # The append-event migration itself: rewrites each surviving slot
    # from the old anchors to the new table's objects, conservatively
    # marking every chunk past the first changed boundary
    # appended-UNKNOWN (must-scan).  It *is* the coherence step the rule
    # looks for — there is no staler state to invalidate afterwards, and
    # the subsequent invalidate_table(old) only ever sees the already
    # dropped old keys.
    "repro/engine/selection.py::SketchStore.extend_on_append": (
        "the AppendEvent migration: drops the old-anchored slot and "
        "re-records a tail-UNKNOWN rewrite on the new anchors; coherence "
        "is the function's own postcondition"
    ),
    # Worker-side reassembly of a column from shared-memory arena parts:
    # the object is created by Column.__new__ on the line above, so the
    # identity-keyed caches cannot hold entries for it yet.
    "repro/engine/column.py::column_from_parts": (
        "populates a brand-new Column object (Column.__new__ above); "
        "identity-keyed caches have no entries for it"
    ),
}


#: Payload attributes where only a plain *rebind* is monitored.  Element
#: writes into the arrays (``col.data[i] = v``, ``vector.words[...] |= m``)
#: are RL008's concern (writes into published arrays bypass zone maps);
#: RL001 watches for the array being *replaced* — the grow-by-reassignment
#: idiom that leaves every identity-anchored summary describing the old
#: payload.
REBIND_ONLY_ATTRS = frozenset({"data", "words"})


def _attr_target(node: ast.AST) -> str | None:
    """The monitored attribute a store targets, unwrapping subscripts."""
    subscripted = False
    while isinstance(node, ast.Subscript):
        subscripted = True
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in MUTATED_ATTRS:
        if subscripted and node.attr in REBIND_ONLY_ATTRS:
            return None
        return node.attr
    return None


def _is_invalidating_call(node: ast.Call) -> bool:
    func = node.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name is None:
        return False
    return name.startswith("invalidate") or name in INVALIDATING_CALLS


def _is_version_bump(node: ast.AST) -> bool:
    """Direct ``self.plan_version += 1``-style bumps also discharge."""
    targets: list[ast.AST] = []
    if isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.Assign):
        targets = list(node.targets)
    for target in targets:
        if isinstance(target, ast.Attribute) and target.attr in (
            "plan_version",
            "_plan_version",
        ):
            return True
    return False


@register
class MutationWithoutInvalidation(Rule):
    rule_id = "RL001"
    title = "state mutation without cache/plan invalidation"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.path.startswith(SCOPE_PREFIXES) or ctx.path in SCOPE_FILES

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # First mutation node per enclosing symbol (stable anchor), and
        # the set of symbols that discharge the contract somewhere in
        # their body.
        mutations: dict[str, tuple[ast.AST, str]] = {}
        discharged: set[str] = set()
        for node in ctx.nodes(
            ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Call
        ):
            symbol = ctx.symbol_for(node)
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if _is_version_bump(node):
                    discharged.add(symbol)
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _attr_target(target)
                    if attr is not None:
                        mutations.setdefault(symbol, (node, attr))
            elif isinstance(node, ast.Call) and _is_invalidating_call(node):
                discharged.add(symbol)

        for symbol, (node, attr) in sorted(mutations.items()):
            if symbol.split(".")[-1] == "__init__":
                continue  # construction precedes any caching
            if symbol in discharged:
                continue
            if f"{ctx.path}::{symbol}" in ALLOWLIST:
                continue
            yield self.finding(
                ctx,
                node,
                f"assigns {attr!r} without calling an invalidate*/"
                "bump_plan_version/_report in the same function; cached "
                "artifacts derived from the replaced object would be "
                "served stale (invalidate, or allowlist with a reason)",
            )
