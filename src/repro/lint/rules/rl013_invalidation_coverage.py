"""RL013 — interprocedural invalidation coverage (RL001 upgraded).

RL001 demands that a function mutating cache-anchored state call an
invalidation *in the same function body*.  That per-file rule has two
blind spots, and both have already cost baseline entries:

* **callee-side**: the mutation is fine if the function calls a helper
  that (transitively) invalidates — RL001 cannot see past one frame;
* **caller-side**: the small-group sample builders mutate
  ``_overall_parts``/``_reduced_dims`` and deliberately leave the
  plan-version bump to their only caller (``preprocess`` → ``_report``),
  a design RL001 can only express as a baseline exception.

This rule re-checks the same mutations with the call graph.  A mutation
in function ``f`` is **covered** when either

1. ``f`` transitively reaches an invalidation call
   (:data:`repro.lint.dataflow.INVALIDATING_CALLS` — the least-fixpoint
   ``invalidators`` set), or
2. every call chain that can execute ``f`` passes through an
   invalidation above it — the greatest-fixpoint ``covered`` set:
   ``covered(f) = invalidates(f) or (f has callers and every caller is
   covered)``.  A function with no resolved callers is *not* covered
   (nothing proves the bump happens), which keeps dead-looking public
   entry points honest.

Anything not covered either loses the bump on some path today or is one
refactor away from losing it.  The rule therefore *discharges* RL001's
existing baseline entries (they are covered caller-side) while catching
strictly more than RL001 would if a future path skips the bump.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import Finding, Rule, register
from repro.lint.rules.rl001_invalidation import (
    ALLOWLIST,
    SCOPE_FILES,
    SCOPE_PREFIXES,
    _attr_target,
    _is_version_bump,
)


@register
class InterproceduralInvalidationCoverage(Rule):
    rule_id = "RL013"
    title = "mutation not covered by any invalidation path"
    project_wide = True

    def check_project(self, project) -> Iterable[Finding]:
        analysis = project.analysis()
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if isinstance(info.node, ast.Lambda):
                continue
            if not (
                info.path.startswith(SCOPE_PREFIXES)
                or info.path in SCOPE_FILES
            ):
                continue
            if info.name == "__init__":
                continue  # construction precedes any caching
            if f"{info.path}::{info.symbol}" in ALLOWLIST:
                continue

            mutation = self._first_mutation(info)
            if mutation is None:
                continue
            node, attr = mutation
            if qualname in analysis.invalidators:
                continue
            if qualname in analysis.covered:
                continue
            callers = [
                e for e in analysis.graph.callers(qualname) if e.kind == "call"
            ]
            if callers:
                detail = (
                    "it does not transitively invalidate, and not every "
                    "caller chain does either (uncovered caller: "
                    f"{callers[0].src})"
                )
            else:
                detail = (
                    "it does not transitively invalidate and has no "
                    "resolved callers to do it on its behalf"
                )
            yield self.finding(
                info.ctx,
                node,
                f"assigns {attr!r} but no invalidation covers this "
                f"mutation: {detail}; call invalidate*/bump_plan_version/"
                "_report somewhere on every path that executes this "
                "function",
            )

    @staticmethod
    def _first_mutation(info) -> tuple[ast.AST, str] | None:
        """First monitored-attribute store directly in this function.

        Nested defs are excluded — they are functions of their own in
        the project index and get checked under their own qualname.
        """
        version_bumped = False
        first: tuple[ast.AST, str] | None = None
        stack = list(ast.iter_child_nodes(info.node))
        while stack:
            node = stack.pop(0)
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if _is_version_bump(node):
                    version_bumped = True
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _attr_target(target)
                    if attr is not None and first is None:
                        first = (node, attr)
            stack.extend(ast.iter_child_nodes(node))
        if version_bumped:
            return None  # direct bump discharges, same as RL001
        return first
