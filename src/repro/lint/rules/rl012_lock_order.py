"""RL012 — inconsistent lock acquisition order (potential deadlock).

The engine now holds real locks in real nesting patterns: the execution
cache's ``RLock`` wraps calls into the cache-metrics lock, the column
arena's ``RLock`` wraps metrics-registry increments, and the pool
modules guard their singletons with module-level locks.  None of that
deadlocks *today* because the acquisition order happens to be
consistent — but nothing enforced it, and a future "just take the cache
lock while holding the registry lock" change would compile, pass every
single-threaded test, and hang production under contention.

This rule computes the whole-program **lock-order graph** from the
dataflow pass: an edge ``A → B`` whenever ``B`` can be acquired while
``A`` is held, including acquisitions buried in calls made inside the
``with A:`` region.  Any cycle is a potential deadlock: two threads
entering the cycle at different points can each hold the lock the other
needs.  Two shapes are reported:

* a **multi-lock cycle** (``A → B → A``) — the classic ABBA deadlock;
* a **self-loop on a non-reentrant lock** (``with lock:`` reaching
  another ``lock.acquire`` / ``with lock:`` of the same plain
  ``threading.Lock``) — single-threaded self-deadlock.

Re-entrant ``RLock`` self-loops are exempt: re-acquiring an ``RLock``
on the same thread is exactly what it is for (the execution cache's
``get`` → ``put`` nesting relies on it).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.lint.core import Finding, Rule, register  # noqa: F401

#: Cycle signatures (sorted "::"-joined lock names) reviewed as safe.
ALLOWLIST: dict[str, str] = {}


@register
class LockOrderCycle(Rule):
    rule_id = "RL012"
    title = "lock-order cycle (potential deadlock)"
    project_wide = True

    def check_project(self, project) -> Iterable[Finding]:
        analysis = project.analysis()
        for cycle in analysis.lock_cycles():
            key = "::".join(sorted({edge.outer for edge in cycle}))
            if key in ALLOWLIST:
                continue
            first = cycle[0]
            info = project.functions.get(first.via)
            if info is None:
                continue
            order = " -> ".join(
                [edge.outer for edge in cycle] + [cycle[0].outer]
            )
            where = "; ".join(
                f"{edge.inner} while holding {edge.outer} "
                f"({edge.path}:{edge.line}"
                + ("" if edge.direct else f", via call in {edge.via.rsplit('.', 1)[-1]}")
                + ")"
                for edge in cycle
            )
            if len({edge.outer for edge in cycle}) == 1:
                message = (
                    f"non-reentrant lock {first.outer} can be re-acquired "
                    f"while already held ({where}); a plain threading.Lock "
                    "self-deadlocks on the same thread — use an RLock or "
                    "restructure so the inner path never re-enters"
                )
            else:
                message = (
                    f"lock-order cycle {order}: {where}; two threads "
                    "entering this cycle from different points can block "
                    "each other forever — pick one global acquisition "
                    "order and release the outer lock before crossing it"
                )
            # Anchor at the outermost acquisition but keep the enclosing
            # function's symbol so the baseline key survives line drift.
            yield Finding(
                rule=self.rule_id,
                path=first.path,
                line=first.line,
                col=0,
                symbol=info.symbol,
                message=message,
            )
