"""RL010 — non-picklable callables submitted to the process pool.

The process backend (:mod:`repro.engine.procpool`) ships each task to a
worker *by reference*: ``pickle`` serialises a module-level function as
its dotted name, and the worker imports it.  Anything else breaks the
contract — and not always loudly:

* a **lambda** or **nested function** fails to pickle at submit time
  (``PicklingError``), but only on the process path, so the bug hides
  until someone first runs ``--executor process``;
* a **bound method** pickles its ``self`` — dragging a whole technique,
  session, or table object through the task queue, which defeats the
  shared-memory arena (megabytes re-serialised per task) and couples
  the worker to parent state it must not share.

Pool tasks must be *module-level functions over small descriptor
payloads* (handles from the column arena, plain queries, scalars).  This
rule makes that structural: the function argument of every
``process_map(...)`` / ``process_map_row_chunks(...)`` call — and of
``submit(...)`` calls in the process-pool module itself — must resolve
to a module-level ``def`` (or an imported name, which is module-level in
its defining module).  Lambdas, attribute references (bound methods),
and names only defined in a nested scope are flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import FileContext, Finding, Rule, register

#: The process-pool module: its ``submit`` calls are also in scope.
PROC_POOL_MODULE = "repro/engine/procpool.py"

#: Calls whose first positional argument runs in a worker process.
PROCESS_SUBMIT_CALLS = frozenset({"process_map", "process_map_row_chunks"})


def _module_level_callables(tree: ast.Module) -> set[str]:
    """Names bound at module scope that pickle by reference: ``def``s,
    classes, and imported names (module-level in their home module)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _submit_calls(
    calls: Iterable[ast.AST], include_pool_submit: bool
) -> Iterable[tuple[ast.Call, ast.AST]]:
    """Every process-pool submission call with its function argument."""
    for node in calls:
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        call_name = (
            func.attr if isinstance(func, ast.Attribute) else
            func.id if isinstance(func, ast.Name) else None
        )
        if call_name in PROCESS_SUBMIT_CALLS:
            yield node, node.args[0]
        elif include_pool_submit and call_name == "submit":
            yield node, node.args[0]


@register
class NonPicklableProcessTask(Rule):
    rule_id = "RL010"
    title = "non-picklable callable submitted to the process pool"

    def applies_to(self, ctx: FileContext) -> bool:
        # Process-pool submissions can come from anywhere in the
        # package; scanning every file keeps a future call site honest.
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        module_names = _module_level_callables(ctx.tree)
        include_pool_submit = ctx.path == PROC_POOL_MODULE
        for call, submitted in _submit_calls(
            ctx.nodes(ast.Call), include_pool_submit
        ):
            if isinstance(submitted, ast.Lambda):
                yield self.finding(
                    ctx,
                    call,
                    "submits a lambda to the process pool; lambdas cannot "
                    "pickle — define a module-level function taking a "
                    "descriptor payload instead",
                )
            elif isinstance(submitted, ast.Attribute):
                yield self.finding(
                    ctx,
                    call,
                    f"submits attribute {submitted.attr!r} (a bound method "
                    "or object attribute) to the process pool; the pickled "
                    "task would drag its object through the task queue — "
                    "submit a module-level function over arena handles "
                    "instead",
                )
            elif isinstance(submitted, ast.Name):
                if submitted.id not in module_names:
                    yield self.finding(
                        ctx,
                        call,
                        f"submits {submitted.id!r}, which is not a "
                        "module-level function of this module; nested "
                        "functions and closures cannot pickle — hoist the "
                        "task to module scope with descriptor-only "
                        "arguments",
                    )
            else:
                yield self.finding(
                    ctx,
                    call,
                    "submits a computed expression to the process pool; "
                    "tasks must be module-level functions so they pickle "
                    "by reference",
                )
