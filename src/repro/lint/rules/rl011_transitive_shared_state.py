"""RL011 — transitive shared-state mutation reachable from pool tasks.

RL007 checks the functions a module *directly* submits to the pool.
But the purity contract is about everything a pool task can *reach*: a
submitted chunk worker that calls a helper which calls another helper
that appends to a shared catalog list breaks determinism exactly the
same way, three frames deeper than RL007 can see.

This rule closes that gap with the call graph: the dataflow pass marks
every function reachable (via ``call`` edges) from any pool-submission
edge as "runs in worker context", and this rule scans *those* bodies
for the same shared-state mutations RL007 monitors.  Functions RL007
already covers — the directly submitted ones and everything in the
pool modules themselves — are skipped, so each mutation is reported by
exactly one rule.  Each finding names the submission chain that makes
the function worker-reachable, because "why is this a pool task?" is
the first question the report has to answer.

Mutations lexically inside a ``with <lock>:`` region are exempt, same
as RL007 — but note the thread/process asymmetry the message encodes:
under the *process* backend a lock does not even help, the mutation is
simply lost in the forked child (the parent never sees it), which is
its own silent-wrong-answer bug.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.callgraph import is_server_handler
from repro.lint.core import Finding, Rule, register
from repro.lint.rules.rl007_shared_state import (
    POOL_MODULES,
    _is_lock_context,
    _mutating_call_target,
    _shared_target,
    _store_targets,
    _submitted_functions,
)

#: ``path::symbol`` entries reviewed as safe; reasons are mandatory.
ALLOWLIST: dict[str, str] = {
    # Builds a brand-new Column and fills .data/.dictionary before any
    # other code can see the object; same publication argument as the
    # __init__ exemption (and as RL008's entry for this function).
    "repro/engine/column.py::column_from_parts": (
        "mutates only the Column it just constructed, pre-publication"
    ),
    # The serving append path (the only server-thread chain that reaches
    # these) holds AQPServer's writer-preferring RW lock exclusively:
    # _handle_append wraps session.append_rows in write_locked(), so no
    # handler-thread query (they take the read side) and no concurrent
    # append can interleave with these catalog/sample mutations.  Real
    # pool scatters never reach them — appends are serial-head work.
    "repro/engine/database.py::Database.append_rows": (
        "server-thread reachability only; serialized behind the "
        "serving layer's exclusive write lock (AQPServer._rw)"
    ),
    "repro/core/smallgroup.py::SmallGroupSampling.insert_rows": (
        "server-thread reachability only; serialized behind the "
        "serving layer's exclusive write lock (AQPServer._rw)"
    ),
    "repro/core/smallgroup.py::SmallGroupSampling._extend_reduced_dimensions": (
        "server-thread reachability only; serialized behind the "
        "serving layer's exclusive write lock (AQPServer._rw)"
    ),
}


@register
class TransitiveSharedStateMutation(Rule):
    rule_id = "RL011"
    title = "transitive shared-state mutation reachable from pool task"
    project_wide = True

    def check_project(self, project) -> Iterable[Finding]:
        analysis = project.analysis()
        for qualname in sorted(analysis.worker_context):
            info = project.functions.get(qualname)
            if info is None or isinstance(info.node, ast.Lambda):
                continue
            if info.path in POOL_MODULES:
                continue  # RL007 scans every function there already
            if info.name == "__init__":
                # Construction precedes publication: stores to the object
                # being built cannot race (the argument RL007/RL008 make).
                continue
            direct_names, _ = _submitted_functions(info.ctx.nodes(ast.Call))
            if info.name in direct_names:
                continue  # RL007 covers directly submitted functions
            if is_server_handler(info.path, info.name):
                continue  # RL007 scans serving entry points as roots
            if f"{info.path}::{info.symbol}" in ALLOWLIST:
                continue
            backends = analysis.worker_context[qualname]
            yield from self._scan(info, analysis, sorted(backends))

    def _scan(self, info, analysis, backends) -> Iterable[Finding]:
        chain = self._chain_text(info, analysis, backends)
        found: list[tuple[ast.AST, str]] = []

        def scan(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                _is_lock_context(item) for item in node.items
            ):
                locked = True
            target: str | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for stored in _store_targets(node):
                    target = target or _shared_target(stored)
            elif isinstance(node, ast.Call):
                target = _mutating_call_target(node)
            if target is not None and not locked:
                found.append((node, target))
            for child in ast.iter_child_nodes(node):
                if not isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    scan(child, locked)

        for child in ast.iter_child_nodes(info.node):
            scan(child, False)

        seen: set[tuple[int, int]] = set()
        for node, target in found:
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                info.ctx,
                node,
                f"mutates shared state {target!r} in a function reachable "
                f"from a pool submission ({chain}); on the thread backend "
                "this races, on the process backend the write is silently "
                "lost in the fork — hoist the mutation to the serial "
                "head/tail around the scatter",
            )

    @staticmethod
    def _chain_text(info, analysis, backends) -> str:
        backend = backends[0]
        chain = analysis.submit_chain(info.qualname, backend)
        if not chain:
            return f"{backend} backend"
        root = chain[0]
        hops = " -> ".join(
            edge.dst.rsplit(".", 1)[-1] for edge in chain
        )
        return (
            f"{backend} submit at {root.path}:{root.line}, via {hops}"
        )
