"""Rule modules of :mod:`repro.lint`.

Importing this package registers every rule with the core registry (the
``@register`` decorator runs at import time).  To add a rule: create
``rlNNN_<slug>.py`` following the existing modules, decorate the class
with ``@register``, import it here, and add fixtures to
``tests/test_lint_rules.py`` — one snippet proving it fires and one
proving it does not over-fire.  See ``docs/linting.md``.
"""

from repro.lint.rules import (  # noqa: F401
    rl001_invalidation,
    rl002_scale,
    rl003_nondeterminism,
    rl004_cache_keys,
    rl005_asserts,
    rl006_io_purity,
    rl007_shared_state,
    rl008_zonemap,
    rl009_obs,
    rl010_picklable_tasks,
    rl011_transitive_shared_state,
    rl012_lock_order,
    rl013_invalidation_coverage,
    rl014_payload_picklability,
)
