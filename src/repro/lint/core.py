"""Core machinery of the :mod:`repro.lint` static invariant checker.

The generic linters (flake8, pylint) cannot express the engine's
domain contracts — "every mutation of cached state must invalidate",
"rewrite pieces must carry the right scale factor" — because those are
facts about *this* system's semantics, not about Python.  This module
provides the pieces the domain rules are built from:

* :class:`Finding` — one rule violation at a source location;
* :class:`FileContext` — a parsed module plus the helpers rules need
  (enclosing-symbol lookup, import-alias resolution);
* :class:`Rule` — the base class, registered via :func:`register`;
* :func:`lint_paths` / :func:`lint_source` — the runners.

Everything here is dependency-free stdlib (``ast``), so the checker can
run in a bare CI interpreter before the heavyweight test job.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

#: Pseudo-rule id used for files the checker cannot parse.
PARSE_ERROR = "RL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is the package-relative posix path (``repro/engine/...``) so
    findings — and the baseline entries that reference them — are stable
    across checkouts.  ``symbol`` is the dotted name of the enclosing
    class/function (``"<module>"`` at module scope); baselines match on
    ``(rule, path, symbol)`` so they survive line drift.
    """

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str

    def key(self) -> tuple[str, str, str]:
        """The baseline-matching key: line-independent identity."""
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``--format json`` row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format(self) -> str:
        """One-line human rendering for ``--format text``."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.symbol}] {self.message}"
        )


def module_path(path: Path | str) -> str:
    """Normalise a filesystem path to the package-relative form.

    ``src/repro/engine/table.py`` → ``repro/engine/table.py``.  Paths
    that do not contain a ``repro`` component are returned as-is (posix),
    which keeps the checker usable on fixture files in tests.
    """
    posix = Path(path).as_posix()
    parts = posix.split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return posix


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted origins.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import time`` → ``{"time": "time.time"}``.  Used to
    resolve call targets to canonical names regardless of import style.
    """
    return aliases_from_imports(ast.walk(tree))


def aliases_from_imports(nodes: Iterable[ast.AST]) -> dict[str, str]:
    """:func:`import_aliases` over a pre-collected node sequence."""
    aliases: dict[str, str] = {}
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def canonical_call_name(
    node: ast.AST, aliases: dict[str, str]
) -> str | None:
    """Canonical dotted name of a call target, alias-resolved.

    With ``import numpy as np``, the call ``np.random.default_rng()``
    resolves to ``"numpy.random.default_rng"``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    root = aliases.get(head, head)
    return f"{root}.{rest}" if rest else root


class FileContext:
    """A parsed module plus the lookups rules share.

    The context is built **once** per file per lint run and shared by
    every rule (and by the whole-program passes in
    :mod:`repro.lint.project` / :mod:`repro.lint.callgraph`): one AST
    walk populates the symbol map and a node-type index, and rules
    iterate :meth:`nodes` instead of re-walking the tree themselves.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self._symbols: dict[ast.AST, str] | None = None
        self._by_type: dict[type, list[ast.AST]] | None = None
        self._aliases: dict[str, str] | None = None

    def _build_index(self) -> None:
        """One pre-order walk filling the symbol map and type index."""
        symbols: dict[ast.AST, str] = {}
        by_type: dict[type, list[ast.AST]] = {}

        def walk(current: ast.AST, stack: tuple[str, ...]) -> None:
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                stack = stack + (current.name,)
            symbols[current] = ".".join(stack) or "<module>"
            by_type.setdefault(type(current), []).append(current)
            for child in ast.iter_child_nodes(current):
                walk(child, stack)

        walk(self.tree, ())
        self._symbols = symbols
        self._by_type = by_type

    @property
    def aliases(self) -> dict[str, str]:
        """Import-alias map, computed once per file."""
        if self._aliases is None:
            self._aliases = aliases_from_imports(
                self.nodes(ast.Import, ast.ImportFrom)
            )
        return self._aliases

    def nodes(self, *types: type) -> list[ast.AST]:
        """Every node of the given exact AST types, in pre-order.

        This is the shared-index replacement for per-rule
        ``ast.walk(ctx.tree)`` loops: the tree is walked once per file
        and each rule filters the index instead of re-traversing.
        """
        if self._by_type is None:
            self._build_index()
        index = self._by_type or {}
        if len(types) == 1:
            return list(index.get(types[0], ()))
        merged: list[ast.AST] = []
        for node_type in types:
            merged.extend(index.get(node_type, ()))
        merged.sort(
            key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0))
        )
        return merged

    def symbol_for(self, node: ast.AST) -> str:
        """Dotted name of the class/function enclosing ``node``."""
        if self._symbols is None:
            self._build_index()
        return (self._symbols or {}).get(node, "<module>")


class Rule:
    """Base class for a domain lint rule.

    Subclasses set :attr:`rule_id`/:attr:`title`, restrict their scope by
    overriding :meth:`applies_to`, and yield findings from :meth:`check`.
    Register with the :func:`register` decorator so :func:`all_rules`
    (and therefore the CLI) picks them up.

    Per-file rules implement :meth:`check` and run once per module.
    Whole-program rules set :attr:`project_wide` and implement
    :meth:`check_project` instead: they receive the shared
    :class:`~repro.lint.project.ProjectIndex` (one parse of the whole
    tree, plus the call graph and dataflow passes built on it) and run
    once per lint invocation.
    """

    rule_id: str = ""
    title: str = ""
    #: Whole-program rules run once over the project index, not per file.
    project_wide: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx.path`` (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield the rule's findings for one parsed module."""
        raise NotImplementedError

    def check_project(self, project) -> Iterable[Finding]:
        """Yield whole-program findings (``project_wide`` rules only)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Construct a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            symbol=ctx.symbol_for(node),
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(only: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules, optionally restricted to ids.

    Importing :mod:`repro.lint.rules` here (not at module top) avoids a
    circular import: the rule modules themselves import this module.
    """
    import repro.lint.rules  # noqa: F401  (registration side effect)

    ids = sorted(_REGISTRY) if only is None else list(only)
    unknown = [i for i in ids if i not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule ids {unknown}; have {sorted(_REGISTRY)}")
    return [_REGISTRY[i]() for i in ids]


def parse_context(source: str, path: str) -> FileContext | Finding:
    """Parse one source string into a :class:`FileContext`.

    Returns a :data:`PARSE_ERROR` finding instead of raising when the
    file does not parse, so one broken file never aborts a lint run.
    """
    normalized = module_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            rule=PARSE_ERROR,
            path=normalized,
            line=exc.lineno or 0,
            col=exc.offset or 0,
            symbol="<module>",
            message=f"file does not parse: {exc.msg}",
        )
    return FileContext(normalized, source, tree)


def _run_rules(
    contexts: Sequence[FileContext],
    rules: Sequence[Rule],
    project=None,
) -> list[Finding]:
    """Run per-file and project-wide rules over pre-parsed contexts.

    ``project`` lets a caller that already built the
    :class:`~repro.lint.project.ProjectIndex` (the ``--graph-report``
    path) share it instead of indexing the tree twice.
    """
    findings: list[Finding] = []
    file_rules = [r for r in rules if not r.project_wide]
    project_rules = [r for r in rules if r.project_wide]
    for ctx in contexts:
        for rule in file_rules:
            if rule.applies_to(ctx):
                findings.extend(rule.check(ctx))
    if project_rules:
        if project is None:
            from repro.lint.project import ProjectIndex

            project = ProjectIndex(contexts)
        for rule in project_rules:
            findings.extend(rule.check_project(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str, path: str, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Run rules over one source string (the unit tests' entry point).

    Project-wide rules see a one-file project, which is exactly what
    fixture snippets want.
    """
    if rules is None:
        rules = all_rules()
    parsed = parse_context(source, path)
    if isinstance(parsed, Finding):
        return [parsed]
    return _run_rules([parsed], rules)


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def parse_paths(
    paths: Sequence[Path | str],
) -> tuple[list[FileContext], list[Finding], int]:
    """Parse every ``.py`` file under ``paths`` exactly once.

    Returns the parsed contexts, any :data:`PARSE_ERROR` findings, and
    the number of files seen.  This is the single-parse front end shared
    by :func:`lint_paths` and the ``--graph-report`` machinery.
    """
    contexts: list[FileContext] = []
    errors: list[Finding] = []
    files = iter_python_files(paths)
    for file in files:
        parsed = parse_context(file.read_text(encoding="utf-8"), str(file))
        if isinstance(parsed, Finding):
            errors.append(parsed)
        else:
            contexts.append(parsed)
    return contexts, errors, len(files)


def lint_paths(
    paths: Sequence[Path | str], rules: Sequence[Rule] | None = None
) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under ``paths``.

    Every file is parsed once and every rule runs over the shared
    per-file indexes (plus, for project-wide rules, the shared
    :class:`~repro.lint.project.ProjectIndex`).  Returns the sorted
    findings and the number of files checked.
    """
    if rules is None:
        rules = all_rules()
    contexts, findings, n_files = parse_paths(paths)
    findings = findings + _run_rules(contexts, rules)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, n_files
