"""repro.lint — AST-based checker for the engine's domain invariants.

Fourteen rules encode the correctness contracts the generic linters
cannot see (see ``docs/linting.md`` for the full rationale):

* **RL001** mutation without cache/plan invalidation;
* **RL002** rewrite-piece scale discipline (the §4.2.2 invariant);
* **RL003** wall clocks / fresh entropy in deterministic layers;
* **RL004** computed expressions as identity-cache anchors;
* **RL005** bare ``assert`` guards (stripped under ``python -O``);
* **RL006** ``print`` outside the presentation layer;
* **RL007** shared-state mutation in pool-submitted code;
* **RL008** in-place mutation of zone-map-summarised storage;
* **RL009** observability reads in compute layers;
* **RL010** non-picklable callables submitted to the process pool;
* **RL011** transitive shared-state mutation reachable from pool tasks
  (whole-program, call-graph based);
* **RL012** lock-order cycles / potential deadlocks (whole-program);
* **RL013** interprocedural invalidation coverage (RL001 upgraded);
* **RL014** non-picklable values in process-pool payloads (RL010
  upgraded).

RL011–RL014 run over a shared single-parse project index
(:mod:`repro.lint.project`), a conservative call graph with
pool-submission edges (:mod:`repro.lint.callgraph`), and
interprocedural dataflow passes (:mod:`repro.lint.dataflow`).

Run ``python -m repro.lint src [--format json|text] [--baseline
lint_baseline.json] [--graph-report out.json]``; CI gates on the JSON
output and uploads the graph report.
"""

from repro.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    baseline_payload,
    load_baseline,
)
from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.cli import main
from repro.lint.core import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    parse_paths,
    register,
)
from repro.lint.dataflow import ProjectAnalysis
from repro.lint.project import ProjectIndex

__all__ = [
    "BaselineEntry",
    "CallGraph",
    "FileContext",
    "Finding",
    "ProjectAnalysis",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "apply_baseline",
    "baseline_payload",
    "build_call_graph",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "parse_paths",
    "register",
]
