"""repro.lint — AST-based checker for the engine's domain invariants.

Six rules encode the correctness contracts the generic linters cannot
see (see ``docs/linting.md`` for the full rationale):

* **RL001** mutation without cache/plan invalidation;
* **RL002** rewrite-piece scale discipline (the §4.2.2 invariant);
* **RL003** wall clocks / fresh entropy in deterministic layers;
* **RL004** computed expressions as identity-cache anchors;
* **RL005** bare ``assert`` guards (stripped under ``python -O``);
* **RL006** ``print`` outside the presentation layer.

Run ``python -m repro.lint src [--format json|text] [--baseline
lint_baseline.json]``; CI gates on the JSON output.
"""

from repro.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    baseline_payload,
    load_baseline,
)
from repro.lint.cli import main
from repro.lint.core import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)

__all__ = [
    "BaselineEntry",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "apply_baseline",
    "baseline_payload",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "register",
]
