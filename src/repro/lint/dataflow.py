"""Interprocedural passes over the project call graph.

Layer three of the whole-program analyzer.  Everything here is a
whole-program *property map* computed once per lint run and shared by
the graph-aware rules (RL011–RL014):

worker-context reachability
    A function "runs in worker context" if any pool-submission edge
    reaches it — directly (``parallel_map(f, ...)``) or transitively
    (the submitted task calls it).  Computed per backend, so rules can
    distinguish thread workers (shared address space: mutations race)
    from process workers (forked copies: mutations are silently lost
    and payloads must pickle).

lock-held regions and the lock-order graph
    Each ``with <lock>:`` statement opens a held region.  Locks get
    stable identities — ``ClassName._lock`` for instance locks,
    ``module._NAME`` for module-level locks — and kinds (``Lock`` /
    ``RLock``) recovered from their construction sites.  An edge
    ``A → B`` is recorded when ``B`` is acquired while ``A`` is held,
    including acquisitions buried arbitrarily deep in calls made inside
    the region.  Cycles in this graph (other than re-entrant RLock
    self-loops) are potential deadlocks: two threads entering the cycle
    from different points can block each other forever.

invalidation reachability
    ``invalidates(f)`` — f transitively reaches an invalidation call
    (``bump_plan_version``, ``invalidate_object`` …).  ``covered(f)``
    is the weaker caller-side property used by RL013: every call chain
    that can execute f's mutations passes through an invalidation,
    either below f (f itself invalidates) or above it (every caller is
    covered).  Computed as a greatest fixpoint so mutual recursion
    stays covered only when some chain actually reaches an
    invalidation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph, Edge
from repro.lint.project import FunctionInfo, ProjectIndex

#: Calls that (directly) invalidate derived state.  ``notify_append`` is
#: the incremental counterpart: its AppendEvent listeners extend the
#: derived structures for the appended tail, keeping caches coherent.
INVALIDATING_CALLS: frozenset[str] = frozenset(
    {
        "bump_plan_version",
        "_report",
        "invalidate_object",
        "invalidate_all",
        "release_for",
        "release_all",
        "notify_append",
    }
)


@dataclass(frozen=True)
class LockId:
    """Stable identity for a lock object."""

    name: str  # "ExecutionCache._lock", "repro.engine.parallel._POOL_LOCK"
    kind: str  # "Lock" | "RLock" | "unknown"


@dataclass
class LockOrderEdge:
    """``inner`` acquired while ``outer`` is held."""

    outer: str
    inner: str
    path: str
    line: int
    via: str  # qualname of the function whose region creates the edge
    direct: bool  # False when the inner acquisition is inside a callee


@dataclass
class ProjectAnalysis:
    """Shared dataflow results, computed eagerly at construction."""

    project: ProjectIndex
    graph: CallGraph
    #: qualname -> backends ("thread"/"process"/"unknown") it may run under
    worker_context: dict[str, set[str]] = field(default_factory=dict)
    #: lock name -> LockId (with kind)
    locks: dict[str, LockId] = field(default_factory=dict)
    #: qualname -> lock names directly acquired in its body
    acquires: dict[str, set[str]] = field(default_factory=dict)
    #: qualname -> lock names acquired transitively through calls
    acquires_closure: dict[str, set[str]] = field(default_factory=dict)
    lock_order: list[LockOrderEdge] = field(default_factory=list)
    #: qualnames that transitively reach an invalidation call
    invalidators: set[str] = field(default_factory=set)
    #: qualnames whose every executing chain passes an invalidation
    covered: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._compute_worker_context()
        self._collect_locks()
        self._compute_lock_regions()
        self._compute_invalidation()

    # ------------------------------------------------------------------
    # Worker-context reachability
    # ------------------------------------------------------------------
    def _compute_worker_context(self) -> None:
        pending: list[tuple[str, str]] = []
        for edge in self.graph.submit_edges():
            pending.append((edge.dst, edge.backend or "unknown"))
        while pending:
            qualname, backend = pending.pop()
            seen = self.worker_context.setdefault(qualname, set())
            if backend in seen:
                continue
            seen.add(backend)
            for edge in self.graph.callees(qualname):
                if edge.kind == "call":
                    pending.append((edge.dst, backend))

    def runs_in_worker(self, qualname: str) -> set[str]:
        return self.worker_context.get(qualname, set())

    def submit_chain(self, qualname: str, backend: str) -> list[Edge] | None:
        """A submit-rooted edge chain showing how ``qualname`` is reached."""
        # BFS backwards from qualname to a submit edge of this backend.
        frontier: list[tuple[str, list[Edge]]] = [(qualname, [])]
        visited = {qualname}
        while frontier:
            current, trail = frontier.pop(0)
            for edge in self.graph.callers(current):
                if edge.kind == "submit" and (edge.backend or "unknown") == backend:
                    return [edge, *trail]
                if edge.kind == "call" and edge.src not in visited:
                    visited.add(edge.src)
                    frontier.append((edge.src, [edge, *trail]))
        return None

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------
    def _collect_locks(self) -> None:
        """Find lock constructions: ``self._x = RLock()`` / ``_X = Lock()``."""
        for cls in self.project.classes.values():
            for node in ast.walk(cls.node):
                if isinstance(node, ast.Assign):
                    kind = _lock_kind(node.value)
                    if kind is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            name = f"{cls.name}.{target.attr}"
                            self.locks[name] = LockId(name, kind)
                elif isinstance(node, ast.AnnAssign):
                    # Dataclass-style field:
                    #   _lock: threading.Lock = field(default_factory=...)
                    kind = _annotation_lock_kind(node)
                    if kind is None:
                        continue
                    target = node.target
                    if isinstance(target, ast.Name):
                        name = f"{cls.name}.{target.id}"
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        name = f"{cls.name}.{target.attr}"
                    else:
                        continue
                    self.locks[name] = LockId(name, kind)
        for module, ctx in self.project.modules.items():
            for node in ctx.nodes(ast.Assign):
                if ctx.symbol_for(node) != "<module>":
                    continue
                kind = _lock_kind(node.value)
                if kind is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        name = f"{module}.{target.id}"
                        self.locks[name] = LockId(name, kind)

    def lock_kind(self, name: str) -> str:
        info = self.locks.get(name)
        return info.kind if info is not None else "unknown"

    def _lock_name(self, expr: ast.AST, info: FunctionInfo) -> str | None:
        """Stable lock identity for a ``with <expr>:`` context item."""
        # self._lock → ClassName._lock
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and info.class_qualname is not None
        ):
            cls_name = info.class_qualname.rsplit(".", 1)[-1]
            name = f"{cls_name}.{expr.attr}"
            if name in self.locks or "lock" in expr.attr.lower():
                return name
            return None
        # Bare module-level name: _POOL_LOCK → module._POOL_LOCK
        if isinstance(expr, ast.Name):
            candidate = f"{info.module}.{expr.id}"
            if candidate in self.locks:
                return candidate
            resolved = self.project.resolve_local(info.module, expr.id)
            if resolved is not None and resolved in self.locks:
                return resolved
            if "lock" in expr.id.lower():
                return candidate
            return None
        # other.attr style: typed receivers only
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if "lock" not in expr.attr.lower():
                return None
            types = _receiver_types(self.project, info)
            cls = types.get(expr.value.id)
            if cls is not None:
                return f"{cls.rsplit('.', 1)[-1]}.{expr.attr}"
            return None
        return None

    def _compute_lock_regions(self) -> None:
        # Pass 1: direct acquisitions per function.
        regions: dict[str, list[tuple[str, ast.With, int]]] = {}
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            if isinstance(info.node, ast.Lambda):
                continue
            direct: set[str] = set()
            fn_regions: list[tuple[str, ast.With, int]] = []
            for node in ast.walk(info.node):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    name = self._lock_name(item.context_expr, info)
                    if name is None:
                        continue
                    self.locks.setdefault(name, LockId(name, "unknown"))
                    direct.add(name)
                    fn_regions.append((name, node, node.lineno))
            self.acquires[qualname] = direct
            regions[qualname] = fn_regions

        # Pass 2: transitive closure over call edges (fixpoint).  Only
        # confident edges participate: a fallback edge from an untyped
        # receiver to a coincidentally same-named method would smuggle
        # phantom lock acquisitions into the region and fabricate
        # cycles RL012 then reports.
        closure = {qualname: set(locks) for qualname, locks in self.acquires.items()}
        changed = True
        while changed:
            changed = False
            for qualname in closure:
                for edge in self.graph.callees(qualname):
                    if edge.kind != "call" or edge.fallback:
                        continue
                    callee_locks = closure.get(edge.dst)
                    if callee_locks and not callee_locks <= closure[qualname]:
                        closure[qualname] |= callee_locks
                        changed = True
        self.acquires_closure = closure

        # Pass 3: held-region edges.
        for qualname in sorted(regions):
            info = self.project.functions[qualname]
            for outer, with_node, line in regions[qualname]:
                for node in ast.walk(with_node):
                    if node is with_node:
                        continue
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            inner = self._lock_name(item.context_expr, info)
                            if inner is not None:
                                self.lock_order.append(
                                    LockOrderEdge(
                                        outer,
                                        inner,
                                        info.path,
                                        node.lineno,
                                        qualname,
                                        direct=True,
                                    )
                                )
                    elif isinstance(node, ast.Call):
                        for target in self._call_targets(qualname, node):
                            for inner in sorted(closure.get(target, ())):
                                self.lock_order.append(
                                    LockOrderEdge(
                                        outer,
                                        inner,
                                        info.path,
                                        getattr(node, "lineno", line),
                                        qualname,
                                        direct=False,
                                    )
                                )

    def _call_targets(self, src: str, call: ast.Call) -> list[str]:
        line = getattr(call, "lineno", None)
        return sorted(
            {
                edge.dst
                for edge in self.graph.callees(src)
                if edge.kind == "call" and edge.line == line and not edge.fallback
            }
        )

    def lock_cycles(self) -> list[list[LockOrderEdge]]:
        """Cycles in the lock-order graph, re-entrant self-loops exempt."""
        adjacency: dict[str, dict[str, LockOrderEdge]] = {}
        for edge in self.lock_order:
            if edge.outer == edge.inner:
                if self.lock_kind(edge.outer) == "RLock":
                    continue  # re-entrant: same thread re-acquiring is fine
                adjacency.setdefault(edge.outer, {}).setdefault(edge.inner, edge)
                continue
            adjacency.setdefault(edge.outer, {}).setdefault(edge.inner, edge)

        cycles: list[list[LockOrderEdge]] = []
        seen_keys: set[tuple[str, ...]] = set()
        for start in sorted(adjacency):
            # DFS for a path back to `start`.
            stack: list[tuple[str, list[LockOrderEdge]]] = [(start, [])]
            visited: set[str] = set()
            while stack:
                current, trail = stack.pop()
                for nxt, edge in sorted(adjacency.get(current, {}).items()):
                    if nxt == start:
                        cycle = [*trail, edge]
                        key = tuple(sorted(e.outer for e in cycle))
                        if key not in seen_keys:
                            seen_keys.add(key)
                            cycles.append(cycle)
                    elif nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, [*trail, edge]))
        return cycles

    # ------------------------------------------------------------------
    # Invalidation reachability
    # ------------------------------------------------------------------
    def _compute_invalidation(self) -> None:
        # Direct invalidators: functions whose body names an invalidating
        # call.  Same matching as RL001: the named entry points plus any
        # ``invalidate*`` method (``invalidate_table``, ``invalidate_plans``,
        # future additions).
        direct: set[str] = set()
        for qualname in self.project.functions:
            info = self.project.functions[qualname]
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    bare = _bare(node.func)
                    if bare is not None and (
                        bare in INVALIDATING_CALLS
                        or bare.startswith("invalidate")
                    ):
                        direct.add(qualname)
                        break

        # Least fixpoint: f invalidates if it calls an invalidator.
        self.invalidators = set(direct)
        changed = True
        while changed:
            changed = False
            for qualname in self.project.functions:
                if qualname in self.invalidators:
                    continue
                for edge in self.graph.callees(qualname):
                    if edge.kind == "call" and edge.dst in self.invalidators:
                        self.invalidators.add(qualname)
                        changed = True
                        break

        # Greatest fixpoint for caller-side coverage:
        #   covered(f) = invalidates(f)
        #             or (f has callers and every caller is covered)
        # Start optimistic (everything covered) and strike out functions
        # until stable, so cycles with no invalidating entry point fall out.
        covered = set(self.project.functions)
        changed = True
        while changed:
            changed = False
            for qualname in self.project.functions:
                if qualname not in covered or qualname in self.invalidators:
                    continue
                callers = [
                    e for e in self.graph.callers(qualname) if e.kind == "call"
                ]
                if not callers or any(e.src not in covered for e in callers):
                    covered.discard(qualname)
                    changed = True
        self.covered = covered


def _lock_kind(value: ast.AST) -> str | None:
    """``threading.RLock()`` → "RLock"; ``Lock()`` → "Lock"; else None."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in {"Lock", "RLock"}:
        return name
    return None


def _annotation_lock_kind(node: ast.AnnAssign) -> str | None:
    """Lock kind of an annotated (dataclass-field) construction site.

    Prefers the ``field(default_factory=threading.RLock)`` factory over
    the annotation: the factory is what actually runs.
    """
    if isinstance(node.value, ast.Call):
        direct = _lock_kind(node.value)
        if direct is not None:
            return direct
        for kw in node.value.keywords:
            if kw.arg == "default_factory":
                name = _bare(kw.value)
                if name in {"Lock", "RLock"}:
                    return name
    ann_name = _bare(node.annotation)
    if ann_name in {"Lock", "RLock"}:
        return ann_name
    return None


def _receiver_types(project: ProjectIndex, info: FunctionInfo) -> dict[str, str]:
    """Minimal local var typing for lock receivers (mirrors callgraph)."""
    from repro.lint.callgraph import _local_types

    return _local_types(project, info)


def _bare(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


__all__ = [
    "INVALIDATING_CALLS",
    "LockId",
    "LockOrderEdge",
    "ProjectAnalysis",
]
