"""Command line interface: ``python -m repro.lint src``.

Exit codes: 0 when every finding is baselined (or there are none),
1 when fresh findings exist, 2 on usage errors.  ``--format json``
emits one machine-readable document for the CI gate; ``--graph-report``
additionally writes the whole-program analysis (call graph, lock-order
graph) as a JSON artifact plus two Graphviz dot files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import (
    apply_baseline,
    baseline_payload,
    load_baseline,
)
from repro.lint.core import _run_rules, all_rules, parse_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based checker for the engine's domain invariants "
            "(RL001-RL014, including the whole-program concurrency/"
            "invalidation rules RL011-RL014); see docs/linting.md"
        ),
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to check"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON file of reviewed accepted findings",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "write current findings as a deterministic baseline (sorted "
            "entries, stable key order; reasons from --baseline carry "
            "over, new entries get TODO placeholders, stale entries are "
            "pruned with a warning) and exit 0"
        ),
    )
    parser.add_argument(
        "--graph-report",
        metavar="FILE",
        help=(
            "write the whole-program analysis report (call graph, "
            "pool-submission edges, lock-order graph, cycles) as JSON to "
            "FILE, plus Graphviz exports next to it "
            "(FILE.callgraph.dot, FILE.lockorder.dot)"
        ),
    )
    return parser


def _write_graph_report(target: str, project) -> None:
    from repro.lint.report import callgraph_dot, graph_report, lockorder_dot

    path = Path(target)
    path.write_text(
        json.dumps(graph_report(project), indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    path.with_suffix(path.suffix + ".callgraph.dot").write_text(
        callgraph_dot(project), encoding="utf-8"
    )
    path.with_suffix(path.suffix + ".lockorder.dot").write_text(
        lockorder_dot(project.analysis()), encoding="utf-8"
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rules = all_rules(
            args.rules.split(",") if args.rules else None
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    contexts, findings, n_files = parse_paths(args.paths)

    # One ProjectIndex serves the project-wide rules and the report.
    project = None
    if args.graph_report or any(r.project_wide for r in rules):
        from repro.lint.project import ProjectIndex

        project = ProjectIndex(contexts)

    findings = findings + _run_rules(contexts, rules, project=project)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if args.graph_report and project is not None:
        _write_graph_report(args.graph_report, project)
        print(
            f"wrote graph report to {args.graph_report} "
            "(+ .callgraph.dot, .lockorder.dot)",
            file=sys.stderr,
        )

    entries = []
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        existing = entries
        if not existing and Path(args.write_baseline).exists():
            # Regenerating in place: keep the reviewed reasons.
            try:
                existing = load_baseline(args.write_baseline)
            except (OSError, ValueError, json.JSONDecodeError):
                existing = []
        payload, pruned = baseline_payload(findings, existing)
        Path(args.write_baseline).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        for entry in pruned:
            print(
                f"warning: pruned stale baseline entry {entry.rule} "
                f"{entry.path}::{entry.symbol} (matches no finding)",
                file=sys.stderr,
            )
        print(
            f"wrote {len(payload['entries'])} baseline entries to "
            f"{args.write_baseline}"
            + (f" ({len(pruned)} stale pruned)" if pruned else "")
        )
        return 0

    fresh, accepted, stale = apply_baseline(findings, entries)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in fresh],
                    "baselined": [f.to_dict() for f in accepted],
                    "stale_baseline": [e.to_dict() for e in stale],
                    "summary": {
                        "checked_files": n_files,
                        "rules": [r.rule_id for r in rules],
                        "fresh": len(fresh),
                        "baselined": len(accepted),
                        "stale_baseline": len(stale),
                    },
                    "exit_code": 1 if fresh else 0,
                },
                indent=2,
            )
        )
    else:
        for finding in fresh:
            print(finding.format())
        for finding in accepted:
            print(f"{finding.format()} (baselined)")
        for entry in stale:
            print(
                f"warning: stale baseline entry {entry.rule} "
                f"{entry.path}::{entry.symbol} matches nothing; delete it"
            )
        print(
            f"{n_files} files checked: {len(fresh)} findings, "
            f"{len(accepted)} baselined, {len(stale)} stale baseline "
            "entries"
        )
    return 1 if fresh else 0
