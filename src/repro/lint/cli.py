"""Command line interface: ``python -m repro.lint src``.

Exit codes: 0 when every finding is baselined (or there are none),
1 when fresh findings exist, 2 on usage errors.  ``--format json``
emits one machine-readable document for the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import (
    apply_baseline,
    baseline_payload,
    load_baseline,
)
from repro.lint.core import all_rules, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based checker for the engine's domain invariants "
            "(RL001-RL006); see docs/linting.md"
        ),
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to check"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON file of reviewed accepted findings",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "write current findings as a baseline skeleton (reasons are "
            "TODO placeholders to be filled in review) and exit 0"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rules = all_rules(
            args.rules.split(",") if args.rules else None
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    findings, n_files = lint_paths(args.paths, rules)

    if args.write_baseline:
        payload = baseline_payload(findings)
        Path(args.write_baseline).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"wrote {len(payload['entries'])} baseline entries to "
            f"{args.write_baseline}"
        )
        return 0

    entries = []
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
    fresh, accepted, stale = apply_baseline(findings, entries)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in fresh],
                    "baselined": [f.to_dict() for f in accepted],
                    "stale_baseline": [e.to_dict() for e in stale],
                    "summary": {
                        "checked_files": n_files,
                        "rules": [r.rule_id for r in rules],
                        "fresh": len(fresh),
                        "baselined": len(accepted),
                        "stale_baseline": len(stale),
                    },
                    "exit_code": 1 if fresh else 0,
                },
                indent=2,
            )
        )
    else:
        for finding in fresh:
            print(finding.format())
        for finding in accepted:
            print(f"{finding.format()} (baselined)")
        for entry in stale:
            print(
                f"warning: stale baseline entry {entry.rule} "
                f"{entry.path}::{entry.symbol} matches nothing; delete it"
            )
        print(
            f"{n_files} files checked: {len(fresh)} findings, "
            f"{len(accepted)} baselined, {len(stale)} stale baseline "
            "entries"
        )
    return 1 if fresh else 0
