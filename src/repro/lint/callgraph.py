"""Conservative call graph with pool-submission edges.

Layer two of the whole-program analyzer (see :mod:`repro.lint.project`).
The graph has one node per :class:`~repro.lint.project.FunctionInfo`
qualname plus synthetic ``<module>`` nodes, and two edge kinds:

``call``
    ``f`` may invoke ``g`` directly.  Resolution is *conservative but
    precise where it matters*: names resolve through the per-module
    import table, ``self.method(...)`` through the class method table
    (inheritance included), and receiver variables through lightweight
    local type inference (parameter annotations, ``x = Class()``
    constructor stores, and known singleton factories such as
    ``get_cache()``).  The by-name fallback — linking a bare method
    call to every same-named function in the project — is suppressed
    for names that collide with builtin container/str methods
    (``get``, ``update``, ``append``, ...), where it would drown the
    graph in false edges; the type-inference paths above keep the
    interesting receivers (cache, arena, registry) resolved anyway.

``submit``
    ``f`` hands ``g`` to a pool: ``parallel_map(g, ...)``,
    ``map_row_chunks(g, ...)``, ``process_map(g, ...)``,
    ``process_map_row_chunks(g, ...)`` or ``executor.submit(g, ...)``.
    Each submit edge carries a backend tag (``thread`` / ``process`` /
    ``unknown``) so dataflow can distinguish "runs in another thread of
    this process" from "runs in a forked worker".

Submission sites where the task argument is not a statically resolvable
function (e.g. a variable) are recorded in
:attr:`CallGraph.unresolved_submits` so rules can stay honest about
coverage instead of silently ignoring them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lint.project import FACTORY_RETURNS, FunctionInfo, ProjectIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: Pool-submission entry points, by bare callable name -> backend.
SUBMIT_BACKENDS: dict[str, str] = {
    "parallel_map": "thread",
    "map_row_chunks": "thread",
    "process_map": "process",
    "process_map_row_chunks": "process",
}

#: The serving package: its request entry points run on HTTP handler
#: threads (``ThreadingHTTPServer`` spawns one per connection), so they
#: are worker context even though no pool scatter is statically visible.
SERVER_PATH_PREFIX = "repro/server/"

#: Backend tag for synthesized handler-thread submit edges.  A distinct
#: tag (not ``"thread"``) keeps reports honest about *which* concurrency
#: source reaches a function.
SERVER_BACKEND = "server-thread"


def is_server_handler(path: str, name: str) -> bool:
    """Whether ``path::name`` is a serving-layer request entry point.

    Covers the HTTP verbs (``do_GET``/``do_POST``), the transport-
    independent dispatcher (``handle``), and the per-op handlers it
    reaches through a bound-method table the call graph cannot resolve
    statically (``_handle_query`` and friends).
    """
    return path.startswith(SERVER_PATH_PREFIX) and (
        name.startswith(("do_", "_handle_")) or name == "handle"
    )

#: Bare method names whose by-name fallback would link to builtin
#: container/str methods all over the tree — resolved only via typed
#: receivers, never by name.
NAME_FALLBACK_BLACKLIST: frozenset[str] = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "discard",
        "extend", "flush", "format", "get", "index", "insert", "items",
        "join", "keys", "pop", "popitem", "read", "readline", "remove",
        "reverse", "set", "sort", "split", "strip", "update", "values",
        "write",
    }
)


@dataclass(frozen=True)
class Edge:
    """One resolved edge of the call graph."""

    src: str  # caller qualname (or "<module>@path")
    dst: str  # callee qualname
    kind: str  # "call" | "submit"
    backend: str | None  # submit edges: "thread" | "process" | "unknown"
    path: str
    line: int
    #: True when the edge came from the low-confidence by-name fallback
    #: (same-named method on an untyped receiver).  High-recall passes
    #: (worker reachability, invalidation coverage) follow these; the
    #: lock-order pass does not, so a coincidental method name cannot
    #: fabricate a deadlock cycle.
    fallback: bool = False


@dataclass
class UnresolvedSubmit:
    """A pool submission whose task argument didn't resolve statically."""

    src: str
    path: str
    line: int
    backend: str
    reason: str


@dataclass
class CallGraph:
    """Adjacency view over the resolved edges."""

    edges: list[Edge] = field(default_factory=list)
    out: dict[str, list[Edge]] = field(default_factory=dict)
    into: dict[str, list[Edge]] = field(default_factory=dict)
    unresolved_submits: list[UnresolvedSubmit] = field(default_factory=list)

    def add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.out.setdefault(edge.src, []).append(edge)
        self.into.setdefault(edge.dst, []).append(edge)

    def callees(self, qualname: str) -> list[Edge]:
        return self.out.get(qualname, [])

    def callers(self, qualname: str) -> list[Edge]:
        return self.into.get(qualname, [])

    def submit_edges(self) -> list[Edge]:
        return [edge for edge in self.edges if edge.kind == "submit"]


def build_call_graph(project: ProjectIndex) -> CallGraph:
    graph = CallGraph()
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        _link_function(project, graph, info)
    # Module-level code also calls things (registrations, singletons).
    for module in sorted(project.modules):
        ctx = project.modules[module]
        src = f"{module}.<module>"
        for node in ctx.nodes(ast.Call):
            if project.function_for_node(ctx, node) is not None:
                continue
            _link_call(project, graph, module, src, ctx.path, node, types={})
    # Serving-layer handler threads: synthesize a submit edge per request
    # entry point (see is_server_handler), so worker-context reachability
    # covers everything a concurrent HTTP handler can execute.
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        if isinstance(info.node, ast.Lambda):
            continue
        if is_server_handler(info.path, info.name):
            graph.add(
                Edge(
                    f"{info.module}.<module>",
                    qualname,
                    "submit",
                    SERVER_BACKEND,
                    info.path,
                    info.node.lineno,
                )
            )
    return graph


def _link_function(
    project: ProjectIndex, graph: CallGraph, info: FunctionInfo
) -> None:
    types = _local_types(project, info)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        _link_call(
            project,
            graph,
            info.module,
            info.qualname,
            info.path,
            node,
            types,
            owner_class=info.class_qualname,
        )


def _link_call(
    project: ProjectIndex,
    graph: CallGraph,
    module: str,
    src: str,
    path: str,
    call: ast.Call,
    types: dict[str, str],
    owner_class: str | None = None,
) -> None:
    bare = _bare_name(call.func)
    line = getattr(call, "lineno", 0)

    # --- submit edges -------------------------------------------------
    backend = _submit_backend(project, module, call, bare)
    if backend is not None:
        _add_submit_edges(project, graph, module, src, path, call, backend, types, owner_class)
        # parallel_map(fn, items) also *calls* the wrapper itself.
    if bare == "submit":
        exec_backend = _executor_backend(call, types)
        if exec_backend is not None:
            _add_submit_edges(
                project, graph, module, src, path, call, exec_backend, types, owner_class
            )
            return

    # --- plain call edges ---------------------------------------------
    for target, is_fallback in _resolve_callable(
        project, module, call.func, types, owner_class
    ):
        graph.add(Edge(src, target, "call", None, path, line, is_fallback))


def _add_submit_edges(
    project: ProjectIndex,
    graph: CallGraph,
    module: str,
    src: str,
    path: str,
    call: ast.Call,
    backend: str,
    types: dict[str, str],
    owner_class: str | None,
) -> None:
    line = getattr(call, "lineno", 0)
    if not call.args:
        graph.unresolved_submits.append(
            UnresolvedSubmit(src, path, line, backend, "no positional task argument")
        )
        return
    task = call.args[0]
    targets = _resolve_callable(project, module, task, types, owner_class)
    if targets:
        for target, is_fallback in targets:
            graph.add(
                Edge(src, target, "submit", backend, path, line, is_fallback)
            )
    else:
        graph.unresolved_submits.append(
            UnresolvedSubmit(
                src,
                path,
                line,
                backend,
                f"task argument {ast.dump(task)[:60]} not statically resolvable",
            )
        )


def _submit_backend(
    project: ProjectIndex, module: str, call: ast.Call, bare: str | None
) -> str | None:
    """Backend tag when ``call`` is a pool scatter helper, else None."""
    if bare is None or bare not in SUBMIT_BACKENDS:
        return None
    # Require the name to resolve into the engine (or be a fixture-local
    # definition of the same name — single-file fixtures keep working).
    dotted = _dotted(call.func)
    if dotted is not None:
        resolved = project.resolve_local(module, dotted)
        if resolved is not None and ".parallel." not in resolved and (
            ".procpool." not in resolved
        ) and resolved not in project.functions:
            return None
    return SUBMIT_BACKENDS[bare]


def _executor_backend(call: ast.Call, types: dict[str, str]) -> str | None:
    """Backend for a raw ``<receiver>.submit(fn, ...)`` call."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
        return None
    receiver = func.value
    inferred = None
    if isinstance(receiver, ast.Name):
        inferred = types.get(receiver.id)
    elif isinstance(receiver, ast.Call):
        bare = _bare_name(receiver.func)
        if bare is not None:
            inferred = FACTORY_RETURNS.get(bare)
    if inferred is not None:
        if "ProcessPool" in inferred:
            return "process"
        if "ThreadPool" in inferred:
            return "thread"
    name_hint = receiver.id.lower() if isinstance(receiver, ast.Name) else ""
    if "proc" in name_hint:
        return "process"
    if "pool" in name_hint or "executor" in name_hint:
        return "thread"
    return "unknown"


def _resolve_callable(
    project: ProjectIndex,
    module: str,
    node: ast.AST,
    types: dict[str, str],
    owner_class: str | None = None,
) -> list[tuple[str, bool]]:
    """``(qualname, via_fallback)`` pairs ``node`` may denote."""
    # Lambda literal: resolve to its synthetic node.
    if isinstance(node, ast.Lambda):
        for qualname, info in project.functions.items():
            if info.node is node:
                return [(qualname, False)]
        return []

    # functools.partial(fn, ...) / partial(fn, ...): unwrap.
    if isinstance(node, ast.Call):
        bare = _bare_name(node.func)
        if bare == "partial" and node.args:
            return _resolve_callable(project, module, node.args[0], types, owner_class)
        return []

    dotted = _dotted(node)
    if dotted is None:
        return []

    # self.method(...) → method table with inheritance + virtual
    # dispatch: the static target plus every subclass override, so a
    # template-method base class (``preprocess`` calling
    # ``self.build_samples``) reaches the concrete implementations.
    if dotted.startswith("self.") and owner_class is not None:
        rest = dotted[len("self."):]
        if "." not in rest:
            return _method_targets(project, owner_class, rest)
        # self.attr.method(...): typed attribute?
        attr, _, method = rest.partition(".")
        cls_info = project.classes.get(owner_class)
        attr_cls = cls_info.attr_types.get(attr) if cls_info else None
        if attr_cls is not None and "." not in method:
            targets = _method_targets(project, attr_cls, method, fallback=False)
            if targets:
                return targets
        return _name_fallback(project, method.split(".")[-1])

    # Straight local/imported name (possibly dotted through a module).
    resolved = project.resolve_local(module, dotted)
    if resolved is not None and resolved in project.functions:
        return [(resolved, False)]
    if resolved is not None and resolved in project.classes:
        # Constructing a class "calls" its __init__ when indexed.
        init = project.class_method(resolved, "__init__")
        return [(init, False)] if init is not None else []

    # receiver.method(...) with a typed receiver variable.
    head, _, rest = dotted.partition(".")
    if rest and head in types and "." not in rest:
        targets = _method_targets(project, types[head], rest, fallback=False)
        if targets:
            return targets

    # Bare-name fallback (blacklisted names stay unresolved).
    bare = dotted.split(".")[-1]
    return _name_fallback(project, bare)


def _method_targets(
    project: ProjectIndex,
    class_qualname: str,
    method: str,
    fallback: bool = True,
) -> list[tuple[str, bool]]:
    """Static target plus subclass overrides; by-name as a last resort
    (only when ``fallback`` allows it)."""
    targets: set[str] = set()
    static = project.class_method(class_qualname, method)
    if static is not None:
        targets.add(static)
    for sub in project.all_subclasses(class_qualname):
        cls = project.classes.get(sub)
        if cls is not None and method in cls.methods:
            targets.add(cls.methods[method])
    if targets:
        return [(t, False) for t in sorted(targets)]
    return _name_fallback(project, method) if fallback else []


def _name_fallback(project: ProjectIndex, bare: str) -> list[tuple[str, bool]]:
    if bare in NAME_FALLBACK_BLACKLIST or bare.startswith("__"):
        return []
    candidates = project.functions_by_name.get(bare, [])
    # An unbounded fan-out means the name is too generic to be useful.
    if 0 < len(candidates) <= 4:
        return [(c, True) for c in sorted(candidates)]
    return []


def _local_types(project: ProjectIndex, info: FunctionInfo) -> dict[str, str]:
    """Variable name -> class qualname, from annotations and stores."""
    types: dict[str, str] = {}
    node = info.node
    if isinstance(node, ast.Lambda):
        return types
    imports = project.imports.get(info.module, {})

    for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
        if arg.annotation is None:
            continue
        ann = _annotation_name(arg.annotation)
        if ann is None:
            continue
        resolved = project.resolve_local(info.module, ann)
        if resolved is not None and resolved in project.classes:
            types[arg.arg] = resolved
        elif "ProcessPoolExecutor" in ann:
            types[arg.arg] = "concurrent.futures.ProcessPoolExecutor"
        elif "ThreadPoolExecutor" in ann or ann.endswith("Executor"):
            types[arg.arg] = "concurrent.futures.ThreadPoolExecutor"

    for sub in ast.walk(node):
        if not (isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call)):
            continue
        cls = project.resolve_class_of_call(sub.value, info.module, imports)
        if cls is None:
            continue
        for target in sub.targets:
            if isinstance(target, ast.Name):
                types.setdefault(target.id, cls)
    return types


def _annotation_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return _dotted(node)


def _bare_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


__all__ = [
    "NAME_FALLBACK_BLACKLIST",
    "SERVER_BACKEND",
    "SERVER_PATH_PREFIX",
    "SUBMIT_BACKENDS",
    "CallGraph",
    "Edge",
    "UnresolvedSubmit",
    "build_call_graph",
    "is_server_handler",
]
