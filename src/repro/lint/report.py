"""``--graph-report``: JSON + Graphviz export of the analysis graphs.

The whole-program analyzer's value is only auditable if its view of the
system is inspectable: which functions it thinks run on workers, which
lock nests inside which, which submissions it could not resolve.  This
module renders the shared :class:`~repro.lint.project.ProjectIndex` /
:class:`~repro.lint.dataflow.ProjectAnalysis` into

* one **JSON document** (counts, edge lists, worker-context map,
  lock-order edges and cycles, unresolved submissions) — uploaded as a
  CI artifact so every PR's graph is diffable against the last; and
* two **dot graphs** — the call graph (submit edges dashed, labelled
  with their backend) and the lock-order graph (nodes carry the lock
  kind) — renderable with any Graphviz install, none required here.

Everything is emitted in sorted order so reports are byte-stable across
runs and machines.
"""

from __future__ import annotations

from repro.lint.dataflow import ProjectAnalysis
from repro.lint.project import ProjectIndex


def graph_report(project: ProjectIndex) -> dict:
    """The machine-readable report (strict-JSON-safe, deterministic)."""
    graph = project.call_graph()
    analysis = project.analysis()

    call_edges = sorted(
        (e for e in graph.edges if e.kind == "call"),
        key=lambda e: (e.src, e.dst, e.path, e.line),
    )
    submit_edges = sorted(
        graph.submit_edges(),
        key=lambda e: (e.src, e.dst, e.path, e.line),
    )
    lock_edges = sorted(
        {
            (e.outer, e.inner, e.path, e.line, e.via, e.direct)
            for e in analysis.lock_order
        }
    )
    cycles = analysis.lock_cycles()

    return {
        "summary": {
            "modules": len(project.modules),
            "functions": len(project.functions),
            "classes": len(project.classes),
            "call_edges": len(call_edges),
            "submit_edges": len(submit_edges),
            "unresolved_submits": len(graph.unresolved_submits),
            "worker_reachable_functions": len(analysis.worker_context),
            "locks": len(analysis.locks),
            "lock_order_edges": len(lock_edges),
            "lock_cycles": len(cycles),
            "invalidating_functions": len(analysis.invalidators),
        },
        "submit_edges": [
            {
                "src": e.src,
                "dst": e.dst,
                "backend": e.backend,
                "path": e.path,
                "line": e.line,
            }
            for e in submit_edges
        ],
        "unresolved_submits": [
            {
                "src": u.src,
                "path": u.path,
                "line": u.line,
                "backend": u.backend,
                "reason": u.reason,
            }
            for u in sorted(
                graph.unresolved_submits,
                key=lambda u: (u.path, u.line, u.src),
            )
        ],
        "worker_context": {
            qualname: sorted(backends)
            for qualname, backends in sorted(analysis.worker_context.items())
        },
        "locks": {
            name: analysis.locks[name].kind for name in sorted(analysis.locks)
        },
        "lock_order": [
            {
                "outer": outer,
                "inner": inner,
                "path": path,
                "line": line,
                "via": via,
                "direct": direct,
            }
            for outer, inner, path, line, via, direct in lock_edges
        ],
        "lock_cycles": [
            [
                {
                    "outer": e.outer,
                    "inner": e.inner,
                    "path": e.path,
                    "line": e.line,
                    "via": e.via,
                }
                for e in cycle
            ]
            for cycle in cycles
        ],
        "call_edges": [
            {
                "src": e.src,
                "dst": e.dst,
                "path": e.path,
                "line": e.line,
                "fallback": e.fallback,
            }
            for e in call_edges
        ],
    }


def callgraph_dot(project: ProjectIndex) -> str:
    """Graphviz rendering of the call graph (submit edges dashed)."""
    graph = project.call_graph()
    lines = [
        "digraph callgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    nodes: set[str] = set()
    for edge in graph.edges:
        nodes.add(edge.src)
        nodes.add(edge.dst)
    for node in sorted(nodes):
        lines.append(f'  "{node}";')
    seen: set[tuple[str, str, str]] = set()
    for edge in sorted(
        graph.edges, key=lambda e: (e.src, e.dst, e.kind, e.line)
    ):
        key = (edge.src, edge.dst, edge.kind)
        if key in seen:
            continue
        seen.add(key)
        if edge.kind == "submit":
            label = edge.backend or "unknown"
            lines.append(
                f'  "{edge.src}" -> "{edge.dst}" '
                f'[style=dashed, color=red, label="{label}"];'
            )
        else:
            style = ", style=dotted" if edge.fallback else ""
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [{("color=gray" + style)}];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def lockorder_dot(analysis: ProjectAnalysis) -> str:
    """Graphviz rendering of the lock-order graph (kind on each node)."""
    lines = [
        "digraph lockorder {",
        '  node [shape=ellipse, fontsize=10, fontname="monospace"];',
    ]
    for name in sorted(analysis.locks):
        kind = analysis.locks[name].kind
        lines.append(f'  "{name}" [label="{name}\\n({kind})"];')
    seen: set[tuple[str, str]] = set()
    for edge in sorted(
        analysis.lock_order, key=lambda e: (e.outer, e.inner, e.line)
    ):
        key = (edge.outer, edge.inner)
        if key in seen:
            continue
        seen.add(key)
        style = "solid" if edge.direct else "dashed"
        lines.append(
            f'  "{edge.outer}" -> "{edge.inner}" '
            f'[style={style}, label="{edge.path.rsplit("/", 1)[-1]}:{edge.line}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


__all__ = ["callgraph_dot", "graph_report", "lockorder_dot"]
