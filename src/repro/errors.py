"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  The subclasses mirror
the major layers of the system: schema/catalog problems, query construction
and execution problems, SQL text problems, sampling/pre-processing problems,
and workload/experiment configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InternalError(ReproError):
    """An internal invariant of the library was violated (a bug in repro).

    Raised where older code used ``assert``: unlike an assert, the guard
    survives ``python -O`` and carries a message (RL005 in
    ``docs/linting.md``).
    """


class SchemaError(ReproError):
    """A table, column, or foreign key definition is invalid or missing."""


class ColumnTypeError(SchemaError):
    """An operation was applied to a column of an incompatible type."""


class QueryError(ReproError):
    """A query is malformed or references objects that do not exist."""


class UnsupportedQueryError(QueryError):
    """The query is valid SQL but outside the supported aggregation subset."""


class SQLSyntaxError(QueryError):
    """SQL text could not be tokenised or parsed.

    Attributes
    ----------
    position:
        Character offset into the SQL text at which the problem was found,
        or ``None`` when the problem is not tied to one location.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SamplingError(ReproError):
    """Sample construction failed or sampling parameters are invalid."""


class PreprocessingError(SamplingError):
    """The pre-processing phase of an AQP technique failed."""


class RuntimePhaseError(ReproError):
    """The runtime phase could not answer a query from the built samples."""


class DeadlineExceeded(RuntimePhaseError):
    """A per-request deadline expired before execution finished.

    Raised by the deadline checkpoints threaded through the middleware
    session and piece execution (see :mod:`repro.engine.deadline`), and
    mapped to the ``deadline_exceeded`` wire error by the serving layer.
    """


class ServerError(ReproError):
    """A serving-layer request failed (transport, protocol, or remote).

    Attributes
    ----------
    code:
        Machine-readable error code from ``docs/serving.md`` (e.g.
        ``"overloaded"``, ``"deadline_exceeded"``), or ``None`` when the
        failure happened before a response was decoded.
    status:
        HTTP status of the response, or ``None`` for transport errors.
    """

    def __init__(
        self,
        message: str,
        code: str | None = None,
        status: int | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = status


class WorkloadError(ReproError):
    """A workload specification is invalid for the target database."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent or cannot be run."""
