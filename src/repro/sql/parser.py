"""Recursive-descent parser for the supported aggregation-query SQL subset.

Grammar (keywords case-insensitive)::

    statement    := select (UNION ALL select)*
    select       := SELECT select_list FROM ident
                    (WHERE predicate)? (GROUP BY ident_list)?
                    (HAVING having_item (AND having_item)*)?
                    (ORDER BY order_item (',' order_item)*)?
                    (LIMIT number)?
    having_item  := ident op number
    order_item   := ident (ASC | DESC)?
    select_list  := select_item (',' select_item)*
    select_item  := ident
                  | aggregate ('*' number)? (AS ident)?
    aggregate    := COUNT '(' '*' ')'
                  | (SUM|AVG|MIN|MAX) '(' ident ')'
    predicate    := disjunct (OR disjunct)*
    disjunct     := conjunct (AND conjunct)*
    conjunct     := NOT conjunct
                  | '(' predicate ')'
                  | ident IN '(' literal (',' literal)* ')'
                  | ident BETWEEN literal AND literal
                  | ident op literal          -- op in = <> < <= > >=
    literal      := number | string

A filter of the form ``bitmask & <int> = 0`` (the paper's de-duplication
filter) parses into :class:`BitmaskDisjoint`; the bit width of the mask is
fixed later when the statement is bound to a sample set, so the parser
stores the raw integer.

The parser produces :class:`SelectStatement` objects wrapping the engine's
:class:`~repro.engine.expressions.Query`, plus the optional scale factor
from ``COUNT(*) * 100``-style expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.bitmask import Bitmask
from repro.engine.expressions import (
    AggFunc,
    AggregateSpec,
    Between,
    BitmaskDisjoint,
    Compare,
    CompareOp,
    Equals,
    InSet,
    Not,
    Or,
    Predicate,
    Query,
    conjoin,
)
from repro.errors import InternalError, SQLSyntaxError
from repro.sql.lexer import Token, TokenType, tokenize

#: Name of the hidden bitmask column in rewritten queries.
BITMASK_COLUMN = "bitmask"

#: Bit width used when parsing standalone bitmask filters.  Rewritten SQL
#: stores the mask as an integer, so any width that fits suffices; the
#: executor compares word-by-word and ignores unused high words.
DEFAULT_BITMASK_BITS = 256


@dataclass(frozen=True)
class SelectStatement:
    """One SELECT block: an engine query plus an aggregate scale factor."""

    query: Query
    scale: float = 1.0


@dataclass(frozen=True)
class Statement:
    """A full statement: one or more SELECT blocks joined by UNION ALL."""

    selects: tuple[SelectStatement, ...] = field(default_factory=tuple)

    @property
    def is_union(self) -> bool:
        """Whether the statement has more than one branch."""
        return len(self.selects) > 1


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word}, found {token.value or 'end of input'!r}",
                position=token.position,
            )
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise SQLSyntaxError(
                f"expected {symbol!r}, found {token.value or 'end of input'!r}",
                position=token.position,
            )
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise SQLSyntaxError(
                f"expected identifier, found {token.value or 'end of input'!r}",
                position=token.position,
            )
        return self._advance().value

    # -- grammar -------------------------------------------------------
    def statement(self) -> Statement:
        """Parse ``select (UNION ALL select)*`` to end of input."""
        selects = [self.select()]
        while self._peek().is_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            selects.append(self.select())
        end = self._peek()
        if end.type is not TokenType.END:
            raise SQLSyntaxError(
                f"unexpected trailing input {end.value!r}", position=end.position
            )
        return Statement(tuple(selects))

    def select(self) -> SelectStatement:
        """Parse one SELECT block into a query + scale factor."""
        self._expect_keyword("SELECT")
        group_like: list[str] = []
        aggregates: list[AggregateSpec] = []
        scale = 1.0
        while True:
            item_scale = self._select_item(group_like, aggregates)
            if item_scale is not None:
                scale = item_scale
            if self._peek().is_symbol(","):
                self._advance()
                continue
            break
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where: Predicate | None = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self.predicate()
        group_by: tuple[str, ...] = ()
        if self._peek().is_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            names = [self._expect_ident()]
            while self._peek().is_symbol(","):
                self._advance()
                names.append(self._expect_ident())
            group_by = tuple(names)
        having: list[tuple[str, CompareOp, float]] = []
        if self._peek().is_keyword("HAVING"):
            self._advance()
            having.append(self._having_item())
            while self._peek().is_keyword("AND"):
                self._advance()
                having.append(self._having_item())
        order_by: list[tuple[str, bool]] = []
        if self._peek().is_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._peek().is_symbol(","):
                self._advance()
                order_by.append(self._order_item())
        limit: int | None = None
        if self._peek().is_keyword("LIMIT"):
            self._advance()
            number = self._peek()
            if number.type is not TokenType.NUMBER:
                raise SQLSyntaxError(
                    "expected row count after LIMIT", position=number.position
                )
            limit = int(self._advance().value)
        if not aggregates:
            raise SQLSyntaxError("query computes no aggregate")
        if group_like and set(group_like) != set(group_by):
            raise SQLSyntaxError(
                "non-aggregate SELECT columns must match the GROUP BY list: "
                f"{group_like} vs {list(group_by)}"
            )
        query = Query(
            table,
            tuple(aggregates),
            group_by,
            where,
            tuple(order_by),
            limit,
            tuple(having),
        )
        return SelectStatement(query, scale)

    def _having_item(self) -> tuple[str, CompareOp, float]:
        name = self._expect_ident()
        op_token = self._peek()
        if op_token.type is not TokenType.SYMBOL or op_token.value not in (
            "=",
            "<>",
            "<",
            "<=",
            ">",
            ">=",
        ):
            raise SQLSyntaxError(
                "expected comparison operator in HAVING",
                position=op_token.position,
            )
        op = CompareOp(self._advance().value)
        number = self._peek()
        if number.type is not TokenType.NUMBER:
            raise SQLSyntaxError(
                "HAVING compares an aggregate against a number",
                position=number.position,
            )
        return (name, op, float(self._advance().value))

    def _order_item(self) -> tuple[str, bool]:
        name = self._expect_ident()
        descending = False
        if self._peek().is_keyword("DESC"):
            self._advance()
            descending = True
        elif self._peek().is_keyword("ASC"):
            self._advance()
        return (name, descending)

    def _select_item(
        self, group_like: list[str], aggregates: list[AggregateSpec]
    ) -> float | None:
        token = self._peek()
        if token.type is TokenType.IDENT:
            group_like.append(self._advance().value)
            return None
        if token.type is TokenType.KEYWORD and token.value in (
            "COUNT",
            "SUM",
            "AVG",
            "MIN",
            "MAX",
        ):
            func = AggFunc[self._advance().value]
            self._expect_symbol("(")
            if func is AggFunc.COUNT:
                self._expect_symbol("*")
                column = None
            else:
                column = self._expect_ident()
            self._expect_symbol(")")
            scale: float | None = None
            if self._peek().is_symbol("*"):
                self._advance()
                number = self._peek()
                if number.type is not TokenType.NUMBER:
                    raise SQLSyntaxError(
                        "expected number after '*'", position=number.position
                    )
                scale = float(self._advance().value)
            alias = None
            if self._peek().is_keyword("AS"):
                self._advance()
                alias = self._expect_ident()
            aggregates.append(AggregateSpec(func, column, alias))
            return scale
        raise SQLSyntaxError(
            f"expected column or aggregate, found {token.value or 'end'!r}",
            position=token.position,
        )

    def predicate(self) -> Predicate:
        """Parse ``disjunct (OR disjunct)*`` — OR binds looser than AND."""
        operands = [self._disjunct()]
        while self._peek().is_keyword("OR"):
            self._advance()
            operands.append(self._disjunct())
        if len(operands) == 1:
            return operands[0]
        return Or(operands)

    def _disjunct(self) -> Predicate:
        """Parse a conjunction of predicate atoms (one OR arm)."""
        operands = [self._conjunct()]
        while self._peek().is_keyword("AND"):
            self._advance()
            operands.append(self._conjunct())
        combined = conjoin(operands)
        if combined is None:
            raise InternalError(
                "conjoin returned no predicate for a non-empty operand list"
            )
        return combined

    def _conjunct(self) -> Predicate:
        token = self._peek()
        if token.is_keyword("NOT"):
            self._advance()
            return Not(self._conjunct())
        if token.is_symbol("("):
            self._advance()
            inner = self.predicate()
            self._expect_symbol(")")
            return inner
        column = self._expect_ident()
        if column == BITMASK_COLUMN and self._peek().is_symbol("&"):
            return self._bitmask_filter()
        nxt = self._peek()
        if nxt.is_keyword("IN"):
            self._advance()
            self._expect_symbol("(")
            values = [self._literal()]
            while self._peek().is_symbol(","):
                self._advance()
                values.append(self._literal())
            self._expect_symbol(")")
            return InSet(column, values)
        if nxt.is_keyword("BETWEEN"):
            self._advance()
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            return Between(column, low, high)
        if nxt.type is TokenType.SYMBOL and nxt.value in ("=", "<>", "<", "<=", ">", ">="):
            op = CompareOp(self._advance().value)
            value = self._literal()
            if op is CompareOp.EQ:
                return Equals(column, value)
            return Compare(column, op, value)
        raise SQLSyntaxError(
            f"expected predicate operator after {column!r}", position=nxt.position
        )

    def _bitmask_filter(self) -> Predicate:
        self._expect_symbol("&")
        number = self._peek()
        if number.type is not TokenType.NUMBER:
            raise SQLSyntaxError(
                "expected mask integer after '&'", position=number.position
            )
        mask_value = int(self._advance().value)
        self._expect_symbol("=")
        zero = self._peek()
        if zero.type is not TokenType.NUMBER or float(zero.value) != 0.0:
            raise SQLSyntaxError(
                "bitmask filters must compare against 0", position=zero.position
            )
        self._advance()
        n_bits = max(DEFAULT_BITMASK_BITS, mask_value.bit_length())
        return BitmaskDisjoint(Bitmask.from_int(n_bits, mask_value))

    def _literal(self) -> object:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        raise SQLSyntaxError(
            f"expected literal, found {token.value or 'end'!r}",
            position=token.position,
        )


def parse(sql: str) -> Statement:
    """Parse SQL text into a :class:`Statement`."""
    return _Parser(tokenize(sql)).statement()


def parse_select(sql: str) -> SelectStatement:
    """Parse SQL expected to contain exactly one SELECT block.

    Raises
    ------
    SQLSyntaxError
        If the text is a UNION ALL of several blocks.
    """
    statement = parse(sql)
    if statement.is_union:
        raise SQLSyntaxError("expected a single SELECT, found a UNION ALL")
    return statement.selects[0]


def parse_query(sql: str) -> Query:
    """Parse a single SELECT and return the engine query (scale must be 1)."""
    select = parse_select(sql)
    if select.scale != 1.0:
        raise SQLSyntaxError("scaled aggregates are only valid in rewritten SQL")
    return select.query
