"""Render query ASTs back to SQL text.

The middleware uses this to show users exactly what rewritten SQL runs
against the sample tables — the UNION ALL with bitmask filters and scaled
aggregates from the paper's Section 4.2.2 example.  ``parse(format(x))``
round-trips for every supported construct (a property test enforces it).
"""

from __future__ import annotations

from repro.engine.expressions import (
    AggFunc,
    AggregateSpec,
    And,
    Between,
    BitmaskDisjoint,
    Compare,
    Equals,
    InSet,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.errors import QueryError
from repro.sql.parser import BITMASK_COLUMN, SelectStatement, Statement


def format_literal(value: object) -> str:
    """Render a literal value as SQL."""
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return repr(value)


def format_predicate(predicate: Predicate) -> str:
    """Render a predicate as SQL."""
    if isinstance(predicate, And):
        return " AND ".join(
            _format_operand(operand) for operand in predicate.operands
        )
    if isinstance(predicate, Or):
        return " OR ".join(
            _format_operand(operand) for operand in predicate.operands
        )
    if isinstance(predicate, Not):
        return f"NOT {_format_operand(predicate.operand)}"
    if isinstance(predicate, Equals):
        return f"{predicate.column} = {format_literal(predicate.value)}"
    if isinstance(predicate, Compare):
        return (
            f"{predicate.column} {predicate.op.value} "
            f"{format_literal(predicate.value)}"
        )
    if isinstance(predicate, InSet):
        values = ", ".join(format_literal(v) for v in predicate.values)
        return f"{predicate.column} IN ({values})"
    if isinstance(predicate, Between):
        return (
            f"{predicate.column} BETWEEN {format_literal(predicate.low)} "
            f"AND {format_literal(predicate.high)}"
        )
    if isinstance(predicate, BitmaskDisjoint):
        return f"{BITMASK_COLUMN} & {predicate.mask.to_int()} = 0"
    raise QueryError(f"cannot format predicate of type {type(predicate).__name__}")


def _format_operand(predicate: Predicate) -> str:
    text = format_predicate(predicate)
    # Parenthesize compound operands so precedence survives the round trip
    # (OR binds looser than AND in the parser).
    if isinstance(predicate, (And, Or)):
        return f"({text})"
    return text


def format_aggregate(agg: AggregateSpec, scale: float = 1.0) -> str:
    """Render one aggregate expression, with its scale factor and alias."""
    if agg.func is AggFunc.COUNT:
        body = "COUNT(*)"
    else:
        body = f"{agg.func.value}({agg.column})"
    if scale != 1.0:
        if scale == int(scale):
            body = f"{body} * {int(scale)}"
        else:
            body = f"{body} * {scale!r}"
    if agg.alias:
        body = f"{body} AS {agg.alias}"
    return body


def format_select(select: SelectStatement) -> str:
    """Render one SELECT block."""
    return format_query(select.query, scale=select.scale)


def format_query(query: Query, scale: float = 1.0) -> str:
    """Render an engine query (optionally with scaled aggregates) as SQL."""
    items = list(query.group_by)
    items.extend(format_aggregate(agg, scale) for agg in query.aggregates)
    parts = [f"SELECT {', '.join(items)}", f"FROM {query.table}"]
    if query.where is not None:
        parts.append(f"WHERE {format_predicate(query.where)}")
    if query.group_by:
        parts.append(f"GROUP BY {', '.join(query.group_by)}")
    if query.having:
        rendered = " AND ".join(
            f"{name} {op.value} {format_literal(value)}"
            for name, op, value in query.having
        )
        parts.append(f"HAVING {rendered}")
    if query.order_by:
        rendered = ", ".join(
            f"{name} DESC" if descending else name
            for name, descending in query.order_by
        )
        parts.append(f"ORDER BY {rendered}")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return "\n".join(parts)


def format_statement(statement: Statement) -> str:
    """Render a statement, joining branches with UNION ALL."""
    return "\nUNION ALL\n".join(
        format_select(select) for select in statement.selects
    )
