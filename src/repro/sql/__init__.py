"""SQL surface: lexer, parser, and formatter for the aggregation subset."""

from repro.sql.formatter import (
    format_aggregate,
    format_literal,
    format_predicate,
    format_query,
    format_select,
    format_statement,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import (
    BITMASK_COLUMN,
    SelectStatement,
    Statement,
    parse,
    parse_query,
    parse_select,
)

__all__ = [
    "BITMASK_COLUMN",
    "SelectStatement",
    "Statement",
    "Token",
    "TokenType",
    "format_aggregate",
    "format_literal",
    "format_predicate",
    "format_query",
    "format_select",
    "format_statement",
    "parse",
    "parse_query",
    "parse_select",
    "tokenize",
]
