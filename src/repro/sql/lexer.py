"""Tokeniser for the supported SQL subset.

The AQP middleware operates on SQL text: incoming analysis queries are
parsed, rewritten against sample tables, and rendered back to SQL (the
paper's Section 4.2.2 shows the rewritten UNION ALL with bitmask filters).
This lexer covers exactly that subset: identifiers, numbers, single-quoted
strings, comparison operators, ``&``, parentheses, commas, ``*``, and the
keyword set of aggregation queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "AS",
    "IN",
    "NOT",
    "BETWEEN",
    "UNION",
    "ALL",
    "HAVING",
    "ORDER",
    "LIMIT",
    "ASC",
    "DESC",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
}


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes
    ----------
    type:
        Token category.
    value:
        Normalised text: keywords upper-cased, identifiers as written,
        numbers as written, strings without quotes (escapes resolved).
    position:
        Character offset of the token start in the source text.
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        """Whether this token is the given symbol."""
        return self.type is TokenType.SYMBOL and self.value == symbol


_TWO_CHAR_SYMBOLS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_SYMBOLS = "(),*&=<>."


def tokenize(text: str) -> list[Token]:
    """Tokenise SQL text.

    Raises
    ------
    SQLSyntaxError
        On unterminated strings or unexpected characters; the exception
        carries the character position of the problem.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise SQLSyntaxError("unterminated comment", position=i)
            i = end + 2
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        is_negative_number = (
            ch == "-"
            and i + 1 < n
            and (text[i + 1].isdigit() or text[i + 1] == ".")
        )
        if (
            ch.isdigit()
            or (ch == "." and i + 1 < n and text[i + 1].isdigit())
            or is_negative_number
        ):
            start = i
            i += 1
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j + 1
                    while i < n and text[i].isdigit():
                        i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_SYMBOLS:
            normalised = "<>" if two == "!=" else two
            tokens.append(Token(TokenType.SYMBOL, normalised, i))
            i += 2
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", position=start)
