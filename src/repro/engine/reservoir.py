"""Random sampling primitives.

The paper's pre-processing builds its overall sample with reservoir
sampling [Vitter 85] during the second scan of the database.
:class:`ReservoirSampler` implements the classic Algorithm R over a stream
of row indices (the streaming discipline matters: the small group sampling
build consumes rows once, in a single pass, populating the reservoir and
the small group tables simultaneously).

For non-streaming callers, :func:`uniform_sample_indices` draws a fixed-size
uniform sample of row indices directly, and :func:`bernoulli_sample_indices`
draws a Bernoulli (per-row coin flip) sample — the variant assumed by the
paper's analytical model.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import SamplingError


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed or generator into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class ReservoirSampler:
    """Streaming fixed-size uniform sample of item indices (Algorithm R).

    After observing a stream of ``n`` items, every item has inclusion
    probability ``min(1, k/n)``.

    Parameters
    ----------
    capacity:
        Reservoir size ``k``.
    rng:
        Seed or generator for reproducibility.
    """

    def __init__(self, capacity: int, rng: int | np.random.Generator | None = None):
        if capacity < 0:
            raise SamplingError(f"reservoir capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._rng = as_generator(rng)
        self._reservoir: list[int] = []
        self._seen = 0

    @property
    def seen(self) -> int:
        """Number of stream items observed so far."""
        return self._seen

    def offer(self, item: int) -> None:
        """Observe one stream item."""
        self._seen += 1
        if self.capacity == 0:
            return
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(item)
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._reservoir[j] = item

    def offer_many(self, items: Iterable[int]) -> None:
        """Observe a batch of stream items in order."""
        for item in items:
            self.offer(item)

    def sample(self) -> np.ndarray:
        """Return the sampled item values, sorted ascending."""
        return np.sort(np.asarray(self._reservoir, dtype=np.int64))


def reservoir_replacements(
    capacity: int,
    total_before: int,
    n_new: int,
    rng: int | np.random.Generator | None = None,
) -> dict[int, int]:
    """Algorithm R replacement decisions for a batch of new stream items.

    Extends a full reservoir of size ``capacity`` that has already
    observed ``total_before`` items with ``n_new`` more: item ``offset``
    (0-based within the batch) is accepted with probability
    ``capacity / (total_before + offset + 1)`` and evicts a uniform slot
    — exactly the per-item discipline of :meth:`ReservoirSampler.offer`,
    so inclusion probabilities stay ``capacity / total`` throughout.
    Returns ``{reservoir_slot: batch_offset}`` with later acceptances
    overwriting earlier ones on the same slot (last write wins, as in
    the streaming formulation).  The RNG draw sequence is a pure
    function of ``(capacity, total_before, n_new)``, which is what lets
    the incremental-append path derive a deterministic per-append stream
    and stay byte-identical to a fresh build replaying the same appends.
    """
    if capacity < 0:
        raise SamplingError(
            f"reservoir capacity must be >= 0, got {capacity}"
        )
    gen = as_generator(rng)
    replacements: dict[int, int] = {}
    total = total_before
    for offset in range(n_new):
        total += 1
        if gen.random() < capacity / total:
            replacements[int(gen.integers(0, capacity))] = offset
    return replacements


def uniform_sample_indices(
    n: int, k: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Draw ``min(k, n)`` distinct row indices uniformly, sorted ascending."""
    if n < 0 or k < 0:
        raise SamplingError("population and sample sizes must be non-negative")
    gen = as_generator(rng)
    k = min(k, n)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(gen.choice(n, size=k, replace=False)).astype(np.int64)


def bernoulli_sample_indices(
    n: int, rate: float, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Include each of ``n`` rows independently with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise SamplingError(f"sampling rate must be in [0, 1], got {rate}")
    gen = as_generator(rng)
    keep = gen.random(n) < rate
    return np.flatnonzero(keep).astype(np.int64)


def weighted_sample_indices(
    probabilities: np.ndarray, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Poisson sampling: include row ``i`` with probability ``p[i]``.

    Used by the congressional-sampling baseline, where each tuple's
    inclusion probability is the (rescaled) max of its house and senate
    allocations.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.size and (
        probabilities.min() < 0.0 or probabilities.max() > 1.0
    ):
        raise SamplingError("inclusion probabilities must lie in [0, 1]")
    gen = as_generator(rng)
    keep = gen.random(probabilities.shape[0]) < probabilities
    return np.flatnonzero(keep).astype(np.int64)
