"""Vectorised query execution.

The executor answers aggregation queries (:class:`Query`) either *exactly*
against a :class:`Database` — resolving star-schema foreign-key joins for
whichever dimension columns the query touches — or against a single flat
(sample) table with optional per-row weights and a result scale factor,
which is how the AQP techniques evaluate their rewritten queries.

Grouping operates directly on dictionary codes (string columns carry them
from construction) or on ``numpy.unique``-densified numeric values, and
aggregates via ``numpy.bincount``; the cost of a query is therefore
proportional to the number of rows scanned, matching the cost model that
the paper's speedup experiments rely on.  Group-id assignment, WHERE
masks, and star-join positions are memoised in the cross-query
:class:`~repro.engine.cache.ExecutionCache`, keyed on column identity, so
a repeated workload pays the row-proportional aggregation cost only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine.cache import MISS, get_cache
from repro.engine.column import Column, ColumnKind
from repro.engine.database import Database, gather_dimension_column
from repro.engine.expressions import AggFunc, AggregateSpec, Query
from repro.engine.parallel import (
    ExecutionOptions,
    chunk_ranges,
    parallel_map,
    resolve_options,
)
from repro.engine.table import Table
from repro.engine import zonemap
from repro.engine import selection as selection_lib
from repro.errors import QueryError
from repro.obs.registry import get_registry
from repro.obs.trace import NULL_SPAN, Span

GroupKey = tuple[Any, ...]

# Mixed-radix group keys stay in int64 while the product of per-column
# cardinalities is below this bound; beyond it we group on the code matrix.
_RADIX_LIMIT = 2**62


@dataclass
class GroupedResult:
    """Result of an aggregation query.

    Attributes
    ----------
    group_columns:
        Names of the grouping columns (empty for a plain aggregation, in
        which case there is a single group with key ``()``).
    aggregate_names:
        Output name of each aggregate, in SELECT order.
    rows:
        Mapping from group key tuple to aggregate value tuple.
    raw_counts:
        Unweighted number of source rows contributing to each group; used
        by the confidence-interval machinery.
    sum_squares:
        For each SUM/AVG aggregate name, per-group sum of squared values
        (weighted by the squared row weights), used for variance estimates.
    sum_cross:
        For each SUM/AVG aggregate name, per-group ``Σ vw_i · x_i`` — the
        covariance of the SUM and COUNT estimators under Poisson sampling,
        needed for AVG's ratio-estimator (delta method) variance.
    """

    group_columns: tuple[str, ...]
    aggregate_names: tuple[str, ...]
    rows: dict[GroupKey, tuple[float, ...]]
    raw_counts: dict[GroupKey, int] = field(default_factory=dict)
    sum_squares: dict[str, dict[GroupKey, float]] = field(default_factory=dict)
    sum_cross: dict[str, dict[GroupKey, float]] = field(default_factory=dict)

    @property
    def n_groups(self) -> int:
        """Number of groups in the result."""
        return len(self.rows)

    def groups(self) -> set[GroupKey]:
        """The set of group keys."""
        return set(self.rows)

    def value(self, group: GroupKey, aggregate: str) -> float:
        """Aggregate value for one group."""
        try:
            idx = self.aggregate_names.index(aggregate)
        except ValueError:
            raise QueryError(
                f"no aggregate {aggregate!r}; have {self.aggregate_names}"
            ) from None
        return self.rows[group][idx]

    def as_dict(self, aggregate: str | None = None) -> dict[GroupKey, float]:
        """Mapping group → value for one aggregate (default: the first)."""
        if aggregate is None:
            aggregate = self.aggregate_names[0]
        idx = self.aggregate_names.index(aggregate)
        return {g: vals[idx] for g, vals in self.rows.items()}

    def total(self, aggregate: str | None = None) -> float:
        """Sum of one aggregate across all groups."""
        return float(sum(self.as_dict(aggregate).values()))

    def to_table(self, name: str = "result") -> Table:
        """Materialise the result as an engine table.

        Group columns come first, then one column per aggregate, in result
        order — so exact answers can be stored, re-queried, or persisted
        like any other relation.
        """
        from repro.engine.column import Column

        if not self.rows:
            raise QueryError("cannot materialise an empty result")
        data: dict[str, list] = {}
        for i, column in enumerate(self.group_columns):
            data[column] = [g[i] for g in self.rows]
        for j, agg in enumerate(self.aggregate_names):
            data[agg] = [row[j] for row in self.rows.values()]
        return Table(
            name, {c: Column.from_values(v) for c, v in data.items()}
        )


def dense_ids(code_arrays: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Combine parallel code arrays into dense joint group ids.

    Returns ``(ids, n_groups)`` where ``ids[i]`` is a dense id in
    ``[0, n_groups)`` identifying row ``i``'s combination of codes.
    Used for stratifications over many columns (congressional sampling
    groups on *all* candidate columns jointly) — arrays are combined
    pairwise with re-densification, so intermediate keys never overflow.
    """
    if not code_arrays:
        raise QueryError("dense_ids requires at least one code array")
    _, ids = np.unique(code_arrays[0], return_inverse=True)
    ids = ids.reshape(-1).astype(np.int64)
    if ids.size == 0:
        # Parallel arrays over zero rows: no groups, and no .max() calls
        # on empty arrays further down.
        return ids, 0
    n_groups = int(ids.max()) + 1
    for codes in code_arrays[1:]:
        _, next_ids = np.unique(codes, return_inverse=True)
        next_ids = next_ids.reshape(-1).astype(np.int64)
        if next_ids.size == 0:
            return np.zeros(0, dtype=np.int64), 0
        card = int(next_ids.max()) + 1
        combined = ids * card + next_ids
        _, ids = np.unique(combined, return_inverse=True)
        ids = ids.reshape(-1).astype(np.int64)
        n_groups = int(ids.max()) + 1
    return ids, n_groups


# Dictionary-code grouping is skipped for dictionaries grossly larger than
# the column (bincount width would dwarf the scan); this bound keeps the
# zero-count padding at worst a small constant factor of the row count.
_DICT_FAST_PATH_SLACK = 4
_DICT_FAST_PATH_FLOOR = 1024


def _column_group_codes(col: Column) -> tuple[np.ndarray, list[Any]]:
    """Per-row dense codes plus decoded key values for one grouping column.

    String columns reuse the dictionary codes computed at construction —
    already dense in ``[0, len(dictionary))`` — so grouping skips the
    per-query ``np.unique`` sort entirely.  Numeric columns are densified
    once and memoised against the column's identity.  The key list may
    contain values absent from the data (dictionary entries with zero
    rows); aggregation drops empty groups downstream.
    """
    cache = get_cache()
    cached = cache.get("column_codes", (col,))
    if cached is not MISS:
        return cached
    if col.kind is ColumnKind.STRING and col.dictionary is not None and len(
        col.dictionary
    ) <= max(_DICT_FAST_PATH_FLOOR, _DICT_FAST_PATH_SLACK * len(col)):
        codes = col.data.astype(np.int64)
        keys: list[Any] = list(col.dictionary)
    else:
        _, first_rows, inverse = np.unique(
            col.data, return_index=True, return_inverse=True
        )
        codes = inverse.reshape(-1).astype(np.int64)
        keys = [col[int(r)] for r in first_rows]
    cache.put("column_codes", (col,), (codes, keys))
    return codes, keys


def _group_ids(table: Table, group_by: tuple[str, ...]) -> tuple[np.ndarray, list[GroupKey]]:
    """Assign each row a dense group id and list the decoded group keys.

    Memoised against the identities of the grouping :class:`Column`
    objects — not the table — because :func:`resolve_columns` builds a
    fresh flat ``Table`` per query around the same stored columns.
    Callers must treat the returned arrays as immutable.
    """
    n = table.n_rows
    if not group_by:
        return np.zeros(n, dtype=np.int64), [()]
    columns = [table.column(name) for name in group_by]
    cache = get_cache()
    cached = cache.get("group_ids", columns)
    if cached is not MISS:
        return cached
    per_column = [_column_group_codes(col) for col in columns]
    if len(per_column) == 1:
        codes, key_values = per_column[0]
        result = (codes, [(k,) for k in key_values])
        cache.put("group_ids", columns, result)
        return result
    code_arrays = [codes for codes, _ in per_column]
    cardinalities = [max(1, len(keys)) for _, keys in per_column]
    radix_product = 1
    for c in cardinalities:
        radix_product *= c
    if radix_product < _RADIX_LIMIT:
        key = code_arrays[0].copy()
        for codes, card in zip(code_arrays[1:], cardinalities[1:]):
            key *= card
            key += codes
        _, first_rows, ids = np.unique(key, return_index=True, return_inverse=True)
    else:
        matrix = np.stack(code_arrays, axis=1)
        _, first_rows, ids = np.unique(
            matrix, axis=0, return_index=True, return_inverse=True
        )
    keys = [tuple(col[int(r)] for col in columns) for r in first_rows]
    result = (ids.reshape(-1).astype(np.int64), keys)
    cache.put("group_ids", columns, result)
    return result


def _predicate_mask(
    table: Table,
    predicate,
    options: ExecutionOptions | None = None,
    stats: "zonemap.PieceSkipStats | None" = None,
) -> np.ndarray:
    """Evaluate a WHERE predicate, memoising the boolean mask.

    With ``options.data_skipping`` (the default) the mask is assembled
    chunk-wise through the zone maps (:func:`zonemap.evaluate_predicate`)
    — value-identical to a plain evaluation, so the memoised mask is the
    same object either way and the cache key needs no skipping/layout
    component.  Only pure predicates (value-dependent only, per
    :meth:`~repro.engine.expressions.Predicate.cache_safe`) are cached,
    anchored on the referenced :class:`Column` objects so a stale mask can
    never be served for replaced data.  Predicates with unhashable
    literals simply skip the cache.  ``stats`` (when given) records the
    per-chunk skipping outcome; a cache hit reads zero rows.

    On a cache miss with data skipping enabled, the provenance-sketch
    store (:mod:`repro.engine.selection`) is consulted first: a sketch
    recorded for a dominating parameterisation of the same query template
    proves every unsketched chunk empty, so only the sketched chunks are
    scanned — skipping even the verdict evaluation.  Freshly evaluated
    masks record their realised chunk set back into the store.
    """
    options = resolve_options(options)

    def _evaluate() -> np.ndarray:
        if options.data_skipping:
            return zonemap.evaluate_predicate(
                table, predicate, options, stats=stats
            )
        mask = predicate.evaluate(table)
        if stats is not None:
            stats.rows_total = table.n_rows
            stats.observe_full_scan()
        return mask

    if not predicate.cache_safe():
        return _evaluate()
    names = sorted(predicate.columns())
    if not names:
        return _evaluate()
    anchors = [table.column(name) for name in names]
    cache = get_cache()
    template = (
        selection_lib.predicate_template(predicate)
        if options.data_skipping
        else None
    )
    try:
        mask = cache.get("predicate_mask", anchors, extra=predicate)
        if mask is MISS:
            mask = None
            if template is not None:
                mask = _sketch_mask(
                    table, predicate, template, anchors, options, stats
                )
            if mask is None:
                mask = _evaluate()
            if template is not None:
                selection_lib.get_sketch_store().record(
                    template[0],
                    anchors,
                    template[1],
                    options.chunk_rows,
                    selection_lib.realized_chunks(
                        mask, table.n_rows, options.chunk_rows
                    ),
                )
            cache.put("predicate_mask", anchors, mask, extra=predicate)
        elif stats is not None:
            stats.rows_total = table.n_rows
            stats.mask_cached = True
    except TypeError:
        mask = _evaluate()
    return mask


def _sketch_mask(
    table: Table,
    predicate,
    template,
    anchors,
    options: ExecutionOptions,
    stats: "zonemap.PieceSkipStats | None",
) -> np.ndarray | None:
    """Assemble a predicate mask from a dominating provenance sketch.

    Returns ``None`` when no recorded sketch dominates this predicate's
    parameters.  On a hit the result is exact: dominance proves every
    chunk outside the sketch holds no matching row, and the sketched
    chunks are re-evaluated against the *current* predicate.
    """
    hit = selection_lib.get_sketch_store().lookup(
        template[0], anchors, template[1], options.chunk_rows
    )
    if hit is None:
        return None
    sketched = hit.chunks
    ranges = chunk_ranges(table.n_rows, options.chunk_rows)
    mask = np.zeros(table.n_rows, dtype=bool)
    touched = 0
    for chunk in sketched:
        start, stop = ranges[int(chunk)]
        mask[start:stop] = predicate.evaluate_range(table, start, stop)
        touched += stop - start
    if stats is not None:
        stats.rows_total = table.n_rows
        stats.sketch_hit = True
        # Post-append UNKNOWN chunks are scanned on faith, not recorded
        # relevance; count them apart so sketch scan ratios stay
        # comparable under append-heavy workloads.
        stats.appended_unknown = sum(
            1 for chunk in sketched if int(chunk) in hit.appended
        )
        stats.observe_chunks(
            n_chunks=len(ranges),
            skipped=len(ranges) - len(sketched),
            accepted=0,
            scanned=len(sketched),
            rows_touched=touched,
        )
    return mask


def _selection_keep_mask(
    table: Table,
    predicate,
    plan: "selection_lib.ChunkSelectionPlan",
    options: ExecutionOptions,
    stats: "zonemap.PieceSkipStats | None",
) -> np.ndarray:
    """Row-keep mask restricted to a budgeted selection plan's chunks.

    The mask is a *partial* view of the predicate — rows in unselected
    chunks stay False even where they match — so it is never cached and
    never recorded as a provenance sketch; the Horvitz–Thompson weights
    from the plan are what keep downstream estimates unbiased.
    """
    ranges = chunk_ranges(table.n_rows, options.chunk_rows)
    mask = np.zeros(table.n_rows, dtype=bool)
    accepted = scanned = touched = 0
    for chunk, verdict in zip(plan.chunk_indices, plan.verdicts):
        start, stop = ranges[int(chunk)]
        if predicate is None or verdict == zonemap.VERDICT_ALL_TRUE:
            mask[start:stop] = True
            accepted += 1
        else:
            mask[start:stop] = predicate.evaluate_range(table, start, stop)
            scanned += 1
            touched += stop - start
    lo, hi = plan.ht_weight_range
    if stats is not None:
        stats.rows_total = table.n_rows
        stats.selection_applied = True
        stats.chunks_eligible = plan.n_eligible
        stats.chunks_selected = len(plan.chunk_indices)
        stats.ht_weight_min = lo
        stats.ht_weight_max = hi
        stats.observe_chunks(
            n_chunks=plan.n_chunks,
            skipped=plan.n_chunks - len(plan.chunk_indices),
            accepted=accepted,
            scanned=scanned,
            rows_touched=touched,
        )
    registry = get_registry()
    registry.incr("selection.rows_touched", touched)
    if lo > 0:
        registry.observe("selection.ht_weight_spread", hi / lo)
    return mask


def aggregate_table(
    table: Table,
    query: Query,
    weights: np.ndarray | None = None,
    scale: float = 1.0,
    collect_variance_stats: bool = False,
    variance_weights: np.ndarray | None = None,
    options: ExecutionOptions | None = None,
    skip_stats: "zonemap.PieceSkipStats | None" = None,
    span: Span = NULL_SPAN,
    selection_plan: "selection_lib.ChunkSelectionPlan | None" = None,
) -> GroupedResult:
    """Aggregate a flat table that already matches the query's FROM clause.

    Parameters
    ----------
    table:
        The (possibly sample) table to scan.
    query:
        Query whose WHERE / GROUP BY / aggregates to apply.  The query's
        ``table`` attribute is ignored here.
    weights:
        Optional per-row weights (inverse sampling rates).  ``None`` means
        weight 1 for every row.
    scale:
        Constant multiplier applied to COUNT and SUM results — the
        ``COUNT(*) * 100`` factor from the paper's rewritten queries.
    collect_variance_stats:
        When true, also collect per-group raw counts and sums of squares
        for variance/confidence-interval estimation.
    variance_weights:
        Per-row variance contribution ``vw_i``; the collected
        ``sum_squares`` are then ``Σ vw_i · x_i²`` per group (with
        ``x_i = 1`` for COUNT).  For a Bernoulli sample at rate ``p``
        estimated by scaling with ``1/p``, pass ``(1 - p)/p²`` for every
        row.  Defaults to ``(weight_i · scale)²``.
    options:
        Execution options controlling data skipping and the chunk layout;
        defaults to the process-wide options.
    skip_stats:
        Optional :class:`zonemap.PieceSkipStats` filled in with the
        WHERE-evaluation skipping outcome for this scan.
    span:
        Write-only profiling span (:data:`~repro.obs.trace.NULL_SPAN`
        when profiling is off); gains row/group counts for this scan.
    selection_plan:
        Optional pre-computed budgeted chunk-selection plan
        (:class:`~repro.engine.selection.ChunkSelectionPlan`).  When
        ``options.chunk_selection`` is on and variance stats are being
        collected (i.e. this is an approximate scan), a plan restricts
        the scan to a weighted chunk subset and folds the
        Horvitz–Thompson inverse-inclusion weights into ``weights`` and
        ``variance_weights`` so the estimates stay unbiased.  ``None``
        computes the plan here; exact scans never use one.
    """
    options = resolve_options(options)
    if weights is not None and len(weights) != table.n_rows:
        raise QueryError(
            f"weights length {len(weights)} != table rows {table.n_rows}"
        )
    if variance_weights is not None and len(variance_weights) != table.n_rows:
        raise QueryError(
            f"variance_weights length {len(variance_weights)} != table rows "
            f"{table.n_rows}"
        )
    # WHERE is applied as a selection-index subset of the cached full-table
    # group ids and of each aggregated value array — never by materialising
    # a filtered copy of every column (the seed's ``table.take``).
    selection: np.ndarray | None = None
    plan = selection_plan
    if (
        plan is None
        and options.chunk_selection
        and collect_variance_stats
    ):
        plan = selection_lib.plan_chunk_selection(table, query.where, options)
    if skip_stats is not None:
        skip_stats.rows_total = table.n_rows
        if query.where is None and plan is None:
            # No WHERE: every row is aggregated, nothing to skip.
            skip_stats.observe_full_scan()
    if plan is not None:
        keep = _selection_keep_mask(
            table, query.where, plan, options, skip_stats
        )
        ht = selection_lib.ht_row_weights(
            plan, table.n_rows, options.chunk_rows
        )
        weights = ht if weights is None else weights * ht
        if variance_weights is not None:
            variance_weights = variance_weights * ht * ht
        selection = np.flatnonzero(keep)
        weights = weights[selection]
        if variance_weights is not None:
            variance_weights = variance_weights[selection]
    elif query.where is not None:
        keep = _predicate_mask(table, query.where, options, stats=skip_stats)
        selection = np.flatnonzero(keep)
        if weights is not None:
            weights = weights[selection]
        if variance_weights is not None:
            variance_weights = variance_weights[selection]
    ids, keys = _group_ids(table, query.group_by)
    if selection is not None:
        ids = ids[selection]
    n_selected = int(selection.size) if selection is not None else table.n_rows
    n_groups = len(keys)
    raw_counts = np.bincount(ids, minlength=n_groups)
    if weights is None:
        weighted_counts = raw_counts.astype(np.float64)
    else:
        weighted_counts = np.bincount(ids, weights=weights, minlength=n_groups)

    if collect_variance_stats and variance_weights is None:
        # Default variance contribution: squared effective weight per row.
        if weights is None:
            variance_weights = np.full(n_selected, scale * scale)
        else:
            variance_weights = (weights * scale) ** 2

    agg_values: list[np.ndarray] = []
    sum_squares: dict[str, dict[GroupKey, float]] = {}
    sum_cross: dict[str, dict[GroupKey, float]] = {}
    for agg in query.aggregates:
        if agg.func is AggFunc.COUNT:
            agg_values.append(weighted_counts * scale)
            if collect_variance_stats:
                # For COUNT the "values" are all 1, so the per-group sum of
                # squares is the sum of the variance weights.
                squares = np.bincount(
                    ids, weights=variance_weights, minlength=n_groups
                )
                sum_squares[agg.name] = {
                    keys[g]: float(squares[g]) for g in range(n_groups)
                }
            continue
        values = table.column(agg.column).numeric_values()
        if selection is not None:
            values = values[selection]
        values = values.astype(np.float64)
        if agg.func in (AggFunc.SUM, AggFunc.AVG):
            contrib = values if weights is None else values * weights
            sums = np.bincount(ids, weights=contrib, minlength=n_groups)
            if agg.func is AggFunc.SUM:
                agg_values.append(sums * scale)
            else:
                with np.errstate(invalid="ignore", divide="ignore"):
                    agg_values.append(
                        np.where(weighted_counts > 0, sums / weighted_counts, np.nan)
                    )
            if collect_variance_stats:
                sq = values * values * variance_weights
                squares = np.bincount(ids, weights=sq, minlength=n_groups)
                sum_squares[agg.name] = {
                    keys[g]: float(squares[g]) for g in range(n_groups)
                }
                crosses = np.bincount(
                    ids, weights=values * variance_weights, minlength=n_groups
                )
                sum_cross[agg.name] = {
                    keys[g]: float(crosses[g]) for g in range(n_groups)
                }
        elif agg.func is AggFunc.MIN or agg.func is AggFunc.MAX:
            fill = np.inf if agg.func is AggFunc.MIN else -np.inf
            out = np.full(n_groups, fill, dtype=np.float64)
            if agg.func is AggFunc.MIN:
                np.minimum.at(out, ids, values)
            else:
                np.maximum.at(out, ids, values)
            agg_values.append(out)
        else:  # pragma: no cover - exhaustive over AggFunc
            raise QueryError(f"unsupported aggregate {agg.func}")

    rows: dict[GroupKey, tuple[float, ...]] = {}
    for g, key in enumerate(keys):
        if raw_counts[g] == 0:
            continue
        rows[key] = tuple(float(col[g]) for col in agg_values)
    result = GroupedResult(
        group_columns=query.group_by,
        aggregate_names=tuple(a.name for a in query.aggregates),
        rows=rows,
        raw_counts={
            keys[g]: int(raw_counts[g])
            for g in range(n_groups)
            if raw_counts[g] > 0
        },
    )
    if collect_variance_stats:
        for name, per_group in sum_squares.items():
            result.sum_squares[name] = {
                g: v for g, v in per_group.items() if g in result.rows
            }
        for name, per_group in sum_cross.items():
            result.sum_cross[name] = {
                g: v for g, v in per_group.items() if g in result.rows
            }
    if query.having:
        kept_groups = {
            g for g, row in result.rows.items() if query.evaluate_having(row)
        }
        result.rows = {g: result.rows[g] for g in result.rows if g in kept_groups}
        result.raw_counts = {
            g: c for g, c in result.raw_counts.items() if g in kept_groups
        }
        for name in list(result.sum_squares):
            result.sum_squares[name] = {
                g: v
                for g, v in result.sum_squares[name].items()
                if g in kept_groups
            }
        for name in list(result.sum_cross):
            result.sum_cross[name] = {
                g: v
                for g, v in result.sum_cross[name].items()
                if g in kept_groups
            }
    if query.order_by or query.limit is not None:
        _apply_order_limit(result, query)
    span.annotate(
        rows=table.n_rows,
        rows_selected=n_selected,
        groups=len(result.rows),
    )
    return result


def order_limit_groups(
    values: dict[GroupKey, tuple[float, ...]],
    group_columns: tuple[str, ...],
    aggregate_names: tuple[str, ...],
    order_by: tuple[tuple[str, bool], ...],
    limit: int | None,
) -> list[GroupKey]:
    """Group keys in query order, trimmed to ``limit``.

    Each ORDER BY item names a grouping column or an aggregate output;
    descending items are applied via stable sorting from the last key to
    the first.
    """
    keys = list(values)
    for name, descending in reversed(order_by):
        if name in group_columns:
            position = group_columns.index(name)
            keys.sort(key=lambda g: g[position], reverse=descending)
        else:
            position = aggregate_names.index(name)
            keys.sort(key=lambda g: values[g][position], reverse=descending)
    if limit is not None:
        keys = keys[:limit]
    return keys


def _apply_order_limit(result: GroupedResult, query: Query) -> None:
    """Reorder and trim a result in place per the query's ORDER BY/LIMIT."""
    kept = order_limit_groups(
        result.rows,
        query.group_by,
        result.aggregate_names,
        query.order_by,
        query.limit,
    )
    result.rows = {g: result.rows[g] for g in kept}
    result.raw_counts = {
        g: result.raw_counts[g] for g in kept if g in result.raw_counts
    }
    for name in list(result.sum_squares):
        per_group = result.sum_squares[name]
        result.sum_squares[name] = {
            g: per_group[g] for g in kept if g in per_group
        }
    for name in list(result.sum_cross):
        per_group = result.sum_cross[name]
        result.sum_cross[name] = {
            g: per_group[g] for g in kept if g in per_group
        }


def _gather_one_dimension(item: tuple[str, Column, Column, Column]) -> tuple[str, Column]:
    """Gather one dimension column through the star join (pool task).

    Reads stored columns and the execution cache only (both
    thread-safe); mutates no shared engine state (RL007).
    """
    name, fact_key_col, dim_key_col, dim_col = item
    return name, gather_dimension_column(fact_key_col, dim_key_col, dim_col)


@dataclass(frozen=True)
class _GatherPayload:
    """Picklable descriptor of one star-join gather for the process pool.

    Fields are :class:`~repro.engine.procpool.ColumnHandle` descriptors;
    the worker resolves them into zero-copy views of the stored columns.
    """

    name: str
    fact_key: Any
    dim_key: Any
    dim_column: Any


def _gather_dimension_remote(payload: _GatherPayload) -> Column:
    """Process-pool sibling of :func:`_gather_one_dimension`.

    Runs in a worker: resolves the payload's column handles against the
    shared-memory arena and gathers.  The gathered column is a *new*
    array, so it returns by pickle — the zero-copy transport applies to
    the stored inputs, which dominate the bytes moved.
    """
    from repro.engine import procpool

    return gather_dimension_column(
        procpool.resolve_column(payload.fact_key),
        procpool.resolve_column(payload.dim_key),
        procpool.resolve_column(payload.dim_column),
    )


def _gather_dimensions_in_processes(
    tasks: list[tuple[str, Column, Column, Column]],
    options: ExecutionOptions,
    span: Span,
) -> list[tuple[str, Column]]:
    """Scatter star-join gathers across the process pool.

    The parent consults the execution cache first — a worker's cache
    entries cannot be seen from here, so without this check a repeated
    workload would re-gather (and re-transfer) every dimension each
    query.  Misses are scattered; the gathered columns are installed
    into the parent cache under the same ``joined_column`` anchors the
    thread path uses, so subsequent queries hit regardless of backend.
    A single miss is gathered in-parent: one task cannot use two cores,
    and staying local skips the publish/pickle round trip.
    """
    from repro.engine import procpool

    cache = get_cache()
    results: list[tuple[str, Column] | None] = [None] * len(tasks)
    pending: list[int] = []
    for i, (name, fact_key_col, dim_key_col, dim_col) in enumerate(tasks):
        cached = cache.get(
            "joined_column", (fact_key_col, dim_key_col, dim_col)
        )
        if cached is not MISS:
            results[i] = (name, cached)
        else:
            pending.append(i)
    if len(pending) == 1:
        i = pending[0]
        name, fact_key_col, dim_key_col, dim_col = tasks[i]
        results[i] = (
            name,
            gather_dimension_column(fact_key_col, dim_key_col, dim_col),
        )
    elif pending:
        arena = procpool.get_arena()
        payloads = [
            _GatherPayload(
                name=tasks[i][0],
                fact_key=arena.publish_column(tasks[i][1]),
                dim_key=arena.publish_column(tasks[i][2]),
                dim_column=arena.publish_column(tasks[i][3]),
            )
            for i in pending
        ]
        gathered = procpool.process_map(
            _gather_dimension_remote, payloads, options, span=span
        )
        for i, column in zip(pending, gathered):
            name, fact_key_col, dim_key_col, dim_col = tasks[i]
            cache.put(
                "joined_column", (fact_key_col, dim_key_col, dim_col), column
            )
            results[i] = (name, column)
    return results  # type: ignore[return-value]


def resolve_columns(
    db: Database,
    query: Query,
    options: ExecutionOptions | None = None,
    span: Span = NULL_SPAN,
) -> Table:
    """Build a flat table containing every column the query references.

    Fact columns are used as stored; dimension columns are brought in by
    resolving the star schema's foreign-key joins (hash-free positional
    join via sorted search), touching only the dimensions actually
    needed.  Distinct dimension columns are independent gathers, so they
    scatter across the worker pool when ``options.max_workers > 1``; the
    results are inserted back in a deterministic task order.
    """
    fact = db.fact_table
    needed = query.referenced_columns()
    columns = {}
    missing = set()
    for name in needed:
        if fact.has_column(name):
            columns[name] = fact.column(name)
        else:
            missing.add(name)
    if missing:
        if db.star_schema is None:
            raise QueryError(
                f"columns {sorted(missing)} not found in table {fact.name!r}"
            )
        tasks: list[tuple[str, Column, Column, Column]] = []
        for fk in db.star_schema.foreign_keys:
            dim = db.table(fk.dimension_table)
            dim_needed = [c for c in missing if dim.has_column(c)]
            if not dim_needed:
                continue
            fact_key_col = fact.column(fk.fact_column)
            dim_key_col = dim.column(fk.dimension_key)
            for c in dim_needed:
                tasks.append((c, fact_key_col, dim_key_col, dim.column(c)))
                missing.discard(c)
        if missing:
            raise QueryError(f"columns {sorted(missing)} not found in any table")
        options = resolve_options(options)
        span.add("dimension_gathers", len(tasks))
        use_processes = options.uses_processes and len(tasks) > 1
        if use_processes:
            from repro.engine import procpool

            use_processes = not procpool.in_worker()
        if use_processes:
            gathered_pairs = _gather_dimensions_in_processes(
                tasks, options, span
            )
        else:
            gathered_pairs = parallel_map(
                _gather_one_dimension, tasks, options.workers, span=span
            )
        for name, gathered in gathered_pairs:
            columns[name] = gathered
    if not columns:
        # COUNT(*) with no predicates or grouping still needs row extent.
        first = fact.column_names[0]
        columns[first] = fact.column(first)
    return Table(fact.name, columns)


def execute(
    db: Database,
    query: Query,
    options: ExecutionOptions | None = None,
    skip_stats: "zonemap.PieceSkipStats | None" = None,
    span: Span = NULL_SPAN,
) -> GroupedResult:
    """Execute ``query`` exactly against the database."""
    if not db.has_table(query.table):
        raise QueryError(f"unknown table {query.table!r}")
    if db.star_schema is not None and query.table != db.star_schema.fact_table:
        raise QueryError(
            f"queries must target the fact table "
            f"{db.star_schema.fact_table!r}, got {query.table!r}"
        )
    resolve_span = span.child("resolve_columns")
    with resolve_span:
        flat = resolve_columns(db, query, options, span=resolve_span)
    aggregate_span = span.child("aggregate")
    with aggregate_span:
        return aggregate_table(
            flat,
            query,
            options=options,
            skip_stats=skip_stats,
            span=aggregate_span,
        )
