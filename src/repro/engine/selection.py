"""Chunk selection: provenance-sketch caching + PS3-style weighted selection.

Two cooperating layers sit between the zone maps and the executor's
chunk-wise WHERE evaluation (see :mod:`repro.engine.zonemap`):

**Provenance sketches** (Liu, "Cost-based Selection of Provenance
Sketches for Data Skipping") — an *exact-equivalent* fast path.  After a
query evaluates, the executor records which chunks actually produced
matching rows (the *realized* chunk-relevance set), keyed by a
normalized query template: the predicate tree with constants extracted,
so ``x BETWEEN 10 AND 20`` and ``x BETWEEN 30 AND 40`` share one
template with different parameters.  On re-execution, a stored sketch
whose parameters *dominate* the new query's (its matching-row set is a
superset — e.g. a wider BETWEEN interval) proves that chunks outside
the sketch contain no matching rows, so the executor scans only the
sketched chunks and skips verdict evaluation entirely.  Answers are
byte-identical to the non-sketch path.

**PS3-style weighted selection** (Rong et al., "Approximate Partition
Selection using Summary Statistics") — an *approximate* fast path,
opt-in via :attr:`ExecutionOptions.chunk_selection`.  Chunks are scored
from the zone-map summaries (predicate-overlap fraction, distinct-code
density, historical sketch hit counts) and a without-replacement
weighted subset is drawn under a rows budget with systematic
probability-proportional-to-size sampling.  The executor then
Horvitz–Thompson-reweights every selected row by ``1 / π(chunk)`` so
SUM/COUNT/AVG estimates stay unbiased and the per-group CI machinery
stays honest.  The draw is a pure function of the summaries, the
history, and ``selection_seed`` — never of worker count or backend —
so answers are byte-identical at any ``max_workers``/``executor``.

Invalidation discipline
-----------------------
Sketches are anchored on the identities of the predicate's column
objects (the same anchors as the executor's ``predicate_mask`` cache):
every lookup re-validates the anchors through weak references, and the
store subscribes to :func:`repro.engine.cache.add_invalidation_listener`
so the explicit paths (``append_rows`` / ``insert_rows`` /
``drop_table``) drop affected sketches the moment the execution cache
does.  A stale sketch is therefore never served — the discipline lint
rules RL001/RL013 enforce for the execution cache extends to this
store (RL004 checks the anchor arguments at the call sites).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.engine import zonemap
from repro.engine.cache import (
    AppendEvent,
    add_append_listener,
    add_invalidation_listener,
    get_cache,
)
from repro.engine.expressions import (
    And,
    Between,
    Compare,
    CompareOp,
    Equals,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.engine.parallel import ExecutionOptions, chunk_ranges
from repro.engine.table import Table
from repro.obs.registry import get_registry

#: Parameter variants remembered per (template, anchors, chunk_rows) slot;
#: beyond this the least-hit entry is evicted (deterministically).
SKETCH_SLOT_CAPACITY = 8

#: Additive floor on chunk scores so every eligible chunk keeps a strictly
#: positive inclusion probability — a requirement for Horvitz–Thompson
#: unbiasedness (a zero-probability chunk's rows could never be observed).
SCORE_FLOOR = 0.05


# ----------------------------------------------------------------------
# Query templates: canonical predicate shape + extracted constants
# ----------------------------------------------------------------------
def predicate_template(
    predicate: Predicate,
) -> tuple[tuple, tuple] | None:
    """``(template_key, params)`` canonical form, or ``None``.

    The template key captures the predicate's *shape* (operators and
    column names); ``params`` carries the constants, nested to mirror the
    tree.  AND/OR children are sorted by key so operand order never
    splits a template.  ``None`` means the predicate is not templatable
    (bitmask filters depend on table-level state, not parameters).
    """
    if isinstance(predicate, Equals):
        return ("eq", predicate.column), (predicate.value,)
    if isinstance(predicate, Compare):
        return (
            ("cmp", predicate.column, predicate.op.value),
            (predicate.value,),
        )
    if isinstance(predicate, Between):
        return ("between", predicate.column), (predicate.low, predicate.high)
    if isinstance(predicate, InSet):
        try:
            values = frozenset(predicate.values)
        except TypeError:
            return None
        return ("in", predicate.column), (values,)
    if isinstance(predicate, Not):
        child = predicate_template(predicate.operand)
        if child is None:
            return None
        child_key, child_params = child
        return ("not", child_key), (child_params,)
    if isinstance(predicate, (And, Or)):
        children = []
        for operand in predicate.operands:
            child = predicate_template(operand)
            if child is None:
                return None
            children.append(child)
        # repr() gives a deterministic total order over the heterogeneous
        # key tuples; the sort is stable, so equal-key children keep
        # their original relative order on both sides of a lookup.
        children.sort(key=lambda pair: repr(pair[0]))
        tag = "and" if isinstance(predicate, And) else "or"
        return (
            (tag, tuple(key for key, _ in children)),
            tuple(params for _, params in children),
        )
    return None


def _safe_le(a: Any, b: Any) -> bool:
    try:
        return bool(a <= b)
    except TypeError:
        return False


def _safe_eq(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except TypeError:
        return False


def dominates(template_key: tuple, old_params: tuple, new_params: tuple) -> bool:
    """Whether the old parameters' matching-row set covers the new one's.

    If this holds, every chunk relevant to the *new* query is in the
    *old* query's realized chunk set — the soundness condition for
    serving a sketch.  Incomparable parameter types conservatively fail.
    """
    tag = template_key[0]
    if tag == "eq":
        return _safe_eq(old_params[0], new_params[0])
    if tag == "cmp":
        op = template_key[2]
        old, new = old_params[0], new_params[0]
        if op in (CompareOp.LT.value, CompareOp.LE.value):
            return _safe_le(new, old)  # {x < old} covers {x < new}
        if op in (CompareOp.GT.value, CompareOp.GE.value):
            return _safe_le(old, new)
        return _safe_eq(old, new)  # = / <> only cover themselves
    if tag == "between":
        old_lo, old_hi = old_params
        new_lo, new_hi = new_params
        return _safe_le(old_lo, new_lo) and _safe_le(new_hi, old_hi)
    if tag == "in":
        try:
            return bool(new_params[0] <= old_params[0])
        except TypeError:
            return False
    if tag == "not":
        # Containment flips under negation, so only identical parameters
        # are provably equivalent.
        return old_params == new_params
    if tag in ("and", "or"):
        child_keys = template_key[1]
        return all(
            dominates(child_key, old_child, new_child)
            for child_key, old_child, new_child in zip(
                child_keys, old_params, new_params
            )
        )
    return False


# ----------------------------------------------------------------------
# The sketch store
# ----------------------------------------------------------------------
@dataclass
class _SketchEntry:
    """One parameter variant of a template: its realized chunk set.

    ``appended`` marks chunks added to ``chunks`` by the incremental
    append path (:meth:`SketchStore.extend_on_append`) rather than by a
    full evaluation: they are UNKNOWN-relevance tail chunks that must be
    scanned until the next complete evaluation re-records the entry.
    Dominance reuse stays sound — every row the append touched lives in
    an appended chunk, and appended chunks are always in ``chunks``.
    """

    params: tuple
    chunks: tuple[int, ...]
    hits: int = 0
    appended: frozenset = frozenset()


@dataclass(frozen=True)
class SketchHit:
    """A served sketch: the chunks to scan, with the appended-UNKNOWN subset.

    ``chunks`` is what the executor evaluates (sorted, exact-equivalent
    coverage); ``appended`` lets skip reports count post-append UNKNOWN
    chunks distinctly (``PieceSkipStats.appended_unknown``) so sketch
    scan ratios stay comparable under append-heavy workloads.
    """

    chunks: np.ndarray
    appended: frozenset = frozenset()


class SketchStore:
    """Provenance sketches keyed by query template + column identities.

    Thread safety mirrors :class:`repro.engine.cache.ExecutionCache`: one
    re-entrant lock guards every structural read and write (re-entrant
    because weakref death callbacks can fire during garbage collection
    while the owning thread holds the lock).  Anchors are validated on
    every lookup — a slot whose columns were replaced is dropped, never
    served — and the explicit invalidation fan-out is wired through
    :func:`repro.engine.cache.add_invalidation_listener` at import time.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # slot key -> (anchor weakrefs, anchor ids, entries, chunk hit counts)
        self._slots: dict[
            tuple, tuple[tuple, tuple[int, ...], list[_SketchEntry], dict[int, int]]
        ] = {}
        # id(anchor) -> slot keys anchored on it, for invalidation
        self._anchor_slots: dict[int, set[tuple]] = {}

    def _slot_key(
        self, template: tuple, anchors: list, chunk_rows: int
    ) -> tuple:
        return (template, tuple(id(a) for a in anchors), chunk_rows)

    def _drop_slot(self, key: tuple) -> None:
        with self._lock:
            slot = self._slots.pop(key, None)
            if slot is None:
                return
            for anchor_id in slot[1]:
                keys = self._anchor_slots.get(anchor_id)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del self._anchor_slots[anchor_id]

    def _live_slot(self, key: tuple, anchors: list):
        """The slot for ``key`` if every anchor is still the same live
        object it was stored against; drops and returns ``None`` otherwise."""
        slot = self._slots.get(key)
        if slot is None:
            return None
        if not all(ref() is anchor for ref, anchor in zip(slot[0], anchors)):
            self._drop_slot(key)
            return None
        return slot

    def lookup(
        self,
        template: tuple,
        anchors: list,
        params: tuple,
        chunk_rows: int,
        count_stats: bool = True,
    ) -> SketchHit | None:
        """A :class:`SketchHit` provably covering the new query, or ``None``.

        Scans the slot's parameter variants for one that dominates
        ``params`` and returns the smallest such realized set (with its
        appended-UNKNOWN subset).  With ``count_stats`` (the executor's
        fast path, not planning probes) the hit/miss lands in the shared
        cache metrics under kind ``"provenance_sketch"`` and the obs
        registry.
        """
        key = self._slot_key(template, anchors, chunk_rows)
        best: _SketchEntry | None = None
        with self._lock:
            slot = self._live_slot(key, anchors)
            if slot is not None:
                for entry in slot[2]:
                    if dominates(template, entry.params, params):
                        # Tie-break on the chunk tuple itself, not entry
                        # order: concurrent recordings may append entries
                        # in any order, and planning probes must stay
                        # deterministic for the fixed-seed guarantee.
                        if best is None or (
                            len(entry.chunks),
                            entry.chunks,
                        ) < (len(best.chunks), best.chunks):
                            best = entry
                if best is not None:
                    best.hits += 1
                    hit_counts = slot[3]
                    for chunk in best.chunks:
                        hit_counts[chunk] = hit_counts.get(chunk, 0) + 1
        if count_stats:
            metrics = get_cache().metrics
            if best is not None:
                metrics.record_hit("provenance_sketch")
                get_registry().incr("selection.sketch_hits")
            else:
                metrics.record_miss("provenance_sketch")
                get_registry().incr("selection.sketch_misses")
        if best is None:
            return None
        return SketchHit(
            chunks=np.asarray(best.chunks, dtype=np.int64),
            appended=best.appended,
        )

    def record(
        self,
        template: tuple,
        anchors: list,
        params: tuple,
        chunk_rows: int,
        chunks,
    ) -> None:
        """Store the realized chunk set of one full evaluation.

        Only complete evaluations may be recorded — a budgeted partial
        scan's realized set would poison later dominance reuse (the
        executor enforces this; the store cannot tell).
        """
        chunk_tuple = tuple(int(c) for c in chunks)
        key = self._slot_key(template, anchors, chunk_rows)

        def _on_death(_ref, key=key, store_ref=weakref.ref(self)):
            store = store_ref()
            if store is not None:
                store._drop_slot(key)

        with self._lock:
            slot = self._live_slot(key, anchors)
            if slot is None:
                try:
                    refs = tuple(weakref.ref(a, _on_death) for a in anchors)
                except TypeError:
                    return  # unanchorable → uncacheable, like ExecutionCache
                anchor_ids = tuple(id(a) for a in anchors)
                slot = (refs, anchor_ids, [], {})
                self._slots[key] = slot
                for anchor_id in anchor_ids:
                    self._anchor_slots.setdefault(anchor_id, set()).add(key)
            entries = slot[2]
            for entry in entries:
                if entry.params == params:
                    entry.chunks = chunk_tuple
                    # A complete evaluation verifies every chunk, so any
                    # appended-UNKNOWN provisional marks are resolved.
                    entry.appended = frozenset()
                    break
            else:
                entries.append(_SketchEntry(params=params, chunks=chunk_tuple))
                if len(entries) > SKETCH_SLOT_CAPACITY:
                    victim = min(
                        range(len(entries)),
                        key=lambda i: (entries[i].hits, i),
                    )
                    del entries[victim]
            hit_counts = slot[3]
            for chunk in chunk_tuple:
                hit_counts[chunk] = hit_counts.get(chunk, 0) + 1

    def chunk_hits(
        self,
        template: tuple,
        anchors: list,
        chunk_rows: int,
        n_chunks: int,
    ) -> np.ndarray:
        """Dense per-chunk historical relevance counts for selection scoring."""
        key = self._slot_key(template, anchors, chunk_rows)
        out = np.zeros(n_chunks, dtype=np.float64)
        with self._lock:
            slot = self._live_slot(key, anchors)
            if slot is not None:
                for chunk, count in slot[3].items():
                    if 0 <= chunk < n_chunks:
                        out[chunk] = count
        return out

    def extend_on_append(
        self,
        mapping: dict[int, Any],
        old_rows: int,
        new_rows: int,
    ) -> int:
        """Re-anchor and extend sketches across an ``append_rows`` swap.

        ``mapping`` maps ``id(old_column) -> new_column`` for the
        replaced table.  Every slot whose anchors are all in the mapping
        (and still live) is migrated: the old slot is dropped (the
        invalidation primitive — the old anchors are about to be
        invalidated anyway) and a new slot keyed on the new column
        identities takes its place, with each entry's chunk set rewritten
        instead of discarded:

        * chunks in the stable prefix (ranges identical under both row
          counts) keep their recorded relevance verdicts — their rows are
          byte-identical after ``concat``;
        * every chunk from the first changed boundary onward is added and
          marked appended-UNKNOWN: it may hold matching rows (new data,
          or old data reshuffled across boundaries), so it must be
          scanned until the next complete evaluation re-records it.

        Dominance serving stays exact under this rewrite, which is the
        whole point: a retained sketch still proves every *unlisted*
        chunk holds no matching rows.  Returns the number of slots
        retained (the ``ingest.sketches_retained`` counter).
        """
        retained = 0
        with self._lock:
            for key in list(self._slots):
                template, anchor_ids, chunk_rows = key
                if not all(a in mapping for a in anchor_ids):
                    continue
                slot = self._slots.get(key)
                if slot is None:
                    continue
                if any(ref() is None for ref in slot[0]):
                    self._drop_slot(key)
                    continue
                old_ranges = chunk_ranges(old_rows, chunk_rows)
                new_ranges = chunk_ranges(new_rows, chunk_rows)
                first_changed = 0
                limit = min(len(old_ranges), len(new_ranges))
                while (
                    first_changed < limit
                    and old_ranges[first_changed] == new_ranges[first_changed]
                ):
                    first_changed += 1
                tail = frozenset(range(first_changed, len(new_ranges)))
                new_anchors = [mapping[a] for a in anchor_ids]
                new_key = (
                    template,
                    tuple(id(a) for a in new_anchors),
                    chunk_rows,
                )

                def _on_death(
                    _ref, key=new_key, store_ref=weakref.ref(self)
                ):
                    store = store_ref()
                    if store is not None:
                        store._drop_slot(key)

                try:
                    refs = tuple(
                        weakref.ref(a, _on_death) for a in new_anchors
                    )
                except TypeError:
                    self._drop_slot(key)
                    continue
                entries = [
                    _SketchEntry(
                        params=entry.params,
                        chunks=tuple(
                            sorted(
                                {c for c in entry.chunks if c < first_changed}
                                | tail
                            )
                        ),
                        hits=entry.hits,
                        appended=frozenset(
                            c for c in entry.appended if c < first_changed
                        )
                        | tail,
                    )
                    for entry in slot[2]
                ]
                hit_counts = dict(slot[3])
                self._drop_slot(key)
                new_ids = tuple(id(a) for a in new_anchors)
                self._slots[new_key] = (refs, new_ids, entries, hit_counts)
                for anchor_id in new_ids:
                    self._anchor_slots.setdefault(anchor_id, set()).add(
                        new_key
                    )
                retained += 1
        return retained

    def invalidate_object(self, obj: Any) -> None:
        """Drop every slot anchored on ``obj`` (id-reuse guarded)."""
        with self._lock:
            keys = self._anchor_slots.get(id(obj))
            for key in list(keys or ()):
                slot = self._slots.get(key)
                if slot is not None and any(ref() is obj for ref in slot[0]):
                    self._drop_slot(key)

    def clear(self) -> None:
        """Drop every sketch (safe — sketches are pure acceleration)."""
        with self._lock:
            self._slots.clear()
            self._anchor_slots.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)


#: Process-wide sketch store; worker processes build their own at import.
_GLOBAL_STORE = SketchStore()


def get_sketch_store() -> SketchStore:
    """The process-wide provenance-sketch store."""
    return _GLOBAL_STORE


def reset_sketch_store() -> None:
    """Replace the store wholesale (forked pool workers; tests).

    A forked child inherits the parent's store — possibly mid-mutation
    with the lock held — so, like the execution cache in
    :mod:`repro.engine.procpool`, workers swap in a fresh object rather
    than trusting inherited state.
    """
    global _GLOBAL_STORE
    _GLOBAL_STORE = SketchStore()


def _on_invalidation(obj: Any) -> None:
    # Must not raise (listener contract); invalidate_object is total.
    _GLOBAL_STORE.invalidate_object(obj)


add_invalidation_listener(_on_invalidation)


def _on_append(event: AppendEvent) -> None:
    """Append listener: retain sketches across the table swap.

    Fires before the old table is invalidated, so slots still anchored
    on the old columns can be migrated onto the new ones; the
    invalidation that follows then finds nothing left to drop.
    """
    mapping = {id(old): new for _name, old, new in event.columns}
    retained = _GLOBAL_STORE.extend_on_append(
        mapping, event.old_rows, event.new_rows
    )
    if retained:
        get_registry().incr("ingest.sketches_retained", retained)


add_append_listener(_on_append)


def sketch_anchors(table: Table, predicate: Predicate) -> list:
    """The identity anchors for ``predicate`` over ``table``.

    The same objects — the referenced columns in sorted-name order — that
    key the executor's ``predicate_mask`` cache entries, so both caches
    invalidate in lockstep when a column is replaced.
    """
    return [table.column(name) for name in sorted(predicate.columns())]


def realized_chunks(
    mask: np.ndarray, n_rows: int, chunk_rows: int
) -> np.ndarray:
    """Indices of chunks with at least one set bit in a full-table mask."""
    ranges = chunk_ranges(n_rows, chunk_rows)
    if not ranges or mask.shape[0] != n_rows:
        return np.zeros(0, dtype=np.int64)
    starts = [start for start, _ in ranges]
    hits = np.add.reduceat(mask.astype(np.int64), starts) > 0
    return np.flatnonzero(hits).astype(np.int64)


# ----------------------------------------------------------------------
# PS3-style budgeted selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChunkSelectionPlan:
    """A deterministic weighted chunk subset with inclusion probabilities.

    ``chunk_indices[i]`` was drawn with first-order inclusion probability
    ``probabilities[i]``; ``verdicts[i]`` is its zone-map verdict (so the
    executor can skip mask evaluation for proven-ALL_TRUE chunks).  The
    plan is a plain picklable value: for the process backend it is
    computed once in the parent and shipped with the piece payload, so
    every backend executes the *same* draw.
    """

    chunk_indices: tuple[int, ...]
    probabilities: tuple[float, ...]
    verdicts: tuple[int, ...]
    n_chunks: int
    n_eligible: int

    @property
    def ht_weight_range(self) -> tuple[float, float]:
        """(min, max) Horvitz–Thompson row weight across selected chunks."""
        inverse = [1.0 / p for p in self.probabilities]
        return (min(inverse), max(inverse))


def _numeric_bounds(
    table: Table, column: str, options: ExecutionOptions
) -> tuple[np.ndarray, np.ndarray] | None:
    zone_map = zonemap.column_zone_map(table.column(column), options)
    if zone_map.is_string:
        return None
    mins = np.array([s[0] for s in zone_map.summaries], dtype=np.float64)
    maxs = np.array([s[1] for s in zone_map.summaries], dtype=np.float64)
    return mins, maxs


def _interval_fractions(
    table: Table,
    column: str,
    low: float,
    high: float,
    options: ExecutionOptions,
    n_chunks: int,
) -> np.ndarray:
    """Per-chunk fraction of the value range inside ``[low, high]``."""
    bounds = _numeric_bounds(table, column, options)
    if bounds is None:
        return np.full(n_chunks, 0.5)
    mins, maxs = bounds
    width = maxs - mins
    overlap = np.minimum(maxs, high) - np.maximum(mins, low)
    with np.errstate(invalid="ignore"):
        frac = np.where(
            width > 0,
            np.clip(overlap / np.where(width > 0, width, 1.0), 0.0, 1.0),
            ((mins >= low) & (mins <= high)).astype(np.float64),
        )
    return np.where(np.isnan(frac), 0.5, frac)


def _code_set_fractions(
    table: Table, column: str, values, options: ExecutionOptions, n_chunks: int
) -> np.ndarray:
    """Per-chunk distinct-code density of string membership predicates."""
    col = table.column(column)
    zone_map = zonemap.column_zone_map(col, options)
    if not zone_map.is_string:
        return np.full(n_chunks, 0.5)
    targets = {
        code for code in (col.encode_value(v) for v in values) if code >= 0
    }
    out = np.empty(n_chunks, dtype=np.float64)
    for i, (code_set, _nulls) in enumerate(zone_map.summaries):
        if code_set is None:  # distinct cutoff hit: density unknown
            out[i] = 0.5
        elif not code_set:
            out[i] = 0.0
        else:
            out[i] = len(code_set & targets) / len(code_set)
    return out


def overlap_fractions(
    table: Table,
    predicate: Predicate | None,
    options: ExecutionOptions,
    n_chunks: int,
) -> np.ndarray:
    """Crude per-chunk predicate-overlap estimates in ``[0, 1]``.

    These only shape the *sampling design* (which chunks are likelier to
    be drawn); Horvitz–Thompson reweighting keeps the estimates unbiased
    whatever the scores are, so rough is fine — better scores just mean
    lower variance.  Unscorable shapes default to 0.5.
    """
    if predicate is None:
        return np.ones(n_chunks)
    if isinstance(predicate, And):
        out = np.ones(n_chunks)
        for operand in predicate.operands:
            out *= overlap_fractions(table, operand, options, n_chunks)
        return out
    if isinstance(predicate, Or):
        out = np.zeros(n_chunks)
        for operand in predicate.operands:
            out += overlap_fractions(table, operand, options, n_chunks)
        return np.minimum(out, 1.0)
    if isinstance(predicate, Not):
        return 1.0 - overlap_fractions(
            table, predicate.operand, options, n_chunks
        )
    if isinstance(predicate, Between):
        if not all(
            isinstance(v, (bool, int, float, np.integer, np.floating))
            for v in (predicate.low, predicate.high)
        ):
            return np.full(n_chunks, 0.5)
        return _interval_fractions(
            table,
            predicate.column,
            float(predicate.low),
            float(predicate.high),
            options,
            n_chunks,
        )
    if isinstance(predicate, Compare) and isinstance(
        predicate.value, (bool, int, float, np.integer, np.floating)
    ):
        value = float(predicate.value)
        if predicate.op in (CompareOp.GE, CompareOp.GT):
            return _interval_fractions(
                table, predicate.column, value, np.inf, options, n_chunks
            )
        if predicate.op in (CompareOp.LE, CompareOp.LT):
            return _interval_fractions(
                table, predicate.column, -np.inf, value, options, n_chunks
            )
    if isinstance(predicate, Equals):
        return _code_set_fractions(
            table, predicate.column, [predicate.value], options, n_chunks
        )
    if isinstance(predicate, InSet):
        return _code_set_fractions(
            table, predicate.column, predicate.values, options, n_chunks
        )
    return np.full(n_chunks, 0.5)


def _waterfill_probabilities(scores: np.ndarray, n_draw: int) -> np.ndarray:
    """Inclusion probabilities ``π ∝ score`` capped at 1, summing to ``n_draw``.

    Classic waterfilling: chunks whose proportional share exceeds 1 are
    pinned there and the residual draw count is re-spread over the rest;
    iterate until no new chunk hits the cap.
    """
    scores = np.where(scores > 0, scores, 1e-12).astype(np.float64)
    n = scores.shape[0]
    pi = np.zeros(n, dtype=np.float64)
    capped = np.zeros(n, dtype=bool)
    for _ in range(n):
        free = ~capped
        remaining = n_draw - int(capped.sum())
        if remaining <= 0 or not free.any():
            break
        share = remaining * scores[free] / scores[free].sum()
        pi[free] = share
        newly = free & (pi >= 1.0)
        if not newly.any():
            break
        capped |= newly
    pi[capped] = 1.0
    return np.clip(pi, 0.0, 1.0)


def _systematic_draw(pi: np.ndarray, seed: int) -> np.ndarray:
    """Without-replacement systematic PPS draw realizing ``π`` exactly.

    One uniform start ``u`` plus unit-spaced points over the cumulative
    probabilities — the textbook design whose first-order inclusion
    probabilities equal ``π`` (up to float rounding of the total), with
    a single random number so the draw is trivially reproducible.
    """
    total = float(pi.sum())
    n_points = max(1, int(round(total)))
    cumulative = np.cumsum(pi)
    u = float(np.random.default_rng(seed).random())
    points = (u + np.arange(n_points)) * (total / n_points)
    positions = np.searchsorted(cumulative, points, side="right")
    positions = np.unique(np.clip(positions, 0, pi.shape[0] - 1))
    return positions


def _derive_seed(options: ExecutionOptions, n_chunks: int, n_eligible: int) -> int:
    """Deterministic per-scan seed: same inputs → same draw everywhere."""
    return (
        options.selection_seed * 1000003 + n_chunks * 8191 + n_eligible
    ) % (2**31 - 1)


def plan_chunk_selection(
    table: Table,
    predicate: Predicate | None,
    options: ExecutionOptions,
) -> ChunkSelectionPlan | None:
    """A budgeted chunk subset for one table scan, or ``None`` for full scan.

    ``None`` when selection is off, the table has at most one chunk, or
    the budget is not binding (the eligible rows already fit) — in that
    last case the full scan runs and answers are identical to
    ``chunk_selection=False``, preserving the opt-in equivalence.

    The plan is a pure function of the zone-map summaries, the sketch
    history, and ``selection_seed`` — the determinism sweep relies on
    this to pin byte-identical answers across backends and worker counts.
    """
    if not options.chunk_selection:
        return None
    ranges = chunk_ranges(table.n_rows, options.chunk_rows)
    n_chunks = len(ranges)
    if n_chunks <= 1:
        return None
    if predicate is None:
        verdicts = np.full(n_chunks, zonemap.VERDICT_ALL_TRUE, dtype=np.int8)
    else:
        verdicts = zonemap.chunk_verdicts(table, predicate, options)
    eligible_mask = verdicts != zonemap.VERDICT_ALL_FALSE

    # A dominating sketch narrows eligibility further: chunks outside it
    # provably hold no matching rows.  This probe is planning, not the
    # executor's fast path, so it does not count toward sketch hit/miss.
    template = None
    if predicate is not None and predicate.cache_safe():
        template = predicate_template(predicate)
    anchors = None
    store = get_sketch_store()
    if template is not None:
        anchors = sketch_anchors(table, predicate)
        sketched = store.lookup(
            template[0],
            anchors,
            template[1],
            options.chunk_rows,
            count_stats=False,
        )
        if sketched is not None:
            in_sketch = np.zeros(n_chunks, dtype=bool)
            in_sketch[sketched.chunks] = True
            eligible_mask &= in_sketch

    eligible = np.flatnonzero(eligible_mask)
    n_eligible = int(eligible.shape[0])
    if n_eligible == 0:
        return None
    sizes = np.array([stop - start for start, stop in ranges], dtype=np.int64)
    eligible_rows = int(sizes[eligible].sum())
    if eligible_rows <= options.selection_budget:
        return None  # budget not binding: scan everything, stay exact

    scores = np.full(n_chunks, SCORE_FLOOR)
    scores += overlap_fractions(table, predicate, options, n_chunks)
    if template is not None and anchors is not None:
        hits = store.chunk_hits(
            template[0], anchors, options.chunk_rows, n_chunks
        )
        peak = hits.max()
        if peak > 0:
            scores += 0.5 * hits / peak
    scores = scores[eligible]

    mean_rows = eligible_rows / n_eligible
    n_draw = int(round(options.selection_budget / mean_rows))
    n_draw = max(1, min(n_draw, n_eligible))
    if n_draw >= n_eligible:
        return None  # the draw would take everything: full scan is exact

    pi = _waterfill_probabilities(scores, n_draw)
    seed = _derive_seed(options, n_chunks, n_eligible)
    positions = _systematic_draw(pi, seed)
    selected = eligible[positions]
    registry = get_registry()
    registry.incr("selection.plans")
    registry.incr("selection.chunks_eligible", n_eligible)
    registry.incr("selection.chunks_selected", int(selected.shape[0]))
    return ChunkSelectionPlan(
        chunk_indices=tuple(int(c) for c in selected),
        probabilities=tuple(float(p) for p in pi[positions]),
        verdicts=tuple(int(v) for v in verdicts[selected]),
        n_chunks=n_chunks,
        n_eligible=n_eligible,
    )


def ht_row_weights(
    plan: ChunkSelectionPlan, n_rows: int, chunk_rows: int
) -> np.ndarray:
    """Full-length Horvitz–Thompson row weights for a plan.

    Rows in selected chunks weigh ``1 / π(chunk)``; everything else is 0
    (those rows are excluded by the plan's keep mask anyway, but a zero
    weight keeps any stray inclusion from biasing a sum).
    """
    ranges = chunk_ranges(n_rows, chunk_rows)
    weights = np.zeros(n_rows, dtype=np.float64)
    for chunk, probability in zip(plan.chunk_indices, plan.probabilities):
        start, stop = ranges[chunk]
        weights[start:stop] = 1.0 / probability
    return weights


__all__ = [
    "ChunkSelectionPlan",
    "SCORE_FLOOR",
    "SKETCH_SLOT_CAPACITY",
    "SketchHit",
    "SketchStore",
    "dominates",
    "get_sketch_store",
    "ht_row_weights",
    "overlap_fractions",
    "plan_chunk_selection",
    "predicate_template",
    "realized_chunks",
    "reset_sketch_store",
    "sketch_anchors",
]
