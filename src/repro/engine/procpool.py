"""Process-based execution backend: worker pool + shared-memory column arena.

The thread backend (:mod:`repro.engine.parallel`) scatters §4.2.2 pieces
and pre-processing chunks across threads, but the hot loops spend enough
time holding the GIL that four worker threads run *slower* than the
serial loop (``BENCH_parallel.json`` v1: 0.85x execution, 0.58x
pre-processing).  This module provides the escape hatch: a sibling
``ProcessPoolExecutor`` selected via ``ExecutionOptions.executor ==
"process"``, fed with **small picklable descriptors** instead of tables.

Shared-memory column arena
--------------------------
Pickling a sample table into every task would serialise megabytes per
piece and erase the multi-core win.  Instead the parent publishes each
numpy buffer once into a :mod:`multiprocessing.shared_memory` segment:

* :meth:`ColumnArena.publish_array` copies ``Column.data`` (or any
  ndarray) into a segment and returns an :class:`ArrayHandle` — segment
  name, dtype, shape — a few hundred bytes regardless of data size;
* string dictionaries are pickled **once** into a :class:`BlobHandle`
  segment, not once per task;
* workers attach by name and reconstruct zero-copy, read-only
  ``np.ndarray`` views (:func:`resolve_array` / :func:`resolve_column` /
  :func:`resolve_table`), cached per handle so repeated tasks in one
  worker reuse the same ``Column`` objects — which keeps the worker-side
  execution cache and zone maps effective across tasks.

Publishes are keyed by **object identity validated through weakrefs**,
the same discipline the execution cache uses: an entry is reused only
while the anchor is the same live object, and dies with it (the weakref
callback unlinks the segment).  Explicit invalidation
(``Database.append_rows`` / ``drop_table``, incremental sample inserts)
flows through the execution cache's invalidation listeners, so replaced
tables release their segments immediately.  Everything left is unlinked
by an ``atexit`` hook; each segment is unlinked exactly once, by the
process that created it.

Determinism
-----------
The scatter mirrors :func:`repro.engine.parallel.parallel_map`: the work
list is built serially, tasks are pure (module-level functions over
descriptors — lint rule RL010), and results are gathered in submission
order, so floating-point reductions associate exactly as in the serial
loop and answers are byte-identical across ``executor`` backends, worker
counts, and chunk layouts.

Crash semantics
---------------
A worker killed mid-task surfaces as
:class:`~repro.errors.InternalError` (never a hang): the broken pool is
discarded and a fresh pool is spawned lazily on the next scatter.
Workers start via :func:`_init_worker`, which replaces the inherited
process-wide singletons (cache, registry, default options, locks) with
fresh ones — under the ``fork`` start method another parent thread may
have held a lock at fork time, and the inherited caches anchor parent
objects the worker will never query.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.engine.bitmask import BitmaskVector
from repro.engine.cache import (
    AppendEvent,
    add_append_listener,
    add_invalidation_listener,
)
from repro.engine.column import Column, ColumnKind, column_from_parts
from repro.engine.parallel import (
    MAX_POOL_WORKERS,
    ExecutionOptions,
    chunk_ranges,
)
from repro.engine.table import Table
from repro.errors import InternalError
from repro.obs.registry import get_registry
from repro.obs.trace import NULL_SPAN, Span

#: PID of the process that imported this module; forked pool workers
#: inherit module state (including ``atexit`` hooks) and must never shut
#: down the parent's pool or unlink the parent's segments.
_OWNER_PID = os.getpid()


# ----------------------------------------------------------------------
# Task descriptors (small, picklable — the only thing tasks carry)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayHandle:
    """Descriptor of one shared-memory ndarray.

    ``segment`` is ``None`` for empty arrays (POSIX shared memory cannot
    be zero-sized); workers materialise ``np.empty`` instead.
    """

    segment: str | None
    dtype: str
    shape: tuple[int, ...]


@dataclass(frozen=True)
class BlobHandle:
    """Descriptor of a pickled object stored once in shared memory."""

    segment: str
    n_bytes: int


@dataclass(frozen=True)
class ColumnHandle:
    """Descriptor of a :class:`~repro.engine.column.Column`."""

    kind: str
    data: ArrayHandle
    dictionary: BlobHandle | None


@dataclass(frozen=True)
class BitmaskHandle:
    """Descriptor of a :class:`~repro.engine.bitmask.BitmaskVector`."""

    n_bits: int
    words: ArrayHandle


@dataclass(frozen=True)
class TableHandle:
    """Descriptor of a (possibly column-pruned) table."""

    name: str
    columns: tuple[tuple[str, ColumnHandle], ...]
    bitmask: BitmaskHandle | None
    n_rows: int


# ----------------------------------------------------------------------
# Parent side: the arena
# ----------------------------------------------------------------------
class _Segment:
    """One shared-memory segment, unlinked exactly once by its creator.

    ``refs`` counts the arena entries owning the segment; the unlink
    happens when the last owner releases it.  Today each segment has a
    single owning entry, but the count keeps sharing (two anchors
    publishing the same buffer) safe by construction.
    """

    __slots__ = ("name", "shm", "owner_pid", "refs", "released")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.name = shm.name
        self.shm = shm
        self.owner_pid = os.getpid()
        self.refs = 1
        self.released = False

    def release(self) -> bool:
        """Drop one reference; unlink on the last.  Returns whether the
        segment was unlinked (always false in forked children — only the
        creating process may unlink a name from the shared namespace)."""
        if os.getpid() != self.owner_pid or self.released:
            return False
        self.refs -= 1
        if self.refs > 0:
            return False
        self.released = True
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self.shm.close()
        return True


@dataclass
class _Entry:
    """One published object: identity anchor, its handle, owned segments."""

    ref: weakref.ref
    handle: Any
    segments: tuple[_Segment, ...]


class ColumnArena:
    """Identity-keyed registry of shared-memory copies of engine buffers.

    Thread-safe (one re-entrant lock — weakref death callbacks can fire
    while the owning thread already holds it).  Publishing is an
    optimisation, never a requirement: a released entry is simply
    republished on the next scatter.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._owner_pid = os.getpid()
        self._entries: dict[int, _Entry] = {}
        self._created: list[str] = []
        self._released: list[str] = []

    # -- publishing ----------------------------------------------------
    def _create_segment(self, n_bytes: int) -> _Segment:
        segment = _Segment(
            shared_memory.SharedMemory(create=True, size=max(1, n_bytes))
        )
        self._created.append(segment.name)
        get_registry().incr("arena.segments_created")
        return segment

    def _store(
        self, anchor: Any, handle: Any, segments: tuple[_Segment, ...]
    ) -> None:
        key = id(anchor)

        def _on_death(_ref: weakref.ref, key: int = key) -> None:
            arena = _arena_ref()
            if arena is not None:
                arena._release_key(key)

        _arena_ref = weakref.ref(self)
        with self._lock:
            self._entries[key] = _Entry(
                ref=weakref.ref(anchor, _on_death),
                handle=handle,
                segments=segments,
            )

    def publish_array(self, array: np.ndarray) -> ArrayHandle:
        """Publish one ndarray, reusing the live entry for this object."""
        registry = get_registry()
        with self._lock:
            entry = self._entries.get(id(array))
            if entry is not None and entry.ref() is array:
                registry.incr("arena.publish_hits")
                return entry.handle
            started = time.perf_counter()
            contiguous = np.ascontiguousarray(array)
            if contiguous.nbytes == 0:
                handle = ArrayHandle(
                    None, str(contiguous.dtype), tuple(contiguous.shape)
                )
                segments: tuple[_Segment, ...] = ()
            else:
                segment = self._create_segment(contiguous.nbytes)
                view = np.ndarray(
                    contiguous.shape,
                    dtype=contiguous.dtype,
                    buffer=segment.shm.buf,
                )
                view[...] = contiguous
                handle = ArrayHandle(
                    segment.name, str(contiguous.dtype), tuple(contiguous.shape)
                )
                segments = (segment,)
            self._store(array, handle, segments)
            registry.observe(
                "arena.publish_seconds", time.perf_counter() - started
            )
            return handle

    def publish_column(self, column: Column) -> ColumnHandle:
        """Publish a column: data via :meth:`publish_array`, the string
        dictionary pickled once into its own segment."""
        registry = get_registry()
        with self._lock:
            entry = self._entries.get(id(column))
            if entry is not None and entry.ref() is column:
                registry.incr("arena.publish_hits")
                return entry.handle
            data_handle = self.publish_array(column.data)
            blob: BlobHandle | None = None
            segments: tuple[_Segment, ...] = ()
            if column.dictionary is not None:
                started = time.perf_counter()
                payload = pickle.dumps(
                    column.dictionary, protocol=pickle.HIGHEST_PROTOCOL
                )
                segment = self._create_segment(len(payload))
                segment.shm.buf[: len(payload)] = payload
                blob = BlobHandle(segment.name, len(payload))
                segments = (segment,)
                registry.observe(
                    "arena.publish_seconds", time.perf_counter() - started
                )
            handle = ColumnHandle(column.kind.value, data_handle, blob)
            self._store(column, handle, segments)
            return handle

    def publish_bitmask(self, vector: BitmaskVector) -> BitmaskHandle:
        """Publish a bitmask vector (its words array backs the handle)."""
        registry = get_registry()
        with self._lock:
            entry = self._entries.get(id(vector))
            if entry is not None and entry.ref() is vector:
                registry.incr("arena.publish_hits")
                return entry.handle
            handle = BitmaskHandle(vector.n_bits, self.publish_array(vector.words))
            self._store(vector, handle, ())
            return handle

    def publish_table(
        self, table: Table, columns: Iterable[str] | None = None
    ) -> TableHandle:
        """Publish (a column subset of) a table.

        ``columns`` restricts the handle to what the task actually reads
        — rewritten pieces reference a handful of the stored columns, so
        the parent never copies the rest into shared memory.  The handle
        itself is rebuilt per call (it is cheap); the per-column segments
        are the cached part.
        """
        names = list(columns) if columns is not None else list(table.column_names)
        published = tuple(
            (name, self.publish_column(table.column(name))) for name in names
        )
        bitmask = (
            self.publish_bitmask(table.bitmask)
            if table.bitmask is not None
            else None
        )
        return TableHandle(table.name, published, bitmask, table.n_rows)

    # -- release -------------------------------------------------------
    def _release_key(self, key: int) -> int:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return 0
            for segment in entry.segments:
                if segment.release():
                    self._released.append(segment.name)
                    get_registry().incr("arena.segments_released")
            return 1

    def release_object(self, obj: Any) -> int:
        """Release the entry anchored on ``obj`` (and its buffers).

        Columns release their data-array entry too; bitmask vectors their
        words entry; tables every column plus the bitmask.  Returns the
        number of entries dropped.
        """
        released = 0
        with self._lock:
            entry = self._entries.get(id(obj))
            if entry is not None:
                target = entry.ref()
                if target is None or target is obj:
                    released += self._release_key(id(obj))
            if isinstance(obj, Column):
                released += self.release_object(obj.data)
            elif isinstance(obj, BitmaskVector):
                released += self.release_object(obj.words)
            elif isinstance(obj, Table):
                released += self.release_table(obj)
        return released

    def release_table(self, table: Table) -> int:
        """Release every column (and the bitmask) of ``table``."""
        released = 0
        with self._lock:
            for name in table.column_names:
                released += self.release_object(table.column(name))
            if table.bitmask is not None:
                released += self.release_object(table.bitmask)
        return released

    def release_all(self) -> int:
        """Release every entry (interpreter exit, session close, tests)."""
        with self._lock:
            keys = list(self._entries)
            return sum(self._release_key(key) for key in keys)

    # -- introspection (tests, benchmarks) -----------------------------
    def active_segment_names(self) -> tuple[str, ...]:
        """Names of segments currently owned by live entries."""
        with self._lock:
            return tuple(
                segment.name
                for entry in self._entries.values()
                for segment in entry.segments
                if not segment.released
            )

    def created_segment_names(self) -> tuple[str, ...]:
        """Every segment name this arena ever created."""
        with self._lock:
            return tuple(self._created)

    def released_segment_names(self) -> tuple[str, ...]:
        """Every segment name this arena unlinked."""
        with self._lock:
            return tuple(self._released)

    def leaked_segment_names(self) -> tuple[str, ...]:
        """Released names still attachable — must always be empty."""
        leaked = []
        for name in self.released_segment_names():
            try:
                probe = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            probe.close()
            leaked.append(name)
        return tuple(leaked)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_ARENA: ColumnArena | None = None
_ARENA_LOCK = threading.Lock()
_LISTENER_REGISTERED = False


def _on_invalidate(obj: Any) -> None:
    """Execution-cache invalidation listener: release arena entries for
    invalidated anchors (``append_rows``/``insert_rows``/``drop_table``)."""
    arena = _ARENA
    if arena is not None and os.getpid() == arena._owner_pid:
        arena.release_object(obj)


def _on_append(event: AppendEvent) -> None:
    """Append-event listener: retire the superseded table's segments.

    Every concat produces fresh backing arrays, so the old table's
    published segments can never serve the merged table — drop them
    eagerly (the grown columns republish lazily on the next scatter).
    Runs before the append's ``invalidate_table``, so the releases are
    attributable to ingestion rather than generic invalidation.
    """
    arena = _ARENA
    if arena is None or os.getpid() != arena._owner_pid:
        return
    released = arena.release_table(event.old_table)
    if released:
        get_registry().incr("ingest.arena_releases", released)


def get_arena() -> ColumnArena:
    """The process-wide column arena, created lazily."""
    global _ARENA, _LISTENER_REGISTERED
    with _ARENA_LOCK:
        if _ARENA is None:
            _ARENA = ColumnArena()
            if not _LISTENER_REGISTERED:
                add_invalidation_listener(_on_invalidate)
                add_append_listener(_on_append)
                _LISTENER_REGISTERED = True
        return _ARENA


# ----------------------------------------------------------------------
# The process pool (lazily started, grown on demand, never shrunk)
# ----------------------------------------------------------------------
_PROC_POOL: ProcessPoolExecutor | None = None
_PROC_POOL_WORKERS = 0
_PROC_LOCK = threading.Lock()
_IN_WORKER = False


def _mp_context():
    """``fork`` where available (cheap worker start, no re-import); the
    platform default (``spawn``) otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


def in_worker() -> bool:
    """Whether the current process is a pool worker (nested scatters
    degrade to serial loops, mirroring the thread pool's guard)."""
    return _IN_WORKER


def _init_worker() -> None:
    """Worker initialiser: mark the process and reset inherited state.

    Under ``fork`` the worker inherits the parent's module globals —
    including locks another parent thread may have held at fork time and
    caches anchored on parent objects.  Every process-wide singleton the
    worker may touch is therefore *replaced* (fresh locks included)
    rather than mutated through possibly-poisoned locks.  The arena
    reference is dropped without releasing: only the parent may unlink.
    """
    global _IN_WORKER, _ARENA, _ARENA_LOCK, _PROC_LOCK
    global _PROC_POOL, _PROC_POOL_WORKERS
    _IN_WORKER = True
    # Fresh locks first (the inherited ones may be held by a parent
    # thread that no longer exists here), then the pool globals under
    # the worker's own lock — the same discipline the parent follows.
    _ARENA_LOCK = threading.Lock()
    _PROC_LOCK = threading.Lock()
    with _PROC_LOCK:
        _ARENA = None
        _PROC_POOL = None
        _PROC_POOL_WORKERS = 0
    _WORKER_SHM.clear()
    _WORKER_ARRAYS.clear()
    _WORKER_BLOBS.clear()
    _WORKER_COLUMNS.clear()
    _WORKER_VECTORS.clear()
    _WORKER_TABLES.clear()
    from repro.engine import cache as cache_module
    from repro.engine import parallel as parallel_module
    from repro.engine import selection as selection_module
    from repro.obs import registry as registry_module

    cache_module._GLOBAL_CACHE = cache_module.ExecutionCache()
    parallel_module._DEFAULT_OPTIONS = parallel_module.ExecutionOptions()
    parallel_module._OPTIONS_LOCK = threading.Lock()
    parallel_module._POOL = None
    parallel_module._POOL_WORKERS = 0
    parallel_module._POOL_LOCK = threading.Lock()
    registry_module._GLOBAL_REGISTRY = registry_module.MetricsRegistry()
    selection_module.reset_sketch_store()


def get_process_pool(workers: int) -> ProcessPoolExecutor:
    """The shared process pool, lazily started with >= ``workers``
    processes.  Grow-only, exactly like the thread pool: a larger
    request replaces the pool; the old one drains without blocking."""
    global _PROC_POOL, _PROC_POOL_WORKERS
    workers = max(1, min(workers, MAX_POOL_WORKERS))
    with _PROC_LOCK:
        if _PROC_POOL is None or _PROC_POOL_WORKERS < workers:
            old = _PROC_POOL
            _PROC_POOL = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_mp_context(),
                initializer=_init_worker,
            )
            _PROC_POOL_WORKERS = workers
            if old is not None:
                old.shutdown(wait=False)
        return _PROC_POOL


def shutdown_process_pool() -> None:
    """Stop the process pool (tests / interpreter teardown)."""
    global _PROC_POOL, _PROC_POOL_WORKERS
    with _PROC_LOCK:
        pool, _PROC_POOL, _PROC_POOL_WORKERS = _PROC_POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=True)


def _discard_broken_pool() -> None:
    """Forget a broken pool so the next scatter respawns fresh workers."""
    global _PROC_POOL, _PROC_POOL_WORKERS
    with _PROC_LOCK:
        pool, _PROC_POOL, _PROC_POOL_WORKERS = _PROC_POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=False)


# ----------------------------------------------------------------------
# Scatter/gather
# ----------------------------------------------------------------------
#: Wall-clock seconds the *current worker task* spent attaching segments;
#: reset per task by :func:`_invoke` and reported back to the parent
#: (worker processes cannot write the parent's metrics registry).
_ATTACH_SECONDS = 0.0


def _invoke(fn: Callable[[Any], Any], payload: Any) -> tuple[Any, float]:
    """Worker entry point: run one task, reporting its attach time."""
    global _ATTACH_SECONDS
    _ATTACH_SECONDS = 0.0
    result = fn(payload)
    return result, _ATTACH_SECONDS


def process_map(
    fn: Callable[[Any], Any],
    payloads: Iterable[Any],
    options: ExecutionOptions,
    span: Span = NULL_SPAN,
) -> list[Any]:
    """Apply ``fn`` to every payload on the process pool, in order.

    ``fn`` must be a module-level function and each payload a small
    picklable descriptor (lint rule RL010); workers resolve descriptors
    against the arena.  Results are gathered by submission index —
    byte-identical association order to the serial loop.  Degrades to a
    serial loop in-parent for a single payload, ``workers <= 1``, or
    when already inside a worker (descriptors resolve fine in the parent
    too — the arena creator can attach to its own segments).

    A worker death (e.g. the OS OOM-killer) raises
    :class:`~repro.errors.InternalError` after discarding the pool;
    ordinary task exceptions propagate unchanged.
    """
    payloads = list(payloads)
    if not payloads:
        return []
    workers = options.workers
    if _IN_WORKER or workers <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    pool = get_process_pool(workers)
    started = time.perf_counter()
    try:
        futures = [pool.submit(_invoke, fn, payload) for payload in payloads]
        submitted = time.perf_counter()
        results = []
        attach_seconds = 0.0
        for future in futures:
            result, attached = future.result()
            results.append(result)
            attach_seconds += attached
    except BrokenProcessPool as exc:
        _discard_broken_pool()
        raise InternalError(
            "a process-pool worker died while executing a scattered task; "
            "the pool was discarded and will respawn on the next scatter"
        ) from exc
    gathered = time.perf_counter()
    scatter_span = span.child("pool.scatter")
    scatter_span.seconds = gathered - started
    scatter_span.annotate(
        tasks=len(payloads),
        backend="process",
        submit_seconds=submitted - started,
        wait_seconds=gathered - submitted,
        attach_seconds=attach_seconds,
    )
    registry = get_registry()
    registry.incr("procpool.tasks_scattered", len(payloads))
    registry.observe("procpool.submit_seconds", submitted - started)
    registry.observe("procpool.wait_seconds", gathered - submitted)
    registry.observe("procpool.attach_seconds", attach_seconds)
    return results


def _apply_handle_range(item: tuple[Callable[..., Any], Any, int, int]) -> Any:
    """Pool task: apply ``fn(payload, start, stop)`` for one row chunk."""
    fn, payload, start, stop = item
    return fn(payload, start, stop)


def process_map_row_chunks(
    fn: Callable[[Any, int, int], Any],
    payload: Any,
    n_rows: int,
    options: ExecutionOptions,
    span: Span = NULL_SPAN,
) -> list[Any]:
    """Process-backend sibling of
    :func:`repro.engine.parallel.map_row_chunks`: map a module-level
    ``fn(payload, start, stop)`` over the deterministic
    :func:`chunk_ranges` layout, results in chunk order."""
    items = [
        (fn, payload, start, stop)
        for start, stop in chunk_ranges(n_rows, options.chunk_rows)
    ]
    return process_map(_apply_handle_range, items, options, span=span)


# ----------------------------------------------------------------------
# Worker side: descriptor resolution (zero-copy views, cached per handle)
# ----------------------------------------------------------------------
_WORKER_SHM: dict[str, shared_memory.SharedMemory] = {}
_WORKER_ARRAYS: dict[str, np.ndarray] = {}
_WORKER_BLOBS: dict[str, Any] = {}
_WORKER_COLUMNS: dict[ColumnHandle, Column] = {}
_WORKER_VECTORS: dict[BitmaskHandle, BitmaskVector] = {}
_WORKER_TABLES: dict[TableHandle, Table] = {}

#: Cached attachments before the caches are dropped wholesale.  Entries
#: for segments the parent has since unlinked keep their (anonymous)
#: memory alive until eviction or worker exit — bounded, and the name is
#: already gone from the namespace either way.
_WORKER_CACHE_LIMIT = 1024


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    shm = _WORKER_SHM.get(name)
    if shm is None:
        if len(_WORKER_SHM) >= _WORKER_CACHE_LIMIT:
            # Drop references only: mappings close when the last numpy
            # view dies (closing eagerly would invalidate live views).
            _WORKER_SHM.clear()
            _WORKER_ARRAYS.clear()
            _WORKER_BLOBS.clear()
            _WORKER_COLUMNS.clear()
            _WORKER_VECTORS.clear()
            _WORKER_TABLES.clear()
        shm = shared_memory.SharedMemory(name=name)
        _WORKER_SHM[name] = shm
    return shm


def resolve_array(handle: ArrayHandle) -> np.ndarray:
    """Zero-copy, read-only ndarray view of a published segment."""
    global _ATTACH_SECONDS
    if handle.segment is None:
        return np.empty(handle.shape, dtype=np.dtype(handle.dtype))
    cached = _WORKER_ARRAYS.get(handle.segment)
    if cached is not None:
        return cached
    started = time.perf_counter()
    shm = _attach_segment(handle.segment)
    view: np.ndarray = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf
    )
    view.flags.writeable = False
    _WORKER_ARRAYS[handle.segment] = view
    _ATTACH_SECONDS += time.perf_counter() - started
    return view


def resolve_blob(handle: BlobHandle) -> Any:
    """Unpickle a published blob (string dictionaries), cached per segment."""
    global _ATTACH_SECONDS
    cached = _WORKER_BLOBS.get(handle.segment)
    if cached is not None:
        return cached
    started = time.perf_counter()
    shm = _attach_segment(handle.segment)
    value = pickle.loads(bytes(shm.buf[: handle.n_bytes]))
    _WORKER_BLOBS[handle.segment] = value
    _ATTACH_SECONDS += time.perf_counter() - started
    return value


def resolve_column(handle: ColumnHandle) -> Column:
    """Reconstruct a column over the shared buffer, cached per handle.

    The cache keeps column *identity* stable across tasks in one worker,
    which is what makes the worker-side execution cache (group ids,
    predicate masks, zone maps — all keyed on column identity) effective.
    """
    cached = _WORKER_COLUMNS.get(handle)
    if cached is not None:
        return cached
    data = resolve_array(handle.data)
    dictionary = (
        resolve_blob(handle.dictionary)
        if handle.dictionary is not None
        else None
    )
    column = column_from_parts(ColumnKind(handle.kind), data, dictionary)
    _WORKER_COLUMNS[handle] = column
    return column


def resolve_bitmask(handle: BitmaskHandle) -> BitmaskVector:
    """Reconstruct a bitmask vector over the shared words buffer."""
    cached = _WORKER_VECTORS.get(handle)
    if cached is not None:
        return cached
    words = resolve_array(handle.words)
    vector = BitmaskVector(int(words.shape[0]), handle.n_bits, words=words)
    _WORKER_VECTORS[handle] = vector
    return vector


def resolve_table(handle: TableHandle) -> Table:
    """Reconstruct a table from its handle, cached per handle so table
    identity (and the cache entries anchored on it) survives across
    tasks within one worker."""
    cached = _WORKER_TABLES.get(handle)
    if cached is not None:
        return cached
    table = Table(
        handle.name,
        {name: resolve_column(col) for name, col in handle.columns},
        bitmask=(
            resolve_bitmask(handle.bitmask)
            if handle.bitmask is not None
            else None
        ),
    )
    _WORKER_TABLES[handle] = table
    return table


# ----------------------------------------------------------------------
# Interpreter teardown
# ----------------------------------------------------------------------
def _shutdown_at_exit() -> None:  # pragma: no cover - exercised at exit
    if os.getpid() != _OWNER_PID:
        return
    shutdown_process_pool()
    arena = _ARENA
    if arena is not None:
        arena.release_all()


atexit.register(_shutdown_at_exit)


__all__ = [
    "ArrayHandle",
    "BitmaskHandle",
    "BlobHandle",
    "ColumnArena",
    "ColumnHandle",
    "TableHandle",
    "get_arena",
    "get_process_pool",
    "in_worker",
    "process_map",
    "process_map_row_chunks",
    "resolve_array",
    "resolve_bitmask",
    "resolve_blob",
    "resolve_column",
    "resolve_table",
    "shutdown_process_pool",
]
