"""Parallel execution subsystem: shared worker pool + deterministic scatter/gather.

The paper's §4.2.2 rewrite turns one query into a UNION ALL of
*independent* pieces — one per selected small-group table plus the
scaled overall-sample part — and the two pre-processing scans are
embarrassingly parallel over row ranges.  This module provides the
shared machinery both sides use:

* :class:`ExecutionOptions` — the knob object (``max_workers``,
  preprocessing ``chunk_rows``) threaded through the executor, the
  combiner, pre-processing, and the middleware session;
* a **shared, lazily-started thread pool** — threads, not processes,
  because the hot loops are numpy kernels (``bincount``, ``unique``,
  ``isin``, fancy indexing) that release the GIL, so same-process
  threads scale on multicore without serialising tables across process
  boundaries;
* :func:`parallel_map` — scatter/gather that returns results in
  **submission order** regardless of completion order, the property the
  deterministic combine relies on;
* :func:`chunk_ranges` / :func:`map_row_chunks` — row-range chunking
  whose layout depends only on the data size (never on the worker
  count), so chunked map-reduce scans produce bit-identical reductions
  for any ``max_workers``.

Determinism argument
--------------------
Every parallel site in the engine follows the same discipline: the
*work list* is built serially in a deterministic order, the tasks are
pure functions of their inputs (no shared-state mutation — enforced
statically by lint rule RL007), and the gather step consumes results by
submission index, not completion order.  Floating-point reductions
therefore associate in exactly the serial order, and answers are
byte-identical for ``max_workers`` ∈ {1, 2, …}.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.errors import QueryError
from repro.obs.registry import get_registry
from repro.obs.trace import NULL_SPAN, Span

#: Name prefix of pool threads; used to refuse nested pool submission
#: (a task that fans out into the pool it runs on can deadlock once the
#: pool is saturated with waiting parents).
_THREAD_NAME_PREFIX = "repro-worker"

#: Hard ceiling on the shared pool size (a runaway ``max_workers`` must
#: not spawn thousands of OS threads).
MAX_POOL_WORKERS = 64

#: Valid values of :attr:`ExecutionOptions.executor`.
EXECUTOR_BACKENDS = ("serial", "thread", "process")

#: PID of the process that imported this module; forked pool workers
#: must not tear down the parent's pools from their own ``atexit``.
_OWNER_PID = os.getpid()


@dataclass(frozen=True)
class ExecutionOptions:
    """Tuning knobs for parallel execution and pre-processing.

    Attributes
    ----------
    max_workers:
        Worker threads used to scatter independent work (query pieces,
        pre-processing chunks).  ``1`` (the default) executes serially on
        the calling thread — the pool is never started.  ``0`` means
        "one per CPU" (``os.cpu_count()``).
    chunk_rows:
        Target rows per pre-processing chunk.  The chunk layout is a
        function of the data size only — never of ``max_workers`` — so
        map-reduced scans associate identically at every worker count.
    data_skipping:
        Whether WHERE evaluation consults the per-chunk zone-map
        summaries (see :mod:`repro.engine.zonemap`) to skip chunks a
        predicate provably cannot match.  Answers are byte-identical
        either way; the flag exists for benchmarking and debugging.
    executor:
        Which backend scatters independent work: ``"thread"`` (the
        default — the PR-3 shared thread pool), ``"process"`` (the
        :mod:`repro.engine.procpool` process pool + shared-memory column
        arena, for GIL-bound workloads), or ``"serial"`` (force the
        in-thread loop regardless of ``max_workers``).  Answers are
        byte-identical across backends — the backend is a pure
        throughput knob, exactly like ``max_workers``.
    chunk_selection:
        Opt-in PS3-style budgeted chunk selection (see
        :mod:`repro.engine.selection`): approximate sample pieces draw a
        weighted without-replacement subset of their surviving chunks
        under ``selection_budget`` and Horvitz–Thompson-reweight the
        aggregates so estimates stay unbiased.  Unlike ``data_skipping``
        this changes (approximate) answers — it trades rows touched for
        variance — so it is off by default.  Exact execution paths
        ignore it.
    selection_budget:
        Approximate row budget per table scan when ``chunk_selection``
        is on.  Selection only engages when the budget is actually
        binding (eligible rows exceed it); otherwise the full scan runs
        and answers are identical to ``chunk_selection=False``.
    selection_seed:
        Seed for the selection draw.  Fixed seed + fixed budget →
        byte-identical answers at any ``max_workers``/``executor``.
    incremental_appends:
        Whether ``Database.append_rows`` emits a structured append event
        (:class:`repro.engine.cache.AppendEvent`) so derived structures
        — zone maps, bitmask word summaries, provenance sketches — are
        *extended* for the appended tail instead of dropped and rebuilt
        from scratch on the next query.  Answers are byte-identical
        either way (the extend paths reuse a per-chunk summary only when
        the chunk's row range is provably unchanged); the flag is the
        ``--no-incremental-appends`` escape hatch for benchmarking the
        full-invalidation path.  ``insert_rows``/``drop_table`` always
        take the full-invalidation path.
    """

    max_workers: int = 1
    chunk_rows: int = 65536
    data_skipping: bool = True
    executor: str = "thread"
    chunk_selection: bool = False
    selection_budget: int = 65536
    selection_seed: int = 0
    incremental_appends: bool = True

    def __post_init__(self) -> None:
        if self.max_workers < 0:
            raise QueryError(
                f"max_workers must be >= 0, got {self.max_workers}"
            )
        if self.chunk_rows < 1:
            raise QueryError(
                f"chunk_rows must be >= 1, got {self.chunk_rows}"
            )
        if self.executor not in EXECUTOR_BACKENDS:
            raise QueryError(
                f"executor must be one of {EXECUTOR_BACKENDS}, "
                f"got {self.executor!r}"
            )
        if self.selection_budget < 1:
            raise QueryError(
                f"selection_budget must be >= 1, got {self.selection_budget}"
            )
        if self.selection_seed < 0:
            raise QueryError(
                f"selection_seed must be >= 0, got {self.selection_seed}"
            )

    @property
    def workers(self) -> int:
        """The resolved worker count (``0`` → one per CPU), capped.

        Always ``1`` under the ``serial`` backend, so every scatter site
        degrades to its in-thread loop without consulting ``executor``.
        """
        if self.executor == "serial":
            return 1
        n = self.max_workers if self.max_workers > 0 else (os.cpu_count() or 1)
        return min(n, MAX_POOL_WORKERS)

    @property
    def uses_processes(self) -> bool:
        """Whether scatter sites should route to the process backend."""
        return self.executor == "process" and self.workers > 1


# ----------------------------------------------------------------------
# Shared pool (lazily started, grown on demand, never shrunk)
# ----------------------------------------------------------------------
_POOL: ThreadPoolExecutor | None = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The shared thread pool, lazily started with >= ``workers`` threads.

    The pool is process-wide and shared by every caller (concurrent
    sessions included) so the thread count stays bounded by the largest
    request, not the number of live sessions.  It only ever grows: a
    request for more workers replaces the pool (the old one finishes its
    queue and is shut down without blocking).
    """
    global _POOL, _POOL_WORKERS
    workers = max(1, min(workers, MAX_POOL_WORKERS))
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < workers:
            old = _POOL
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=_THREAD_NAME_PREFIX
            )
            _POOL_WORKERS = workers
            if old is not None:
                old.shutdown(wait=False)
        return _POOL


def shutdown_pool() -> None:
    """Stop the shared pool (tests / interpreter teardown)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=True)


def shutdown_default_pools() -> None:
    """Stop every shared pool: the thread pool and — when the process
    backend was ever started — the process pool.  The procpool import is
    lazy so the serial/thread paths never pay for it."""
    shutdown_pool()
    import sys

    procpool = sys.modules.get("repro.engine.procpool")
    if procpool is not None:
        procpool.shutdown_process_pool()


def _shutdown_at_exit() -> None:  # pragma: no cover - exercised at exit
    # Non-daemon pool threads would otherwise block interpreter teardown;
    # forked workers inherit this hook but must not touch parent pools.
    if os.getpid() == _OWNER_PID:
        shutdown_default_pools()


atexit.register(_shutdown_at_exit)


def _in_pool_thread() -> bool:
    """Whether the current thread is a shared-pool worker."""
    return threading.current_thread().name.startswith(_THREAD_NAME_PREFIX)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any] | Iterable[Any],
    max_workers: int,
    span: Span = NULL_SPAN,
) -> list[Any]:
    """Apply ``fn`` to every item, returning results in item order.

    With ``max_workers <= 1``, a single item, or when called *from* a
    pool worker (nested fan-out would risk pool-saturation deadlock),
    this degenerates to a plain serial loop on the calling thread.
    Otherwise items are scattered across the shared pool and gathered by
    submission index, so the output order — and therefore any downstream
    floating-point reduction order — is identical to the serial path.
    The first task exception propagates to the caller.

    ``span`` (when profiling) gains a ``pool.scatter`` child recording
    task count and submit/wait seconds; the shared metrics registry
    counts scattered tasks and observes the latencies process-wide.
    Both are write-only channels (RL009) — answers never depend on them.
    """
    items = list(items)
    if max_workers <= 1 or len(items) <= 1 or _in_pool_thread():
        return [fn(item) for item in items]
    pool = get_pool(max_workers)
    started = time.perf_counter()
    futures = [pool.submit(fn, item) for item in items]
    submitted = time.perf_counter()
    results = [future.result() for future in futures]
    gathered = time.perf_counter()
    scatter_span = span.child("pool.scatter")
    scatter_span.seconds = gathered - started
    scatter_span.annotate(
        tasks=len(items),
        submit_seconds=submitted - started,
        wait_seconds=gathered - submitted,
    )
    registry = get_registry()
    registry.incr("pool.tasks_scattered", len(items))
    registry.observe("pool.submit_seconds", submitted - started)
    registry.observe("pool.wait_seconds", gathered - submitted)
    return results


# ----------------------------------------------------------------------
# Deterministic row chunking
# ----------------------------------------------------------------------
def chunk_ranges(n_rows: int, chunk_rows: int) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into contiguous ranges of ~``chunk_rows``.

    The layout depends only on ``(n_rows, chunk_rows)`` — never on the
    worker count — so per-chunk partial results reduce in the same
    association order at every ``max_workers``.
    """
    if n_rows <= 0:
        return []
    if chunk_rows < 1:
        raise QueryError(f"chunk_rows must be >= 1, got {chunk_rows}")
    n_chunks = max(1, (n_rows + chunk_rows - 1) // chunk_rows)
    bounds = [
        n_rows * i // n_chunks for i in range(n_chunks + 1)
    ]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(n_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def _apply_range(item: tuple[Callable[[int, int], Any], int, int]) -> Any:
    """Pool task: apply a range function to one ``(start, stop)`` chunk."""
    fn, start, stop = item
    return fn(start, stop)


def map_row_chunks(
    fn: Callable[[int, int], Any],
    n_rows: int,
    options: "ExecutionOptions",
    span: Span = NULL_SPAN,
) -> list[Any]:
    """Map ``fn(start, stop)`` over deterministic row chunks, in order.

    The work list is the :func:`chunk_ranges` layout; results come back
    in chunk order, so callers can ``np.concatenate`` them (row-order
    scans) or fold them left-to-right (map-reduce histograms) and get
    the serial result bit-for-bit.
    """
    items = [
        (fn, start, stop) for start, stop in chunk_ranges(n_rows, options.chunk_rows)
    ]
    return parallel_map(_apply_range, items, options.workers, span=span)


# ----------------------------------------------------------------------
# Process-wide default options
# ----------------------------------------------------------------------
_DEFAULT_OPTIONS = ExecutionOptions()
_OPTIONS_LOCK = threading.Lock()


def get_default_options() -> ExecutionOptions:
    """The process-wide default :class:`ExecutionOptions`."""
    return _DEFAULT_OPTIONS


def set_default_options(options: ExecutionOptions) -> ExecutionOptions:
    """Replace the process-wide defaults; returns the previous value.

    Used by the CLI's ``--max-workers`` flag and by benchmarks that
    sweep worker counts; sessions and techniques can also carry their
    own :class:`ExecutionOptions` explicitly.
    """
    global _DEFAULT_OPTIONS
    with _OPTIONS_LOCK:
        previous = _DEFAULT_OPTIONS
        _DEFAULT_OPTIONS = options
    return previous


def resolve_options(options: ExecutionOptions | None) -> ExecutionOptions:
    """``options`` if given, else the process-wide defaults."""
    return options if options is not None else _DEFAULT_OPTIONS


__all__ = [
    "EXECUTOR_BACKENDS",
    "ExecutionOptions",
    "MAX_POOL_WORKERS",
    "chunk_ranges",
    "get_default_options",
    "get_pool",
    "map_row_chunks",
    "parallel_map",
    "resolve_options",
    "set_default_options",
    "shutdown_default_pools",
    "shutdown_pool",
]
