"""Columnar storage primitives.

A :class:`Column` is an immutable-by-convention, numpy-backed vector with one
of three logical kinds:

* ``INT`` — 64-bit integers,
* ``FLOAT`` — 64-bit floats,
* ``STRING`` — dictionary-encoded categorical strings: an ``int32`` code
  array plus a list of distinct values.  Group-by and predicate evaluation
  operate on the codes, which is what makes the engine fast enough to run
  the paper's experiments in pure Python + numpy.

Columns deliberately expose a small surface: element access, ``take`` (row
selection), value frequencies, and conversion back to Python objects.  The
query executor works on the underlying arrays directly.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnTypeError, InternalError


class ColumnKind(enum.Enum):
    """Logical type of a column."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"


class Column:
    """A typed, numpy-backed column of values.

    Parameters
    ----------
    kind:
        The logical type of the column.
    data:
        For ``INT``/``FLOAT`` kinds, the value array.  For ``STRING``, the
        ``int32`` code array.
    dictionary:
        For ``STRING`` columns, the list of distinct string values such that
        ``dictionary[code]`` is the string for each code.  Must be ``None``
        for numeric columns.
    """

    __slots__ = ("kind", "data", "dictionary", "_dictionary_index", "__weakref__")

    def __init__(
        self,
        kind: ColumnKind,
        data: np.ndarray,
        dictionary: Sequence[str] | None = None,
    ) -> None:
        if kind is ColumnKind.STRING:
            if dictionary is None:
                raise ColumnTypeError("STRING columns require a dictionary")
            if data.dtype != np.int32:
                data = data.astype(np.int32)
            if data.size and (data.min() < 0 or data.max() >= len(dictionary)):
                raise ColumnTypeError(
                    "string codes out of range for dictionary of size "
                    f"{len(dictionary)}"
                )
        else:
            if dictionary is not None:
                raise ColumnTypeError("numeric columns must not have a dictionary")
            wanted = np.int64 if kind is ColumnKind.INT else np.float64
            if data.dtype != wanted:
                data = data.astype(wanted)
        self.kind = kind
        self.data = data
        self.dictionary: tuple[str, ...] | None = (
            tuple(dictionary) if dictionary is not None else None
        )
        self._dictionary_index: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_values(values: Iterable[Any]) -> "Column":
        """Build a column from Python values, inferring the kind.

        Strings become a dictionary-encoded ``STRING`` column; bools and ints
        become ``INT``; anything float-like becomes ``FLOAT``.
        """
        values = list(values)
        if not values:
            return Column.ints([])
        first = values[0]
        if isinstance(first, str):
            return Column.strings(values)
        if isinstance(first, bool) or isinstance(first, (int, np.integer)):
            if all(isinstance(v, (bool, int, np.integer)) for v in values):
                return Column.ints(values)
            return Column.floats(values)
        return Column.floats(values)

    @staticmethod
    def ints(values: Iterable[int] | np.ndarray) -> "Column":
        """Build an ``INT`` column."""
        return Column(ColumnKind.INT, np.asarray(values, dtype=np.int64))

    @staticmethod
    def floats(values: Iterable[float] | np.ndarray) -> "Column":
        """Build a ``FLOAT`` column."""
        return Column(ColumnKind.FLOAT, np.asarray(values, dtype=np.float64))

    @staticmethod
    def strings(values: Iterable[str]) -> "Column":
        """Build a dictionary-encoded ``STRING`` column from raw strings."""
        values = list(values)
        for v in values:
            if not isinstance(v, str):
                raise ColumnTypeError(f"expected str, got {type(v).__name__}")
        if not values:
            return Column(ColumnKind.STRING, np.empty(0, dtype=np.int32), ())
        arr = np.asarray(values, dtype=object)
        dictionary, codes = np.unique(arr, return_inverse=True)
        return Column(
            ColumnKind.STRING,
            codes.astype(np.int32),
            tuple(str(v) for v in dictionary),
        )

    @staticmethod
    def from_codes(codes: np.ndarray, dictionary: Sequence[str]) -> "Column":
        """Build a ``STRING`` column from pre-computed codes."""
        return Column(ColumnKind.STRING, np.asarray(codes, dtype=np.int32), dictionary)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __getitem__(self, index: int) -> Any:
        value = self.data[index]
        if self.kind is ColumnKind.STRING:
            return self.require_dictionary()[int(value)]
        if self.kind is ColumnKind.INT:
            return int(value)
        return float(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.kind is not other.kind or len(self) != len(other):
            return False
        if self.kind is ColumnKind.STRING:
            return self.to_list() == other.to_list()
        return bool(np.array_equal(self.data, other.data))

    def __hash__(self) -> int:  # columns are not hashable (mutable arrays)
        raise TypeError("Column objects are unhashable")

    def __repr__(self) -> str:
        return f"Column(kind={self.kind.value}, n={len(self)})"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def is_numeric(self) -> bool:
        """Whether arithmetic aggregates (SUM/AVG) apply to this column."""
        return self.kind is not ColumnKind.STRING

    def require_dictionary(self) -> Sequence[str]:
        """The dictionary of a ``STRING`` column, with a durable guard.

        Raises
        ------
        InternalError
            If the dictionary is missing — string columns are always
            constructed with one, so this indicates a bug in repro.
        """
        if self.dictionary is None:
            raise InternalError(
                f"{self.kind.value} column is missing its dictionary"
            )
        return self.dictionary

    def to_list(self) -> list[Any]:
        """Materialise the column as a list of Python values."""
        if self.kind is ColumnKind.STRING:
            dictionary = self.require_dictionary()
            return [dictionary[code] for code in self.data]
        return self.data.tolist()

    def numeric_values(self) -> np.ndarray:
        """Return the value array for a numeric column.

        Raises
        ------
        ColumnTypeError
            If the column is a string column.
        """
        if not self.is_numeric:
            raise ColumnTypeError("column is not numeric")
        return self.data

    def code_for(self, value: str) -> int:
        """Return the dictionary code for ``value``, or ``-1`` if absent."""
        if self.kind is not ColumnKind.STRING:
            raise ColumnTypeError("code_for only applies to string columns")
        dictionary = self.require_dictionary()
        if self._dictionary_index is None:
            self._dictionary_index = {
                v: i for i, v in enumerate(dictionary)
            }
        return self._dictionary_index.get(value, -1)

    def decode(self, code: int) -> str:
        """Return the string value for a dictionary ``code``."""
        if self.kind is not ColumnKind.STRING:
            raise ColumnTypeError("decode only applies to string columns")
        return self.require_dictionary()[code]

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with the rows at ``indices`` (in order)."""
        return Column(self.kind, self.data[indices], self.dictionary)

    def mask(self, keep: np.ndarray) -> "Column":
        """Return a new column with only the rows where ``keep`` is True."""
        return Column(self.kind, self.data[keep], self.dictionary)

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns of the same kind.

        For string columns the dictionaries are merged (the result uses this
        column's dictionary extended with any new values from ``other``).
        """
        if self.kind is not other.kind:
            raise ColumnTypeError(
                f"cannot concat {self.kind.value} with {other.kind.value}"
            )
        if self.kind is not ColumnKind.STRING:
            return Column(self.kind, np.concatenate([self.data, other.data]))
        dictionary = self.require_dictionary()
        other_dictionary = other.require_dictionary()
        if dictionary == other_dictionary:
            return Column(
                ColumnKind.STRING,
                np.concatenate([self.data, other.data]),
                dictionary,
            )
        merged = list(dictionary)
        index = {v: i for i, v in enumerate(merged)}
        remap = np.empty(len(other_dictionary), dtype=np.int32)
        for code, value in enumerate(other_dictionary):
            if value not in index:
                index[value] = len(merged)
                merged.append(value)
            remap[code] = index[value]
        other_codes = remap[other.data] if len(other) else other.data
        return Column(
            ColumnKind.STRING,
            np.concatenate([self.data, other_codes]),
            tuple(merged),
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def range_summary(
        self, start: int, stop: int, distinct_cutoff: int
    ) -> tuple:
        """Zone-map summary of the rows in ``[start, stop)``.

        Numeric columns return ``(min, max, zero_count)`` as floats over
        the raw stored values (NaNs propagate into min/max, which the
        verdict logic treats as "cannot decide").  String columns return
        ``(code_set, null_count)`` where ``code_set`` is a frozenset of
        the distinct dictionary codes present, or ``None`` when the
        chunk holds more than ``distinct_cutoff`` distinct codes (a
        summary that large stops paying for itself).
        """
        data = self.data[start:stop]
        if self.kind is ColumnKind.STRING:
            codes = np.unique(data)
            if codes.size > distinct_cutoff:
                return (None, 0)
            return (frozenset(int(c) for c in codes), 0)
        mn = float(np.min(data)) if data.size else float("nan")
        mx = float(np.max(data)) if data.size else float("nan")
        zeros = int(np.count_nonzero(data == 0))
        return (mn, mx, zeros)

    def distinct_count(self) -> int:
        """Number of distinct values present in the column."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.data).size)

    def value_counts(self) -> dict[Any, int]:
        """Frequency of every distinct value, keyed by the decoded value."""
        if len(self) == 0:
            return {}
        values, counts = np.unique(self.data, return_counts=True)
        if self.kind is ColumnKind.STRING:
            dictionary = self.require_dictionary()
            return {
                dictionary[int(v)]: int(c)
                for v, c in zip(values, counts)
            }
        if self.kind is ColumnKind.INT:
            return {int(v): int(c) for v, c in zip(values, counts)}
        return {float(v): int(c) for v, c in zip(values, counts)}

    def encode_value(self, value: Any) -> float | int:
        """Map a user-facing value onto the internal representation.

        For string columns returns the dictionary code (``-1`` if the value
        never occurs); numeric values pass through unchanged.
        """
        if self.kind is ColumnKind.STRING:
            if not isinstance(value, str):
                raise ColumnTypeError(
                    f"string column compared against {type(value).__name__}"
                )
            return self.code_for(value)
        if isinstance(value, str):
            raise ColumnTypeError("numeric column compared against str")
        return value


def column_from_parts(
    kind: ColumnKind,
    data: np.ndarray,
    dictionary: tuple[str, ...] | None,
) -> Column:
    """Reassemble a column from already-validated parts, without copying.

    Trusted fast path for the shared-memory arena
    (:mod:`repro.engine.procpool`): the parts came out of a real
    :class:`Column` in the parent process, so the constructor's dtype
    coercion and string-code range scan (an O(n) min/max over the whole
    array) would re-validate what is known-good — and ``astype`` would
    copy the zero-copy shared view it exists to avoid.
    """
    column = Column.__new__(Column)
    column.kind = kind
    column.data = data
    column.dictionary = dictionary
    column._dictionary_index = None
    return column
