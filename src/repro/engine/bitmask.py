"""Multi-word bitmask vectors.

Small group sampling tags every sampled row with a bitmask recording which
small group tables contain the row (Section 4.2.1 of the paper).  The number
of small group tables equals the number of retained columns ``|S|``, which
for wide schemas (the paper's SALES database has 245 columns) exceeds the 64
bits of a single machine word.  :class:`BitmaskVector` therefore stores the
per-row masks as an ``(n_rows, n_words)`` array of ``uint64`` words.

A *query mask* (one mask, many rows) is represented by :class:`Bitmask`.
The runtime rewriting phase uses ``BitmaskVector.isdisjoint`` to implement
the paper's ``bitmask & m = 0`` filters.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

WORD_BITS = 64


def _n_words(n_bits: int) -> int:
    return max(1, (n_bits + WORD_BITS - 1) // WORD_BITS)


class Bitmask:
    """A single bitmask over ``n_bits`` bit positions."""

    __slots__ = ("n_bits", "words")

    def __init__(self, n_bits: int, bits: Iterable[int] = ()) -> None:
        self.n_bits = n_bits
        self.words = np.zeros(_n_words(n_bits), dtype=np.uint64)
        for bit in bits:
            self.set(bit)

    def set(self, bit: int) -> None:
        """Set bit position ``bit``."""
        if not 0 <= bit < self.n_bits:
            raise ValueError(f"bit {bit} out of range [0, {self.n_bits})")
        self.words[bit // WORD_BITS] |= np.uint64(1) << np.uint64(bit % WORD_BITS)

    def test(self, bit: int) -> bool:
        """Return whether bit position ``bit`` is set."""
        if not 0 <= bit < self.n_bits:
            raise ValueError(f"bit {bit} out of range [0, {self.n_bits})")
        word = self.words[bit // WORD_BITS]
        return bool(word >> np.uint64(bit % WORD_BITS) & np.uint64(1))

    def bits(self) -> list[int]:
        """Return the sorted list of set bit positions."""
        out = []
        for w, word in enumerate(self.words):
            value = int(word)
            while value:
                low = value & -value
                out.append(w * WORD_BITS + low.bit_length() - 1)
                value ^= low
        return out

    def to_int(self) -> int:
        """Return the mask as an arbitrary-precision Python integer."""
        total = 0
        for w, word in enumerate(self.words):
            total |= int(word) << (w * WORD_BITS)
        return total

    @staticmethod
    def from_int(n_bits: int, value: int) -> "Bitmask":
        """Build a mask from an arbitrary-precision integer."""
        mask = Bitmask(n_bits)
        for w in range(len(mask.words)):
            mask.words[w] = np.uint64((value >> (w * WORD_BITS)) & (2**WORD_BITS - 1))
        return mask

    def is_zero(self) -> bool:
        """Whether no bit is set."""
        return not self.words.any()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmask):
            return NotImplemented
        return self.n_bits == other.n_bits and bool(
            np.array_equal(self.words, other.words)
        )

    def __hash__(self) -> int:
        return hash((self.n_bits, self.words.tobytes()))

    def __repr__(self) -> str:
        return f"Bitmask(n_bits={self.n_bits}, bits={self.bits()})"


class BitmaskVector:
    """Per-row bitmasks for a sample table.

    The vector is append-free: it is built once, with a fixed row count, and
    rows are selected with :meth:`take`.  The ``__weakref__`` slot lets the
    execution cache anchor per-chunk OR summaries on the vector's identity.
    """

    __slots__ = ("n_bits", "words", "__weakref__")

    def __init__(self, n_rows: int, n_bits: int, words: np.ndarray | None = None):
        self.n_bits = n_bits
        if words is None:
            words = np.zeros((n_rows, _n_words(n_bits)), dtype=np.uint64)
        else:
            words = np.asarray(words, dtype=np.uint64)
            if words.shape != (n_rows, _n_words(n_bits)):
                raise ValueError(
                    f"expected shape {(n_rows, _n_words(n_bits))}, "
                    f"got {words.shape}"
                )
        self.words = words

    def __len__(self) -> int:
        return int(self.words.shape[0])

    def set_bit(self, rows: np.ndarray, bit: int) -> None:
        """Set ``bit`` for every row index in ``rows``."""
        if not 0 <= bit < self.n_bits:
            raise ValueError(f"bit {bit} out of range [0, {self.n_bits})")
        self.words[rows, bit // WORD_BITS] |= np.uint64(1) << np.uint64(
            bit % WORD_BITS
        )

    def isdisjoint(self, mask: Bitmask) -> np.ndarray:
        """Boolean array: rows whose mask shares no bit with ``mask``.

        Implements the paper's ``bitmask & m = 0`` rewrite filter.  The
        widths need not match: mask bits beyond this vector's width cannot
        overlap any row (parsed SQL masks default to a generous width),
        and a narrower mask is implicitly zero-padded.
        """
        words = min(self.words.shape[1], len(mask.words))
        overlap = self.words[:, :words] & mask.words[np.newaxis, :words]
        return ~overlap.any(axis=1)

    def isdisjoint_range(self, mask: Bitmask, start: int, stop: int) -> np.ndarray:
        """:meth:`isdisjoint` restricted to the rows in ``[start, stop)``.

        Equals ``isdisjoint(mask)[start:stop]`` element-for-element while
        touching only the chunk's word rows — the unit the zone-map
        executor evaluates when the per-chunk bitmask OR cannot prove a
        whole chunk disjoint.
        """
        words = min(self.words.shape[1], len(mask.words))
        overlap = (
            self.words[start:stop, :words] & mask.words[np.newaxis, :words]
        )
        return ~overlap.any(axis=1)

    def range_or(self, start: int, stop: int) -> np.ndarray:
        """OR of the row masks in ``[start, stop)``, as one word row.

        A row can only overlap a query mask ``m`` if the chunk OR does,
        so ``range_or(a, b) & m == 0`` proves ``bitmask & m = 0`` holds
        for *every* row of the chunk — the zone-map summary that lets
        the §4.2.2 de-duplication filter pass whole chunks unscanned.
        """
        if stop <= start:
            return np.zeros(self.words.shape[1], dtype=np.uint64)
        return np.bitwise_or.reduce(self.words[start:stop], axis=0)

    def row_mask(self, row: int) -> Bitmask:
        """Return row ``row``'s mask as a :class:`Bitmask`."""
        mask = Bitmask(self.n_bits)
        mask.words[:] = self.words[row]
        return mask

    def take(self, indices: np.ndarray) -> "BitmaskVector":
        """Return a new vector with the rows at ``indices``."""
        selected = self.words[indices]
        return BitmaskVector(selected.shape[0], self.n_bits, selected)

    def to_ints(self) -> list[int]:
        """Materialise every row mask as a Python integer."""
        return [self.row_mask(i).to_int() for i in range(len(self))]

    def concat(self, other: "BitmaskVector") -> "BitmaskVector":
        """Concatenate two vectors with identical bit width."""
        if self.n_bits != other.n_bits:
            raise ValueError("bit widths differ")
        words = np.concatenate([self.words, other.words], axis=0)
        return BitmaskVector(words.shape[0], self.n_bits, words)
