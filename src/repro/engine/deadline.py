"""Per-request deadlines threaded through query execution.

The serving layer (``repro.server``) admits each request with an
optional deadline — the BlinkDB-style ``WITHIN t SECONDS`` contract at
the transport level.  A :class:`Deadline` is a small immutable expiry
anchored on the monotonic clock; the session and the piece combiner call
:meth:`Deadline.check` at well-defined *serial* points (after parse,
before planning, at the head of each piece task, before the combine), so
an expired request stops submitting new work instead of running to
completion and discarding the answer.

Deadlines are answer-neutral by construction: a checkpoint either passes
or raises :class:`~repro.errors.DeadlineExceeded` — there is no partial
answer, so the byte-identical determinism guarantees are untouched.
Checks happen at piece/stage granularity: work already running on a pool
worker is never interrupted mid-kernel (numpy calls are not preemptible
anyway), and the process backend checks only in the parent around the
scatter (a forked worker's clock races its parent's by an unbounded
scheduling delay, so an in-worker check would be noise).

``time.perf_counter`` is the clock: monotonic, and explicitly exempt
from lint rule RL003 because elapsed time here is *control flow about
how long to keep working*, never an input to any estimate.
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceeded, QueryError


class Deadline:
    """One request's expiry on the monotonic clock.

    Immutable after construction; safe to share across the threads
    executing one request (reads of a float are atomic).
    """

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: float) -> None:
        seconds = float(seconds)
        if not seconds > 0:  # also rejects NaN
            raise QueryError(
                f"deadline seconds must be > 0, got {seconds!r}"
            )
        self.seconds = seconds
        self._expires_at = time.perf_counter() + seconds

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expires_at - time.perf_counter()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self.remaining() <= 0.0

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            where = f" during {stage}" if stage else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds:g}s exceeded{where}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(seconds={self.seconds:g}, "
            f"remaining={self.remaining():.3f})"
        )


__all__ = ["Deadline"]
