"""Columnar tables.

A :class:`Table` is an ordered collection of equal-length :class:`Column`
objects plus an optional per-row :class:`BitmaskVector` (used by sample
tables built by small group sampling).  Tables are value-like: row selection
and projection return new tables and never mutate the source.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.engine.bitmask import BitmaskVector
from repro.engine.column import Column, ColumnKind
from repro.errors import SchemaError


class Table:
    """An in-memory columnar table.

    Parameters
    ----------
    name:
        Table name used in queries and catalogs.
    columns:
        Mapping from column name to :class:`Column`.  All columns must have
        the same length.  Iteration order is preserved.
    bitmask:
        Optional per-row bitmask vector (small group sample tables only).
        Must have the same number of rows as the columns.
    """

    __slots__ = ("name", "_columns", "bitmask", "__weakref__")

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Column],
        bitmask: BitmaskVector | None = None,
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} has columns of differing lengths: {lengths}"
            )
        (n_rows,) = lengths
        if bitmask is not None and len(bitmask) != n_rows:
            raise SchemaError(
                f"table {name!r}: bitmask has {len(bitmask)} rows, "
                f"columns have {n_rows}"
            )
        self.name = name
        self._columns: dict[str, Column] = dict(columns)
        self.bitmask = bitmask

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(name: str, data: Mapping[str, Iterable[Any]]) -> "Table":
        """Build a table from per-column Python value lists, inferring kinds."""
        columns = {col: Column.from_values(values) for col, values in data.items()}
        return Table(name, columns)

    @staticmethod
    def from_rows(
        name: str, column_names: Sequence[str], rows: Iterable[Sequence[Any]]
    ) -> "Table":
        """Build a table from row tuples."""
        rows = list(rows)
        data: dict[str, list[Any]] = {c: [] for c in column_names}
        for row in rows:
            if len(row) != len(column_names):
                raise SchemaError(
                    f"row has {len(row)} values, expected {len(column_names)}"
                )
            for c, v in zip(column_names, row):
                data[c].append(v)
        return Table.from_dict(name, data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return len(next(iter(self._columns.values())))

    @property
    def column_names(self) -> list[str]:
        """Column names in definition order."""
        return list(self._columns)

    def has_column(self, name: str) -> bool:
        """Whether a column with the given name exists."""
        return name in self._columns

    def column(self, name: str) -> Column:
        """Return the column named ``name``.

        Raises
        ------
        SchemaError
            If no such column exists.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {self.column_names}"
            ) from None

    def row(self, index: int) -> dict[str, Any]:
        """Materialise one row as a dict (debugging / tests)."""
        return {c: col[index] for c, col in self._columns.items()}

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialise the whole table as row tuples (tests only)."""
        lists = [col.to_list() for col in self._columns.values()]
        return list(zip(*lists)) if lists and lists[0] else (
            [] if self.n_rows == 0 else list(zip(*lists))
        )

    def memory_bytes(self) -> int:
        """Approximate storage footprint, for space-overhead accounting."""
        total = 0
        for col in self._columns.values():
            total += col.data.nbytes
            if col.dictionary is not None:
                total += sum(len(v) for v in col.dictionary)
        if self.bitmask is not None:
            total += self.bitmask.words.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, n_rows={self.n_rows}, "
            f"columns={self.column_names})"
        )

    # ------------------------------------------------------------------
    # Row / column operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Return a new table with the rows at ``indices`` (in order)."""
        indices = np.asarray(indices)
        columns = {c: col.take(indices) for c, col in self._columns.items()}
        bitmask = self.bitmask.take(indices) if self.bitmask is not None else None
        return Table(self.name, columns, bitmask)

    def filter(self, keep: np.ndarray) -> "Table":
        """Return a new table with only the rows where ``keep`` is True."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n_rows,):
            raise SchemaError(
                f"filter mask has shape {keep.shape}, expected ({self.n_rows},)"
            )
        return self.take(np.flatnonzero(keep))

    def select(self, names: Sequence[str]) -> "Table":
        """Return a projection with the given columns, in the given order."""
        columns = {name: self.column(name) for name in names}
        return Table(self.name, columns, self.bitmask)

    def rename(self, name: str) -> "Table":
        """Return the same table under a different name."""
        return Table(name, self._columns, self.bitmask)

    def with_column(self, name: str, column: Column) -> "Table":
        """Return a new table with ``column`` added or replaced."""
        if len(column) != self.n_rows:
            raise SchemaError(
                f"column {name!r} has {len(column)} rows, table has {self.n_rows}"
            )
        columns = dict(self._columns)
        columns[name] = column
        return Table(self.name, columns, self.bitmask)

    def with_bitmask(self, bitmask: BitmaskVector | None) -> "Table":
        """Return a new table with the given bitmask vector attached."""
        return Table(self.name, self._columns, bitmask)

    def drop_column(self, name: str) -> "Table":
        """Return a new table without the given column."""
        if name not in self._columns:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        columns = {c: col for c, col in self._columns.items() if c != name}
        return Table(self.name, columns, self.bitmask)

    def concat(self, other: "Table") -> "Table":
        """Concatenate two tables with identical column sets.

        Bitmask vectors are concatenated when both sides have one, dropped
        otherwise.
        """
        if self.column_names != other.column_names:
            raise SchemaError(
                "concat requires identical column lists: "
                f"{self.column_names} vs {other.column_names}"
            )
        columns = {
            c: self._columns[c].concat(other._columns[c]) for c in self._columns
        }
        bitmask = None
        if self.bitmask is not None and other.bitmask is not None:
            bitmask = self.bitmask.concat(other.bitmask)
        return Table(self.name, columns, bitmask)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self.n_rows)))

    def column_kind(self, name: str) -> ColumnKind:
        """Return the kind of the named column."""
        return self.column(name).kind
