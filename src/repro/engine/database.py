"""Database catalog: named tables plus optional star-schema metadata.

:class:`Database` is the unit the AQP techniques pre-process and the
executor runs against.  For star schemas it can materialise the *joined
view* (fact ⋈ all dimensions) that the paper calls "the database" for the
purposes of sampling; samples drawn from that view are join synopses [3].
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.engine.cache import MISS, AppendEvent, get_cache, notify_append
from repro.engine.column import Column
from repro.engine.parallel import ExecutionOptions, resolve_options
from repro.engine.schema import StarSchema
from repro.engine.table import Table
from repro.errors import SchemaError


def _key_positions(dim_keys: np.ndarray, fact_keys: np.ndarray) -> np.ndarray:
    """Map each fact-table key to its row position in the dimension table.

    Raises
    ------
    SchemaError
        If a fact key has no matching dimension row (violated FK) or a
        dimension key is duplicated.
    """
    order = np.argsort(dim_keys, kind="stable")
    sorted_keys = dim_keys[order]
    if sorted_keys.size > 1 and (sorted_keys[1:] == sorted_keys[:-1]).any():
        raise SchemaError("dimension key column contains duplicates")
    pos = np.searchsorted(sorted_keys, fact_keys)
    pos = np.clip(pos, 0, sorted_keys.size - 1)
    if sorted_keys.size == 0 or not np.array_equal(sorted_keys[pos], fact_keys):
        raise SchemaError("fact table references missing dimension keys")
    return order[pos]


def cached_key_positions(
    dim_key_column: Column, fact_key_column: Column
) -> np.ndarray:
    """Memoised :func:`_key_positions` for a (dimension key, FK) column pair.

    Anchored on the two :class:`Column` objects' identities: the append
    paths replace columns wholesale, so identity equality guarantees the
    cached positions still describe the stored data.
    """
    cache = get_cache()
    anchors = (fact_key_column, dim_key_column)
    positions = cache.get("join_positions", anchors)
    if positions is MISS:
        positions = _key_positions(
            dim_key_column.numeric_values(), fact_key_column.numeric_values()
        )
        cache.put("join_positions", anchors, positions)
    return positions


def gather_dimension_column(
    fact_key_column: Column, dim_key_column: Column, dim_column: Column
) -> Column:
    """A dimension column gathered to fact-row order, memoised.

    This is the per-column payload of the star join: with the join
    positions cached the gather itself is one fancy-indexing pass, and the
    gathered column is cached too so repeated queries touching the same
    dimension attribute pay nothing.
    """
    cache = get_cache()
    anchors = (fact_key_column, dim_key_column, dim_column)
    gathered = cache.get("joined_column", anchors)
    if gathered is MISS:
        positions = cached_key_positions(dim_key_column, fact_key_column)
        gathered = dim_column.take(positions)
        cache.put("joined_column", anchors, gathered)
    return gathered


class Database:
    """A catalog of tables with optional star-schema join metadata."""

    def __init__(
        self, tables: Iterable[Table], star_schema: StarSchema | None = None
    ) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table name {table.name!r}")
            self._tables[table.name] = table
        self.cache = get_cache()
        self.star_schema = star_schema
        if star_schema is not None:
            self._validate_star_schema(star_schema)

    def _validate_star_schema(self, schema: StarSchema) -> None:
        fact = self.table(schema.fact_table)
        seen: dict[str, str] = {c: schema.fact_table for c in fact.column_names}
        for fk in schema.foreign_keys:
            dim = self.table(fk.dimension_table)
            fact.column(fk.fact_column)
            dim.column(fk.dimension_key)
            for c in dim.column_names:
                if c == fk.dimension_key:
                    continue
                if c in seen:
                    raise SchemaError(
                        f"column {c!r} appears in both {seen[c]!r} and "
                        f"{fk.dimension_table!r}; star schema columns must "
                        "be globally unique"
                    )
                seen[c] = fk.dimension_table

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> list[str]:
        """All table names in the catalog."""
        return list(self._tables)

    def table(self, name: str) -> Table:
        """Return the table named ``name``.

        Raises
        ------
        SchemaError
            If no such table exists.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r}; catalog has {self.table_names}"
            ) from None

    def has_table(self, name: str) -> bool:
        """Whether the catalog contains a table with this name."""
        return name in self._tables

    def add_table(self, table: Table) -> None:
        """Register a new table (e.g. a sample table built by an AQP method)."""
        if table.name in self._tables:
            raise SchemaError(f"duplicate table name {table.name!r}")
        self._tables[table.name] = table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog, releasing its cached artifacts."""
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} to drop")
        self.cache.invalidate_table(self._tables.pop(name))

    def append_rows(
        self,
        name: str,
        batch: Table,
        options: ExecutionOptions | None = None,
    ) -> Table:
        """Append ``batch``'s rows to table ``name`` (incremental-load path).

        The stored table is replaced wholesale by the concatenation.
        With ``options.incremental_appends`` (the default), a structured
        :class:`~repro.engine.cache.AppendEvent` is emitted *first*:
        listeners migrate derived structures — per-chunk zone maps,
        bitmask word summaries, provenance sketches — from the old
        objects to the new ones, extending them for the appended tail
        instead of rebuilding from scratch.  The explicit
        ``invalidate_table(old)`` that follows then drops only what
        stayed anchored on the old objects (predicate masks, group ids,
        join positions — artifacts whose values genuinely changed) and
        fans out to the process backend's shared-memory arena so old
        segments are unlinked immediately.  Returns the new table.

        With the flag off — or for degenerate appends (empty table or
        empty batch, where there is nothing worth extending) — the whole
        path is the historical full invalidation.
        """
        old = self.table(name)
        merged = old.concat(batch)
        if (
            resolve_options(options).incremental_appends
            and old.n_rows > 0
            and batch.n_rows > 0
        ):
            notify_append(
                AppendEvent(
                    table_name=name,
                    old_table=old,
                    new_table=merged,
                    old_rows=old.n_rows,
                    new_rows=merged.n_rows,
                    columns=tuple(
                        (c, old.column(c), merged.column(c))
                        for c in merged.column_names
                    ),
                    old_bitmask=old.bitmask,
                    new_bitmask=merged.bitmask,
                )
            )
        self.cache.invalidate_table(old)
        self._tables[name] = merged
        return merged

    def total_bytes(self) -> int:
        """Approximate footprint of all catalog tables (space accounting)."""
        return sum(t.memory_bytes() for t in self._tables.values())

    # ------------------------------------------------------------------
    # Star schema helpers
    # ------------------------------------------------------------------
    @property
    def fact_table(self) -> Table:
        """The fact table (the lone table when there is no star schema)."""
        if self.star_schema is None:
            if len(self._tables) != 1:
                raise SchemaError(
                    "database has multiple tables but no star schema; "
                    "cannot identify the fact table"
                )
            return next(iter(self._tables.values()))
        return self.table(self.star_schema.fact_table)

    def column_owner(self, column: str) -> str:
        """Return the name of the table owning ``column``.

        Searches the fact table first, then each dimension table.
        """
        fact = self.fact_table
        if fact.has_column(column):
            return fact.name
        if self.star_schema is not None:
            for fk in self.star_schema.foreign_keys:
                if self.table(fk.dimension_table).has_column(column):
                    return fk.dimension_table
        raise SchemaError(f"no table owns column {column!r}")

    def joined_view(self, name: str | None = None) -> Table:
        """Materialise the fact ⋈ dimensions wide view.

        The result contains every fact column plus every non-key dimension
        column, one row per fact row.  For a single-table database this is
        the fact table itself.
        """
        fact = self.fact_table
        if self.star_schema is None or not self.star_schema.foreign_keys:
            return fact if name is None else fact.rename(name)
        columns = {c: fact.column(c) for c in fact.column_names}
        for fk in self.star_schema.foreign_keys:
            dim = self.table(fk.dimension_table)
            fact_key_col = fact.column(fk.fact_column)
            dim_key_col = dim.column(fk.dimension_key)
            for c in dim.column_names:
                if c == fk.dimension_key:
                    continue
                columns[c] = gather_dimension_column(
                    fact_key_col, dim_key_col, dim.column(c)
                )
        return Table(name or f"{fact.name}_joined", columns)
