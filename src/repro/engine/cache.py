"""Cross-query execution cache.

The engine's per-query cost model is "time proportional to rows
*scanned*", yet the seed executor paid avoidable per-query overheads that
are recomputable once and reusable forever: re-sorting grouping columns
with ``numpy.unique``, re-deriving star-schema foreign-key join positions
with ``argsort``, and re-evaluating WHERE predicates over the same stored
tables.  :class:`ExecutionCache` amortises that work across a query
stream, the way production AQP middleware (BlinkDB-style systems) must to
serve repeated workloads.

Design
------
Entries are keyed by a *kind* string, the identities of one or more
**anchor** objects (columns, tables), and an optional hashable extra key
(e.g. the predicate).  Every anchor is held through a :mod:`weakref`, so

* an entry is only served while each anchor is the *same live object* it
  was stored against — stored tables are immutable-by-convention and are
  replaced wholesale on append (``concat`` returns a new object), so
  identity equality is a correct freshness check; and
* entries die automatically with their anchors (the weakref callback
  prunes them), so the cache cannot serve a recycled ``id()``.

On top of the automatic lifetime management, the incremental-append paths
(:meth:`repro.engine.database.Database.append_rows`,
:meth:`repro.core.smallgroup.SmallGroupSampling.insert_rows`) call
:meth:`ExecutionCache.invalidate_table` explicitly so replaced tables
release their derived arrays immediately rather than at garbage
collection.

Hit/miss counters are collected per kind in :class:`CacheMetrics` and
re-exported through :mod:`repro.metrics`.
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass, field
from typing import Any

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()


class _Flight:
    """One in-progress computation shared by a leader and its followers."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key in-flight deduplication: N concurrent callers, one compute.

    ``do(key, fn)`` guarantees that while one call for ``key`` is in
    progress, every concurrent call for the same key *waits for that
    result* instead of recomputing it.  The first caller (the leader)
    runs ``fn`` outside any lock; followers block on the leader's event
    and share its value.  If the leader raises, its followers retry —
    one of them becomes the new leader — so an error never poisons the
    key, and the leader's exception propagates only to the caller that
    computed.

    This is the primitive behind the execution cache's cold-miss
    coalescing, the session parse/plan memos, and the serving layer's
    in-flight request dedup.  Keys must be hashable; ``fn`` must not
    recursively call ``do`` with the same key on the same thread (the
    second call would wait on itself).

    ``do`` returns ``(value, leader)`` — ``leader`` tells callers (and
    their metrics) whether this thread computed or coalesced.

    ``wait_timeout`` bounds how long a follower waits before retrying
    leadership; callers with deadlines pass the remaining budget and
    check it between rounds via ``deadline_check``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Flight] = {}

    def do(
        self,
        key: Hashable,
        fn: Callable[[], Any],
        deadline_check: Callable[[], None] | None = None,
    ) -> tuple[Any, bool]:
        """Compute ``fn()`` for ``key``, coalescing concurrent callers."""
        while True:
            if deadline_check is not None:
                deadline_check()
            with self._lock:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    is_leader = True
                else:
                    is_leader = False
            if is_leader:
                try:
                    flight.value = fn()
                except BaseException as error:
                    flight.error = error
                    raise
                finally:
                    with self._lock:
                        self._inflight.pop(key, None)
                    flight.event.set()
                return flight.value, True
            # Follower: wait out the leader, bounded so a deadline-bearing
            # caller can re-check between rounds.
            flight.event.wait(timeout=0.05 if deadline_check else None)
            if not flight.event.is_set():
                continue
            if flight.error is None:
                return flight.value, False
            # The leader failed; loop and race to become the new leader.

    def inflight_count(self) -> int:
        """Number of keys currently being computed (tests, stats)."""
        with self._lock:
            return len(self._inflight)

#: Callbacks fired (outside the cache lock) whenever an object is
#: explicitly invalidated.  The shared-memory column arena
#: (:mod:`repro.engine.procpool`) subscribes so that the buffers of a
#: replaced table (``append_rows`` / ``insert_rows`` / ``drop_table``)
#: are unlinked the moment the execution cache drops its entries, rather
#: than at garbage collection.
_INVALIDATION_LISTENERS: list[Callable[[Any], None]] = []


def add_invalidation_listener(listener: Callable[[Any], None]) -> None:
    """Subscribe to explicit invalidations on every :class:`ExecutionCache`.

    Listeners receive each object passed to
    :meth:`ExecutionCache.invalidate_object` (including the per-column
    and bitmask calls that :meth:`ExecutionCache.invalidate_table` fans
    out to).  They run on the invalidating thread, outside the cache
    lock, and must not raise.
    """
    _INVALIDATION_LISTENERS.append(listener)


@dataclass(frozen=True)
class AppendEvent:
    """A structured description of one ``append_rows`` table replacement.

    Emitted *before* the old table is invalidated, so consumers can
    migrate derived state from the old objects onto the new ones (zone
    maps, bitmask word summaries, provenance sketches, arena segments)
    instead of rebuilding from scratch on the next query.  The old
    objects are still live while listeners run; the subsequent
    ``invalidate_table(old)`` then only drops whatever stayed anchored
    on them.

    ``columns`` pairs every column name with its old and new
    :class:`~repro.engine.column.Column` object.  ``Table.concat``
    guarantees the new objects carry the old data as an unchanged
    prefix (dictionary codes included), which is what makes per-chunk
    summary reuse sound.
    """

    table_name: str
    old_table: Any
    new_table: Any
    old_rows: int
    new_rows: int
    #: ``(name, old_column, new_column)`` per column, in table order.
    columns: tuple[tuple[str, Any, Any], ...]
    old_bitmask: Any = None
    new_bitmask: Any = None


#: Callbacks fired for every :class:`AppendEvent` — the delta-maintenance
#: sibling of the invalidation channel.  Same contract: listeners run on
#: the appending thread, outside any cache lock, and must not raise.
_APPEND_LISTENERS: list[Callable[[AppendEvent], None]] = []


def add_append_listener(listener: Callable[[AppendEvent], None]) -> None:
    """Subscribe to append events (see :class:`AppendEvent`).

    Consumers (zone maps, the sketch store, the column arena) use the
    event to *extend* derived structures for the appended tail rather
    than dropping them; the invalidation that follows the event then
    finds nothing left anchored on the old objects.
    """
    _APPEND_LISTENERS.append(listener)


def notify_append(event: AppendEvent) -> None:
    """Fan one append event out to every registered listener.

    Counts toward the ``ingest.events`` registry counter.  Like
    invalidation, this call *is* the discharge of the
    mutation-invalidation contract (lint rules RL001/RL013): a catalog
    that swaps a table after notifying has routed every derived
    structure through either the extend path or the drop path.
    """
    from repro.obs.registry import get_registry

    get_registry().incr("ingest.events")
    for listener in _APPEND_LISTENERS:
        listener(event)


@dataclass
class CacheMetrics:
    """Hit/miss counters per cache kind (``group_ids``, ``join_positions``,
    ``predicate_mask``, ``column_codes``, ``joined_column``, ``zone_map``,
    ``zone_map_bitmask``, ``sql_parse``, ``plan``,
    ``provenance_sketch`` ...).  The last is recorded by the sketch store
    (:mod:`repro.engine.selection`), which shares this metrics surface
    even though its entries live outside :class:`ExecutionCache`.

    Counter updates take a private lock: dict read-modify-write is not
    atomic under free-running threads, and the thread-safety contract of
    :class:`ExecutionCache` promises that hits + misses equals the number
    of lookups even under concurrent hammering.
    """

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    #: Lookups that missed but were served by another thread's in-flight
    #: computation (single-flight coalescing) instead of recomputing.
    coalesced: dict[str, int] = field(default_factory=dict)
    invalidations: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_hit(self, kind: str) -> None:
        """Count one cache hit for ``kind``."""
        with self._lock:
            self.hits[kind] = self.hits.get(kind, 0) + 1

    def record_miss(self, kind: str) -> None:
        """Count one cache miss for ``kind``."""
        with self._lock:
            self.misses[kind] = self.misses.get(kind, 0) + 1

    def record_coalesced(self, kind: str) -> None:
        """Count one miss that was served by an in-flight leader."""
        with self._lock:
            self.coalesced[kind] = self.coalesced.get(kind, 0) + 1

    def record_invalidations(self, count: int) -> None:
        """Count ``count`` invalidated entries."""
        with self._lock:
            self.invalidations += count

    def hit_rate(self, kind: str) -> float | None:
        """Fraction of lookups served from cache.

        ``None`` when the kind was never looked up — never NaN, which
        would leak the invalid-JSON ``NaN`` token into benchmark
        artifacts (``BENCH_*.json``) that embed :meth:`snapshot`.
        """
        with self._lock:
            hits = self.hits.get(kind, 0)
            total = hits + self.misses.get(kind, 0)
        return hits / total if total else None

    def total_hits(self) -> int:
        """Hits summed across every kind."""
        with self._lock:
            return sum(self.hits.values())

    def total_misses(self) -> int:
        """Misses summed across every kind."""
        with self._lock:
            return sum(self.misses.values())

    def counts(self) -> dict:
        """Bare hits/misses copies — the cheap per-query-delta view.

        ``QueryProfile`` assembly diffs two of these around every
        profiled query, so this skips :meth:`snapshot`'s per-kind
        rollup (which would otherwise dominate profiling overhead).
        """
        with self._lock:
            return {"hits": dict(self.hits), "misses": dict(self.misses)}

    def snapshot(self) -> dict:
        """A plain-dict view for reports and benchmark JSON.

        Strict-JSON-safe: per-kind hit rates are plain ratios (a kind
        only appears once looked up, so the denominator is never zero).
        """
        with self._lock:
            kinds = sorted(set(self.hits) | set(self.misses))
            return {
                "hits": dict(self.hits),
                "misses": dict(self.misses),
                "coalesced": dict(self.coalesced),
                "invalidations": self.invalidations,
                "by_kind": {
                    k: {
                        "hits": self.hits.get(k, 0),
                        "misses": self.misses.get(k, 0),
                        "coalesced": self.coalesced.get(k, 0),
                        "hit_rate": self.hits.get(k, 0)
                        / (self.hits.get(k, 0) + self.misses.get(k, 0)),
                    }
                    for k in kinds
                },
            }

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.hits.clear()
            self.misses.clear()
            self.coalesced.clear()
            self.invalidations = 0


class ExecutionCache:
    """Identity-validated cache of derived execution artifacts.

    The cache never copies what it stores; callers must treat cached
    arrays as immutable (the engine's columns already are, by convention).

    Thread safety
    -------------
    One re-entrant lock serialises every structural operation — lookup,
    insert, invalidation, clear — and the metrics counters take their
    own lock, so concurrent sessions (and the parallel piece executor)
    can share the process-wide cache without lost updates or torn
    entries.  The lock is *never* held while a value is computed:
    :meth:`get_or_compute` releases it between the miss and the put, and
    concurrent misses on the same key are **single-flighted** through a
    per-key :class:`SingleFlight` — the first thread computes, every
    concurrent caller for the same key waits for that result instead of
    recomputing it (the pre-PR-10 behaviour was a documented "benign
    stampede, last put wins"; N clients hitting one cold query now
    compute once, not N times).  Distinct keys never wait on each other.
    The lock is re-entrant because weakref death callbacks call
    :meth:`_remove_key` and garbage collection can trigger them while
    the owning thread already holds the lock.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.metrics = CacheMetrics()
        self._lock = threading.RLock()
        self._flight = SingleFlight()
        # key -> (anchor weakrefs, anchor ids, value)
        self._entries: dict[tuple, tuple[tuple, tuple[int, ...], Any]] = {}
        # id(anchor) -> keys anchored on it, for invalidation / GC pruning
        self._anchor_keys: dict[int, set[tuple]] = {}

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def _key(
        self, kind: str, anchors: Sequence[Any], extra: Hashable
    ) -> tuple:
        return (kind, tuple(id(a) for a in anchors), extra)

    def _remove_key(self, key: tuple) -> None:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return
            for anchor_id in entry[1]:
                keys = self._anchor_keys.get(anchor_id)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del self._anchor_keys[anchor_id]

    def get(self, kind: str, anchors: Sequence[Any], extra: Hashable = None):
        """Return the cached value or :data:`MISS`.

        Raises ``TypeError`` if ``extra`` is unhashable — callers caching
        user-supplied predicate values should catch it and skip caching.
        """
        if not self.enabled:
            return MISS
        key = self._key(kind, anchors, extra)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.metrics.record_miss(kind)
                return MISS
            refs, _, value = entry
            for ref, anchor in zip(refs, anchors):
                if ref() is not anchor:
                    self._remove_key(key)
                    self.metrics.record_miss(kind)
                    return MISS
            self.metrics.record_hit(kind)
            return value

    def put(
        self,
        kind: str,
        anchors: Sequence[Any],
        value: Any,
        extra: Hashable = None,
    ) -> None:
        """Store ``value`` keyed on the anchors' identities.

        Anchors that do not support weak references make the entry
        unstorable; the put is silently skipped (the cache is an
        optimisation, never a requirement).
        """
        if not self.enabled:
            return
        key = self._key(kind, anchors, extra)

        def _on_death(_ref, key=key, cache_ref=weakref.ref(self)):
            cache = cache_ref()
            if cache is not None:
                cache._remove_key(key)

        try:
            refs = tuple(weakref.ref(a, _on_death) for a in anchors)
        except TypeError:
            return
        anchor_ids = tuple(id(a) for a in anchors)
        with self._lock:
            self._remove_key(key)
            self._entries[key] = (refs, anchor_ids, value)
            for anchor_id in anchor_ids:
                self._anchor_keys.setdefault(anchor_id, set()).add(key)

    def get_or_compute(
        self,
        kind: str,
        anchors: Sequence[Any],
        compute: Callable[[], Any],
        extra: Hashable = None,
    ):
        """Cached value for the key, computing and storing it on a miss.

        The cache lock is not held across ``compute()``, and concurrent
        misses on the same key are single-flighted: exactly one caller
        computes (and puts), every concurrent caller for the same key
        blocks on that computation and shares its value (counted under
        ``metrics.coalesced``).  Distinct keys proceed independently, so
        one expensive computation never serialises unrelated cache
        users.  The caller's ``compute`` must not re-enter the cache
        with the same key.
        """
        value = self.get(kind, anchors, extra)
        if value is not MISS:
            return value
        key = self._key(kind, anchors, extra)

        def _compute_and_put() -> Any:
            computed = compute()
            self.put(kind, anchors, computed, extra)
            return computed

        value, leader = self._flight.do(key, _compute_and_put)
        if not leader:
            self.metrics.record_coalesced(kind)
        return value

    def entries_for_anchor(
        self, kind: str, anchor: Any
    ) -> list[tuple[Hashable, Any]]:
        """``(extra, value)`` pairs of kind ``kind`` anchored on ``anchor``.

        Used by the incremental-append listeners to enumerate which
        layouts (``extra`` is ``chunk_rows`` for the zone-map kinds) have
        materialised summaries worth extending.  Only entries whose
        weakref still resolves to this exact object are returned (id
        reuse guard, as in :meth:`invalidate_object`).
        """
        out: list[tuple[Hashable, Any]] = []
        with self._lock:
            keys = self._anchor_keys.get(id(anchor))
            for key in list(keys or ()):
                if key[0] != kind:
                    continue
                entry = self._entries.get(key)
                if entry is not None and any(r() is anchor for r in entry[0]):
                    out.append((key[2], entry[2]))
        return out

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_object(self, obj: Any) -> int:
        """Drop every entry anchored on ``obj``; returns entries dropped.

        Invalidation listeners fire regardless of how many entries were
        anchored here: the arena may hold segments for objects the cache
        never cached (e.g. a column published but never grouped on).
        """
        with self._lock:
            keys = self._anchor_keys.get(id(obj))
            dropped = 0
            for key in list(keys or ()):
                entry = self._entries.get(key)
                # id() reuse guard: only drop entries whose weakref still
                # resolves to this exact object.
                if entry is not None and any(r() is obj for r in entry[0]):
                    self._remove_key(key)
                    dropped += 1
        if dropped:
            self.metrics.record_invalidations(dropped)
        for listener in _INVALIDATION_LISTENERS:
            listener(obj)
        return dropped

    def invalidate_table(self, table: Any) -> int:
        """Drop entries anchored on a table or any of its columns."""
        dropped = self.invalidate_object(table)
        column = getattr(table, "column", None)
        names = getattr(table, "column_names", None)
        if callable(column) and names is not None:
            for name in names:
                dropped += self.invalidate_object(column(name))
        bitmask = getattr(table, "bitmask", None)
        if bitmask is not None:
            dropped += self.invalidate_object(bitmask)
        return dropped

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``metrics.reset()``)."""
        with self._lock:
            self._entries.clear()
            self._anchor_keys.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide cache shared by the executor, expression evaluation, and
#: join resolution.  Entries are keyed by object identity (validated with
#: weak references), so unrelated databases sharing the cache can never
#: read each other's artifacts.
_GLOBAL_CACHE = ExecutionCache()


def get_cache() -> ExecutionCache:
    """The process-wide execution cache."""
    return _GLOBAL_CACHE


def execution_cache_metrics() -> CacheMetrics:
    """Hit/miss counters of the process-wide execution cache."""
    return _GLOBAL_CACHE.metrics


__all__ = [
    "MISS",
    "AppendEvent",
    "CacheMetrics",
    "ExecutionCache",
    "SingleFlight",
    "add_append_listener",
    "add_invalidation_listener",
    "execution_cache_metrics",
    "get_cache",
    "notify_append",
]
