"""Column statistics — the first pre-processing scan.

Small group sampling's first pass over the data counts the occurrences of
every distinct value in every column, dropping a column from consideration
once its distinct-value count exceeds the threshold ``τ`` (Section 4.2.1;
the paper uses τ = 5000).  :func:`collect_column_stats` reproduces that
scan over a flat table (or star-schema joined view) and reports, per
retained column, the value→frequency map that the second pass needs.

The same statistics drive the workload generator (eligible grouping
columns, distinct-value subsets for IN predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.engine.column import ColumnKind
from repro.engine.table import Table

#: Distinct-value cutoff used in the paper's experiments.
DEFAULT_DISTINCT_THRESHOLD = 5000


@dataclass(frozen=True)
class ColumnStats:
    """Frequency statistics for one column.

    Attributes
    ----------
    name:
        Column name.
    kind:
        Column kind.
    frequencies:
        Decoded value → number of occurrences.
    """

    name: str
    kind: ColumnKind
    frequencies: dict[Any, int]

    @property
    def distinct_count(self) -> int:
        """Number of distinct values."""
        return len(self.frequencies)

    @property
    def total_count(self) -> int:
        """Total rows counted (the table's row count)."""
        return sum(self.frequencies.values())

    def values_by_frequency(self) -> list[tuple[Any, int]]:
        """Distinct values sorted by descending frequency (ties by value)."""
        return sorted(
            self.frequencies.items(), key=lambda item: (-item[1], str(item[0]))
        )

    def common_values(self, small_fraction: float) -> set[Any]:
        """Compute the paper's common-value set ``L(C)``.

        ``L(C)`` is the *minimal* set of values, taken in descending
        frequency order, whose frequencies sum to at least
        ``N * (1 - small_fraction)``.  Rows with values outside ``L(C)``
        belong to small groups and go into the column's small group table,
        of which there are at most ``N * small_fraction``.
        """
        if not 0.0 <= small_fraction <= 1.0:
            raise ValueError(
                f"small fraction must be in [0, 1], got {small_fraction}"
            )
        target = self.total_count * (1.0 - small_fraction)
        covered = 0
        common: set[Any] = set()
        for value, count in self.values_by_frequency():
            if covered >= target:
                break
            common.add(value)
            covered += count
        return common


def column_stats(table: Table, name: str) -> ColumnStats:
    """Compute frequency statistics for one column."""
    col = table.column(name)
    return ColumnStats(name=name, kind=col.kind, frequencies=col.value_counts())


def collect_column_stats(
    table: Table,
    columns: list[str] | None = None,
    distinct_threshold: int = DEFAULT_DISTINCT_THRESHOLD,
) -> dict[str, ColumnStats]:
    """First pre-processing scan: frequency maps for retained columns.

    Columns whose distinct-value count exceeds ``distinct_threshold`` are
    dropped (they are poor grouping candidates and their hashtables would
    be large — Section 4.2.1).  The scan is vectorised per column; the
    effect is identical to the paper's streaming hashtable build.
    """
    if columns is None:
        columns = table.column_names
    retained: dict[str, ColumnStats] = {}
    for name in columns:
        col = table.column(name)
        if len(col) == 0:
            continue
        if col.distinct_count() > distinct_threshold:
            continue
        retained[name] = column_stats(table, name)
    return retained


def per_group_selectivity(group_sizes: list[int], total_rows: int) -> float:
    """Average group size as a fraction of the table (Section 5.3.1).

    The paper bins queries by this quantity ("per group selectivity") when
    reporting Figure 5.
    """
    if not group_sizes or total_rows <= 0:
        return 0.0
    return float(np.mean(group_sizes)) / float(total_rows)
