"""Column statistics — the first pre-processing scan.

Small group sampling's first pass over the data counts the occurrences of
every distinct value in every column, dropping a column from consideration
once its distinct-value count exceeds the threshold ``τ`` (Section 4.2.1;
the paper uses τ = 5000).  :func:`collect_column_stats` reproduces that
scan over a flat table (or star-schema joined view) and reports, per
retained column, the value→frequency map that the second pass needs.

The same statistics drive the workload generator (eligible grouping
columns, distinct-value subsets for IN predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.engine.column import Column, ColumnKind
from repro.engine.parallel import ExecutionOptions, map_row_chunks, resolve_options
from repro.engine.table import Table

#: Distinct-value cutoff used in the paper's experiments.
DEFAULT_DISTINCT_THRESHOLD = 5000


@dataclass(frozen=True)
class ColumnStats:
    """Frequency statistics for one column.

    Attributes
    ----------
    name:
        Column name.
    kind:
        Column kind.
    frequencies:
        Decoded value → number of occurrences.
    """

    name: str
    kind: ColumnKind
    frequencies: dict[Any, int]

    @property
    def distinct_count(self) -> int:
        """Number of distinct values."""
        return len(self.frequencies)

    @property
    def total_count(self) -> int:
        """Total rows counted (the table's row count)."""
        return sum(self.frequencies.values())

    def values_by_frequency(self) -> list[tuple[Any, int]]:
        """Distinct values sorted by descending frequency (ties by value)."""
        return sorted(
            self.frequencies.items(), key=lambda item: (-item[1], str(item[0]))
        )

    def common_values(self, small_fraction: float) -> set[Any]:
        """Compute the paper's common-value set ``L(C)``.

        ``L(C)`` is the *minimal* set of values, taken in descending
        frequency order, whose frequencies sum to at least
        ``N * (1 - small_fraction)``.  Rows with values outside ``L(C)``
        belong to small groups and go into the column's small group table,
        of which there are at most ``N * small_fraction``.
        """
        if not 0.0 <= small_fraction <= 1.0:
            raise ValueError(
                f"small fraction must be in [0, 1], got {small_fraction}"
            )
        target = self.total_count * (1.0 - small_fraction)
        covered = 0
        common: set[Any] = set()
        for value, count in self.values_by_frequency():
            if covered >= target:
                break
            common.add(value)
            covered += count
        return common


def column_stats(table: Table, name: str) -> ColumnStats:
    """Compute frequency statistics for one column."""
    col = table.column(name)
    return ColumnStats(name=name, kind=col.kind, frequencies=col.value_counts())


def _decode_counts(col: Column, raw_counts: dict[Any, int]) -> dict[Any, int]:
    """Map raw-representation counts to decoded-value counts.

    Keys come back sorted by raw value, matching the ``numpy.unique``
    order :meth:`Column.value_counts` produces.
    """
    items = sorted(raw_counts.items())
    if col.kind is ColumnKind.STRING:
        dictionary = col.require_dictionary()
        return {dictionary[int(v)]: c for v, c in items}
    if col.kind is ColumnKind.INT:
        return {int(v): c for v, c in items}
    return {float(v): c for v, c in items}


def collect_column_stats(
    table: Table,
    columns: list[str] | None = None,
    distinct_threshold: int = DEFAULT_DISTINCT_THRESHOLD,
    options: ExecutionOptions | None = None,
) -> dict[str, ColumnStats]:
    """First pre-processing scan: frequency maps for retained columns.

    Columns whose distinct-value count exceeds ``distinct_threshold`` are
    dropped (they are poor grouping candidates and their hashtables would
    be large — Section 4.2.1).  The scan is vectorised per column; the
    effect is identical to the paper's streaming hashtable build.

    With ``options.max_workers > 1`` the scan is chunked over row
    ranges: every chunk builds one value histogram per candidate column
    and the per-chunk histograms are map-reduced by summation.  Counts
    are integers, so the reduction is exact and the result is identical
    to the serial scan for any worker count.
    """
    if columns is None:
        columns = table.column_names
    options = resolve_options(options)
    if options.workers > 1 and table.n_rows > options.chunk_rows:
        return _collect_column_stats_chunked(
            table, columns, distinct_threshold, options
        )
    retained: dict[str, ColumnStats] = {}
    for name in columns:
        col = table.column(name)
        if len(col) == 0:
            continue
        if col.distinct_count() > distinct_threshold:
            continue
        retained[name] = column_stats(table, name)
    return retained


def _histogram_chunk(handles: tuple, start: int, stop: int) -> list[dict[Any, int]]:
    """Process-pool task: per-column value histograms for one row chunk.

    ``handles`` are :class:`~repro.engine.procpool.ArrayHandle`
    descriptors of the candidate columns' raw arrays; the raw-value keys
    come back via ``.tolist()`` exactly as in the in-process closure, so
    the merged counts are identical under either backend.
    """
    from repro.engine import procpool

    out: list[dict[Any, int]] = []
    for handle in handles:
        data = procpool.resolve_array(handle)
        values, counts = np.unique(data[start:stop], return_counts=True)
        out.append(dict(zip(values.tolist(), counts.tolist())))
    return out


def _collect_column_stats_chunked(
    table: Table,
    columns: list[str],
    distinct_threshold: int,
    options: ExecutionOptions,
) -> dict[str, ColumnStats]:
    """Chunked map-reduce variant of :func:`collect_column_stats`."""
    cols = [(name, table.column(name)) for name in columns]
    cols = [(name, col) for name, col in cols if len(col) > 0]
    if not cols:
        return {}

    use_processes = options.uses_processes
    if use_processes:
        from repro.engine import procpool

        use_processes = not procpool.in_worker()

    if use_processes:
        arena = procpool.get_arena()
        handles = tuple(arena.publish_array(col.data) for _, col in cols)
        chunks = procpool.process_map_row_chunks(
            _histogram_chunk, handles, table.n_rows, options
        )
    else:

        def _histograms(start: int, stop: int) -> list[dict[Any, int]]:
            out: list[dict[Any, int]] = []
            for _, col in cols:
                values, counts = np.unique(
                    col.data[start:stop], return_counts=True
                )
                out.append(dict(zip(values.tolist(), counts.tolist())))
            return out

        chunks = map_row_chunks(_histograms, table.n_rows, options)

    merged: list[dict[Any, int]] = [{} for _ in cols]
    for chunk in chunks:
        for acc, part in zip(merged, chunk):
            for value, count in part.items():
                acc[value] = acc.get(value, 0) + count
    retained: dict[str, ColumnStats] = {}
    for (name, col), raw_counts in zip(cols, merged):
        if len(raw_counts) > distinct_threshold:
            continue
        retained[name] = ColumnStats(
            name=name, kind=col.kind, frequencies=_decode_counts(col, raw_counts)
        )
    return retained


def per_group_selectivity(group_sizes: list[int], total_rows: int) -> float:
    """Average group size as a fraction of the table (Section 5.3.1).

    The paper bins queries by this quantity ("per group selectivity") when
    reporting Figure 5.
    """
    if not group_sizes or total_rows <= 0:
        return 0.0
    return float(np.mean(group_sizes)) / float(total_rows)
