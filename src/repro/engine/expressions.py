"""Query AST: predicates and aggregate specifications.

The engine and the AQP layers share this representation.  The SQL parser
produces it and the SQL formatter renders it back, so the same objects flow
from SQL text through rewriting to execution.

Predicates evaluate against a :class:`~repro.engine.table.Table` and return
a boolean numpy array.  String comparisons are evaluated on dictionary
codes, never on the decoded strings.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine.bitmask import Bitmask
from repro.engine.column import ColumnKind
from repro.engine.table import Table
from repro.errors import QueryError


class Predicate:
    """Base class for row predicates."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Return a boolean mask of matching rows."""
        raise NotImplementedError

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        """Mask for the rows in ``[start, stop)`` only.

        The zone-map executor assembles WHERE masks chunk by chunk,
        evaluating only chunks the summaries cannot decide (see
        :mod:`repro.engine.zonemap`); the contract is strict value
        equality: ``evaluate_range(t, a, b) == evaluate(t)[a:b]``
        element-for-element.  The default implementation honours the
        contract by slicing a full evaluation; subclasses override it to
        touch only the chunk's rows.
        """
        return self.evaluate(table)[start:stop]

    def evaluation_cost(self) -> int:
        """Relative cost rank used to order conjuncts cheapest-first.

        Column-local leaves (code/value comparisons) rank 0; predicates
        that read wider table state (the multi-word bitmask filter) rank
        higher, so :class:`And` evaluates the cheap, typically selective
        conjuncts first and can stop as soon as the running mask is
        empty.
        """
        return 1

    def columns(self) -> set[str]:
        """Names of the columns this predicate references."""
        raise NotImplementedError

    def cache_safe(self) -> bool:
        """Whether the mask depends only on the referenced columns' values.

        Pure predicates may be memoised against the identities of those
        columns (see the executor's predicate-mask cache).  Predicates that
        read other table state — the bitmask de-duplication filter — must
        return ``False``.
        """
        return True


@dataclass(frozen=True)
class Equals(Predicate):
    """``column = value``."""

    column: str
    value: Any

    def evaluate(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        encoded = col.encode_value(self.value)
        return col.data == encoded

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        col = table.column(self.column)
        encoded = col.encode_value(self.value)
        return col.data[start:stop] == encoded

    def evaluation_cost(self) -> int:
        return 0

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class InSet(Predicate):
    """``column IN (v1, v2, ...)`` — the paper's workload predicates."""

    column: str
    values: tuple[Any, ...]

    def __init__(self, column: str, values: Sequence[Any]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def _evaluate_codes(self, col, data: np.ndarray) -> np.ndarray:
        """Mask for one stretch of the column's stored representation."""
        if col.kind is ColumnKind.STRING:
            # Translate the literal list to code space once, then answer
            # with a boolean lookup over the (small) dictionary — no
            # np.isin sort over the per-row data.
            lut = np.zeros(len(col.require_dictionary()), dtype=bool)
            any_present = False
            for v in self.values:
                code = col.encode_value(v)
                if code >= 0:
                    lut[code] = True
                    any_present = True
            if not any_present:
                return np.zeros(len(data), dtype=bool)
            return lut[data]
        encoded = [col.encode_value(v) for v in self.values]
        if not encoded:
            return np.zeros(len(data), dtype=bool)
        targets = np.asarray(sorted(encoded), dtype=col.data.dtype)
        return np.isin(data, targets)

    def evaluate(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        return self._evaluate_codes(col, col.data)

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        col = table.column(self.column)
        return self._evaluate_codes(col, col.data[start:stop])

    def evaluation_cost(self) -> int:
        return 0

    def columns(self) -> set[str]:
        return {self.column}


class CompareOp(enum.Enum):
    """Comparison operators for :class:`Compare`."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    NE = "<>"
    EQ = "="


_COMPARE_FUNCS = {
    CompareOp.LT: np.less,
    CompareOp.LE: np.less_equal,
    CompareOp.GT: np.greater,
    CompareOp.GE: np.greater_equal,
    CompareOp.NE: np.not_equal,
    CompareOp.EQ: np.equal,
}


@dataclass(frozen=True)
class Compare(Predicate):
    """``column <op> value`` for numeric columns (``=``/``<>`` for any)."""

    column: str
    op: CompareOp
    value: Any

    def _encode(self, col) -> float | int:
        if col.kind is ColumnKind.STRING and self.op not in (
            CompareOp.EQ,
            CompareOp.NE,
        ):
            raise QueryError(
                f"ordering comparison {self.op.value} not supported on "
                f"string column {self.column!r}"
            )
        return col.encode_value(self.value)

    def evaluate(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        return _COMPARE_FUNCS[self.op](col.data, self._encode(col))

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        col = table.column(self.column)
        return _COMPARE_FUNCS[self.op](col.data[start:stop], self._encode(col))

    def evaluation_cost(self) -> int:
        return 0

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Between(Predicate):
    """``column BETWEEN lo AND hi`` (inclusive both ends)."""

    column: str
    low: Any
    high: Any

    def _require_numeric(self, col) -> None:
        if col.kind is ColumnKind.STRING:
            raise QueryError(
                f"BETWEEN not supported on string column {self.column!r}"
            )

    def evaluate(self, table: Table) -> np.ndarray:
        col = table.column(self.column)
        self._require_numeric(col)
        return (col.data >= self.low) & (col.data <= self.high)

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        col = table.column(self.column)
        self._require_numeric(col)
        data = col.data[start:stop]
        return (data >= self.low) & (data <= self.high)

    def evaluation_cost(self) -> int:
        return 0

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    operands: tuple[Predicate, ...]

    def __init__(self, operands: Sequence[Predicate]) -> None:
        if not operands:
            raise QueryError("AND requires at least one operand")
        object.__setattr__(self, "operands", tuple(operands))

    def ordered_operands(self) -> tuple[Predicate, ...]:
        """Operands sorted cheapest-first (stable within equal cost).

        Column-local leaves run before wider-state predicates like
        :class:`BitmaskDisjoint`; AND of booleans is commutative, so the
        mask is identical in any order.
        """
        return tuple(
            sorted(self.operands, key=lambda p: p.evaluation_cost())
        )

    def evaluate(self, table: Table) -> np.ndarray:
        # Short-circuit: once the running mask is all-false no further
        # conjunct can set a bit, so later operands are *not evaluated at
        # all* — including operands whose evaluation would raise (e.g. a
        # bitmask filter against a bitmask-less table).  Pinned by test.
        ordered = self.ordered_operands()
        mask = ordered[0].evaluate(table)
        for operand in ordered[1:]:
            if not mask.any():
                break
            mask = mask & operand.evaluate(table)
        return mask

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        ordered = self.ordered_operands()
        mask = ordered[0].evaluate_range(table, start, stop)
        for operand in ordered[1:]:
            if not mask.any():
                break
            mask = mask & operand.evaluate_range(table, start, stop)
        return mask

    def evaluation_cost(self) -> int:
        return max(op.evaluation_cost() for op in self.operands)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def cache_safe(self) -> bool:
        return all(operand.cache_safe() for operand in self.operands)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates.

    The symmetric twin of :class:`And`: where AND short-circuits once the
    running mask is all-false, OR short-circuits once it is all-*true* —
    no further arm can clear a bit.  Arms are therefore ordered
    most-saturating-first when a table is available: the zone-map chunk
    verdicts (see :func:`repro.engine.zonemap.chunk_verdicts`) estimate
    how much of the mask each arm fills (proven ALL_TRUE chunks count
    double an undecided chunk), and OR of booleans is commutative, so
    the mask is identical in any order while broad arms give later,
    narrower arms the chance to never evaluate at all.
    """

    operands: tuple[Predicate, ...]

    def __init__(self, operands: Sequence[Predicate]) -> None:
        if not operands:
            raise QueryError("OR requires at least one operand")
        object.__setattr__(self, "operands", tuple(operands))

    def ordered_operands(
        self, table: Table | None = None, options=None
    ) -> tuple[Predicate, ...]:
        """Arms ordered to minimise mask evaluations (stable on ties).

        With a table, rank by the zone-map saturation estimate
        ``2·(ALL_TRUE chunks) + (UNKNOWN chunks)`` descending — the arm
        proven to fill the most chunks runs first, so the all-true
        short-circuit can drop the rest; ties break cheapest-first.
        Without a table (no summaries to consult) only the cost rank
        applies, mirroring :meth:`And.ordered_operands`.
        """
        if table is None:
            return tuple(
                sorted(self.operands, key=lambda p: p.evaluation_cost())
            )
        from repro.engine import zonemap

        def rank(operand: Predicate) -> tuple[int, int]:
            verdicts = zonemap.chunk_verdicts(table, operand, options)
            n_true = int((verdicts == zonemap.VERDICT_ALL_TRUE).sum())
            n_unknown = int((verdicts == zonemap.VERDICT_UNKNOWN).sum())
            return (-(2 * n_true + n_unknown), operand.evaluation_cost())

        return tuple(sorted(self.operands, key=rank))

    def evaluate(self, table: Table) -> np.ndarray:
        # Short-circuit: once the running mask is all-true no further arm
        # can clear a bit, so later arms are not evaluated at all.
        ordered = self.ordered_operands(table)
        mask = ordered[0].evaluate(table)
        for operand in ordered[1:]:
            if mask.all():
                break
            mask = mask | operand.evaluate(table)
        return mask

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        ordered = self.ordered_operands(table)
        mask = ordered[0].evaluate_range(table, start, stop)
        for operand in ordered[1:]:
            if mask.all():
                break
            mask = mask | operand.evaluate_range(table, start, stop)
        return mask

    def evaluation_cost(self) -> int:
        return max(op.evaluation_cost() for op in self.operands)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def cache_safe(self) -> bool:
        return all(operand.cache_safe() for operand in self.operands)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return ~self.operand.evaluate(table)

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        return ~self.operand.evaluate_range(table, start, stop)

    def evaluation_cost(self) -> int:
        return self.operand.evaluation_cost()

    def columns(self) -> set[str]:
        return self.operand.columns()

    def cache_safe(self) -> bool:
        return self.operand.cache_safe()


@dataclass(frozen=True)
class BitmaskDisjoint(Predicate):
    """``bitmask & m = 0`` — the small group sampling de-duplication filter.

    Evaluates against the table's attached :class:`BitmaskVector`.  Tables
    without a bitmask treat every row as matching when the mask is zero and
    raise otherwise.
    """

    mask: Bitmask

    def evaluate(self, table: Table) -> np.ndarray:
        if table.bitmask is None:
            if self.mask.is_zero():
                return np.ones(table.n_rows, dtype=bool)
            raise QueryError(
                f"table {table.name!r} has no bitmask column but the query "
                "filters on one"
            )
        return table.bitmask.isdisjoint(self.mask)

    def evaluate_range(self, table: Table, start: int, stop: int) -> np.ndarray:
        if table.bitmask is None:
            if self.mask.is_zero():
                return np.ones(stop - start, dtype=bool)
            raise QueryError(
                f"table {table.name!r} has no bitmask column but the query "
                "filters on one"
            )
        return table.bitmask.isdisjoint_range(self.mask, start, stop)

    def evaluation_cost(self) -> int:
        # Touches every word of the multi-word per-row bitmask — costlier
        # than a column-local code comparison, so And runs it last.
        return 2

    def columns(self) -> set[str]:
        return set()

    def cache_safe(self) -> bool:
        # Depends on the table's bitmask, not on any data column.
        return False


def conjoin(predicates: Sequence[Predicate]) -> Predicate | None:
    """Combine predicates into one conjunction (``None`` for empty input)."""
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(predicates)


class AggFunc(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate expression in a query's SELECT list.

    ``COUNT`` takes no column (``COUNT(*)``); every other function requires
    a numeric column.
    """

    func: AggFunc
    column: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.func is AggFunc.COUNT:
            if self.column is not None:
                raise QueryError("only COUNT(*) is supported, not COUNT(col)")
        elif self.column is None:
            raise QueryError(f"{self.func.value} requires a column")

    @property
    def name(self) -> str:
        """Output column name for this aggregate."""
        if self.alias:
            return self.alias
        if self.func is AggFunc.COUNT:
            return "count"
        return f"{self.func.value.lower()}_{self.column}"

    def describe(self) -> str:
        """SQL-ish rendering, e.g. ``SUM(revenue)``."""
        target = "*" if self.column is None else self.column
        return f"{self.func.value}({target})"


@dataclass(frozen=True)
class Query:
    """An aggregation query with optional grouping and selection.

    Attributes
    ----------
    table:
        Target table name.  For star-schema databases this is the fact
        table; dimension columns may be referenced freely (the executor
        resolves the foreign-key joins).
    aggregates:
        The aggregate expressions to compute.
    group_by:
        Grouping columns (empty tuple for a plain aggregation).
    where:
        Optional selection predicate.
    having:
        Post-aggregation filters as ``(aggregate_name, op, value)``
        triples, conjoined.  Applied to the (estimated) aggregate values
        after grouping — and, for approximate answers, after stratum
        combination.
    order_by:
        Result ordering as ``(name, descending)`` pairs, where ``name``
        is a grouping column or an aggregate's output name.  Supports the
        classic top-k analysis query ("top-selling products").
    limit:
        Keep only the first ``limit`` result groups (after ordering).
    """

    table: str
    aggregates: tuple[AggregateSpec, ...]
    group_by: tuple[str, ...] = field(default_factory=tuple)
    where: Predicate | None = None
    order_by: tuple[tuple[str, bool], ...] = field(default_factory=tuple)
    limit: int | None = None
    having: tuple[tuple[str, "CompareOp", float], ...] = field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise QueryError("a query must compute at least one aggregate")
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError("duplicate grouping column")
        valid_names = set(self.group_by) | {a.name for a in self.aggregates}
        for name, _ in self.order_by:
            if name not in valid_names:
                raise QueryError(
                    f"ORDER BY {name!r} is neither a grouping column nor "
                    f"an aggregate name; have {sorted(valid_names)}"
                )
        aggregate_names = {a.name for a in self.aggregates}
        for name, op, _ in self.having:
            if name not in aggregate_names:
                raise QueryError(
                    f"HAVING {name!r} is not an aggregate name; "
                    f"have {sorted(aggregate_names)}"
                )
            if not isinstance(op, CompareOp):
                raise QueryError("HAVING operator must be a CompareOp")
        if self.limit is not None and self.limit < 1:
            raise QueryError(f"LIMIT must be >= 1, got {self.limit}")

    def referenced_columns(self) -> set[str]:
        """All data columns the query touches."""
        out = set(self.group_by)
        for agg in self.aggregates:
            if agg.column is not None:
                out.add(agg.column)
        if self.where is not None:
            out |= self.where.columns()
        return out

    def with_table(self, table: str) -> "Query":
        """Return the same query re-targeted at another table."""
        return Query(
            table,
            self.aggregates,
            self.group_by,
            self.where,
            self.order_by,
            self.limit,
            self.having,
        )

    def with_where(self, where: Predicate | None) -> "Query":
        """Return the same query with a different WHERE predicate."""
        return Query(
            self.table,
            self.aggregates,
            self.group_by,
            where,
            self.order_by,
            self.limit,
            self.having,
        )

    def without_order(self) -> "Query":
        """Return the query with HAVING/ordering/limit stripped.

        Rewritten sample pieces must compute *all* groups — these clauses
        apply only after the strata are combined.
        """
        if not self.order_by and self.limit is None and not self.having:
            return self
        return Query(self.table, self.aggregates, self.group_by, self.where)

    def evaluate_having(self, values: tuple[float, ...]) -> bool:
        """Whether one group's aggregate values pass the HAVING clauses."""
        names = [a.name for a in self.aggregates]
        for name, op, threshold in self.having:
            value = values[names.index(name)]
            if not bool(_COMPARE_FUNCS[op](value, threshold)):
                return False
        return True

    def and_where(self, extra: Predicate | None) -> "Query":
        """Return the query with ``extra`` conjoined onto its predicate."""
        if extra is None:
            return self
        combined = conjoin([p for p in (self.where, extra) if p is not None])
        return self.with_where(combined)
