"""Star schema metadata.

The paper considers queries over a single fact table or over a *star
schema*: a fact table joined to dimension tables through foreign-key joins.
:class:`StarSchema` records that structure so the executor can resolve
which physical table owns each column, and so samples can be materialised
as *join synopses* (pre-joined wide rows, per [3]).

Column names must be globally unique across the fact table and all
dimension tables (TPC-H style ``l_``/``p_``/``s_`` prefixes); this keeps
queries, which reference bare column names, unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key join edge from the fact table to one dimension table.

    Attributes
    ----------
    fact_column:
        Key column on the fact table.
    dimension_table:
        Name of the dimension table.
    dimension_key:
        Primary-key column on the dimension table.
    """

    fact_column: str
    dimension_table: str
    dimension_key: str


@dataclass(frozen=True)
class StarSchema:
    """Join structure of a star-schema database.

    Attributes
    ----------
    fact_table:
        Name of the central fact table.
    foreign_keys:
        One entry per dimension table reachable from the fact table.
    """

    fact_table: str
    foreign_keys: tuple[ForeignKey, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        dims = [fk.dimension_table for fk in self.foreign_keys]
        if len(dims) != len(set(dims)):
            raise SchemaError("duplicate dimension table in star schema")
        if self.fact_table in dims:
            raise SchemaError("fact table cannot also be a dimension table")

    @property
    def dimension_tables(self) -> list[str]:
        """Names of all dimension tables."""
        return [fk.dimension_table for fk in self.foreign_keys]

    def foreign_key_for(self, dimension_table: str) -> ForeignKey:
        """Return the FK edge for ``dimension_table``.

        Raises
        ------
        SchemaError
            If the table is not a dimension of this schema.
        """
        for fk in self.foreign_keys:
            if fk.dimension_table == dimension_table:
                return fk
        raise SchemaError(
            f"{dimension_table!r} is not a dimension table of {self.fact_table!r}"
        )
