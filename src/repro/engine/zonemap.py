"""Chunk summaries and data skipping (zone maps).

The paper's cost model says a query should cost what the rows it
*touches* cost (§4.2.2) — yet a WHERE mask is normally built by scanning
every row of every selected piece, even when the predicate provably
matches nothing in most of the table.  This module adds the missing
layer: a per-chunk summary ("zone map") of every stored column, aligned
with the deterministic :func:`~repro.engine.parallel.chunk_ranges`
layout, that lets the executor decide *per chunk* whether a predicate

* can match no row (**skip** the chunk — its mask stretch is hard
  ``False``),
* must match every row (**accept** the chunk — its mask stretch is set
  ``True`` without reading a value), or
* cannot be decided (**scan** the chunk with
  :meth:`~repro.engine.expressions.Predicate.evaluate_range`).

Summary layout
--------------
Per chunk ``[start, stop)`` of a column:

* numeric columns: ``(min, max, zero_count)`` over the raw stored
  values;
* dictionary (string) columns: the frozenset of distinct codes present,
  capped at :data:`ZONE_MAP_DISTINCT_CUTOFF` (``None`` beyond the cap —
  "too varied to summarise");
* bitmask vectors: the bitwise OR of the chunk's per-row mask words,
  which proves the §4.2.2 de-duplication filter ``bitmask & m = 0``
  holds for the whole chunk whenever the OR is disjoint from ``m``.

Summaries are built lazily on first use with
:func:`~repro.engine.parallel.map_row_chunks` (so the build itself
parallelises) and cached in the cross-query
:class:`~repro.engine.cache.ExecutionCache` keyed on the column /
bitmask-vector *identity* plus the ``chunk_rows`` layout.  Identity
anchoring is what makes invalidation free: every mutation path in the
engine replaces tables (and therefore columns and bitmask vectors)
wholesale — ``append_rows``, small-group table replacement,
``drop_table`` — and the cache drops entries whose anchor object died or
changed identity.  Lint rule RL008 statically enforces that nothing
mutates the summarised arrays in place behind the cache's back.

Identity anchoring also carries across the process backend for free:
workers reconstruct columns from shared-memory handles through a
handle-keyed cache (:func:`~repro.engine.procpool.resolve_column`), so
the *same* ``Column`` object serves every task in a worker and the
zone maps built in that worker hit on repeat scans exactly as in the
parent.

Why answers are unchanged
-------------------------
Verdicts are conservative three-valued proofs.  A chunk is skipped only
when *no* row can match and accepted only when *every* row must match;
anything unprovable (including chunks whose min/max are NaN) is scanned
with ``evaluate_range``, whose contract is strict value equality with
``evaluate(table)[start:stop]``.  The assembled mask is therefore equal
element-for-element to the full evaluation at any ``chunk_rows`` and any
``max_workers`` — data skipping is a pure cost knob, like the worker
count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.cache import (
    MISS,
    AppendEvent,
    add_append_listener,
    get_cache,
)
from repro.engine.column import Column, ColumnKind
from repro.engine.expressions import (
    And,
    Between,
    BitmaskDisjoint,
    Compare,
    CompareOp,
    Equals,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.engine.parallel import (
    ExecutionOptions,
    chunk_ranges,
    map_row_chunks,
    resolve_options,
)
from repro.engine.table import Table
from repro.obs.registry import get_registry

#: Chunk verdicts: conjunction is ``min`` (ALL_FALSE dominates), disjunction
#: is ``max`` (ALL_TRUE dominates), negation is arithmetic ``-`` (UNKNOWN is
#: a fixed point).
VERDICT_ALL_FALSE = -1
VERDICT_UNKNOWN = 0
VERDICT_ALL_TRUE = 1

#: Distinct-code sets larger than this are not stored (summary cost would
#: approach the scan it is meant to avoid); such chunks always scan.
ZONE_MAP_DISTINCT_CUTOFF = 64


@dataclass(frozen=True)
class ColumnZoneMap:
    """Per-chunk summaries of one column under one chunk layout.

    ``summaries[i]`` is :meth:`Column.range_summary` of ``ranges[i]`` —
    ``(min, max, zero_count)`` for numeric columns, ``(code_set,
    null_count)`` for dictionary columns.
    """

    ranges: tuple[tuple[int, int], ...]
    summaries: tuple[tuple, ...]
    is_string: bool

    @property
    def n_chunks(self) -> int:
        return len(self.ranges)


def _build_column_zone_map(
    col: Column, options: ExecutionOptions
) -> ColumnZoneMap:
    ranges = tuple(chunk_ranges(len(col), options.chunk_rows))
    summaries = tuple(
        map_row_chunks(
            lambda start, stop: col.range_summary(
                start, stop, ZONE_MAP_DISTINCT_CUTOFF
            ),
            len(col),
            options,
        )
    )
    # Rows whose values were (re)read to build summaries — the unit the
    # ingest benchmark compares between the extend and rebuild paths.
    get_registry().incr("ingest.rows_recomputed", len(col))
    return ColumnZoneMap(
        ranges=ranges,
        summaries=summaries,
        is_string=col.kind is ColumnKind.STRING,
    )


def column_zone_map(col: Column, options: ExecutionOptions) -> ColumnZoneMap:
    """The (cached) zone map of ``col`` for ``options.chunk_rows``.

    Cached under kind ``"zone_map"`` anchored on the column's identity —
    replaced columns (every mutation path replaces them) can never serve
    stale summaries.
    """
    cache = get_cache()
    cached = cache.get("zone_map", (col,), extra=options.chunk_rows)
    if cached is not MISS:
        return cached
    zone_map = _build_column_zone_map(col, options)
    cache.put("zone_map", (col,), zone_map, extra=options.chunk_rows)
    return zone_map


def bitmask_chunk_ors(vector, options: ExecutionOptions) -> np.ndarray:
    """Per-chunk OR of a bitmask vector's words, shape ``(n_chunks, n_words)``.

    Cached under kind ``"zone_map_bitmask"`` anchored on the vector's
    identity (sample tables are rebuilt — new vector objects — on every
    replacement path).
    """
    cache = get_cache()
    cached = cache.get("zone_map_bitmask", (vector,), extra=options.chunk_rows)
    if cached is not MISS:
        return cached
    rows = map_row_chunks(
        lambda start, stop: vector.range_or(start, stop),
        len(vector),
        options,
    )
    if rows:
        ors = np.stack(rows)
    else:
        ors = np.zeros((0, vector.words.shape[1]), dtype=np.uint64)
    get_registry().incr("ingest.rows_recomputed", len(vector))
    cache.put("zone_map_bitmask", (vector,), ors, extra=options.chunk_rows)
    return ors


# ----------------------------------------------------------------------
# Incremental append maintenance
# ----------------------------------------------------------------------
def _stable_prefix_chunks(
    old_ranges: tuple[tuple[int, int], ...],
    new_ranges: tuple[tuple[int, int], ...],
) -> int:
    """Number of leading chunks whose ``[start, stop)`` range is unchanged.

    ``chunk_ranges`` balances chunk sizes, so an arbitrary append can
    shift *every* boundary; only positionally identical ranges cover
    provably identical rows (``Table.concat`` keeps the old rows as an
    unchanged prefix, dictionary codes included).  Chunk-aligned appends
    keep the whole old layout stable; misaligned ones fall back toward a
    fuller recompute — correct either way.
    """
    reused = 0
    limit = min(len(old_ranges), len(new_ranges))
    while reused < limit and old_ranges[reused] == new_ranges[reused]:
        reused += 1
    return reused


def _extend_zone_maps(event: AppendEvent) -> None:
    """Append listener: extend cached zone maps for the appended tail.

    For every materialised ``zone_map``/``zone_map_bitmask`` entry
    anchored on a replaced column (or bitmask vector), re-anchor an
    extended summary on the *new* object: reuse the per-chunk summaries
    of the stable prefix and recompute only the changed tail.  Runs
    before ``invalidate_table(old)``, so the old entries are still
    enumerable; the new entries survive the invalidation because they
    are anchored on the new objects.
    """
    cache = get_cache()
    registry = get_registry()
    for _name, old_col, new_col in event.columns:
        for chunk_rows, old_zm in cache.entries_for_anchor(
            "zone_map", old_col
        ):
            if not isinstance(chunk_rows, int) or not isinstance(
                old_zm, ColumnZoneMap
            ):
                continue
            new_ranges = tuple(chunk_ranges(len(new_col), chunk_rows))
            reused = _stable_prefix_chunks(old_zm.ranges, new_ranges)
            summaries = list(old_zm.summaries[:reused])
            recomputed_rows = 0
            for start, stop in new_ranges[reused:]:
                summaries.append(
                    new_col.range_summary(
                        start, stop, ZONE_MAP_DISTINCT_CUTOFF
                    )
                )
                recomputed_rows += stop - start
            cache.put(
                "zone_map",
                (new_col,),
                ColumnZoneMap(
                    ranges=new_ranges,
                    summaries=tuple(summaries),
                    is_string=old_zm.is_string,
                ),
                extra=chunk_rows,
            )
            registry.incr("ingest.chunks_extended", reused)
            registry.incr(
                "ingest.chunks_recomputed", len(new_ranges) - reused
            )
            registry.incr("ingest.rows_recomputed", recomputed_rows)
    if event.old_bitmask is None or event.new_bitmask is None:
        return
    for chunk_rows, old_ors in cache.entries_for_anchor(
        "zone_map_bitmask", event.old_bitmask
    ):
        if not isinstance(chunk_rows, int) or not isinstance(
            old_ors, np.ndarray
        ):
            continue
        vector = event.new_bitmask
        old_ranges = tuple(chunk_ranges(event.old_rows, chunk_rows))
        new_ranges = tuple(chunk_ranges(len(vector), chunk_rows))
        if old_ors.shape[0] != len(old_ranges):
            continue  # layout mismatch: leave the rebuild to first use
        reused = _stable_prefix_chunks(old_ranges, new_ranges)
        tail = [
            vector.range_or(start, stop) for start, stop in new_ranges[reused:]
        ]
        parts = [old_ors[:reused]] + ([np.stack(tail)] if tail else [])
        ors = np.concatenate(parts, axis=0)
        recomputed_rows = sum(stop - start for start, stop in new_ranges[reused:])
        cache.put("zone_map_bitmask", (vector,), ors, extra=chunk_rows)
        registry.incr("ingest.chunks_extended", reused)
        registry.incr("ingest.chunks_recomputed", len(new_ranges) - reused)
        registry.incr("ingest.rows_recomputed", recomputed_rows)


add_append_listener(_extend_zone_maps)


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
def _is_nan(value) -> bool:
    try:
        return math.isnan(value)
    except TypeError:
        return False


def _is_real_number(value) -> bool:
    """Whether ``value`` can soundly enter min/max bound arithmetic.

    Anything else (strings, None, ...) stays UNKNOWN so the evaluation
    path raises its usual typed error instead of a proof going wrong.
    """
    return isinstance(value, (bool, int, float, np.integer, np.floating))


def _numeric_compare_verdict(
    op: CompareOp,
    mn: float,
    mx: float,
    zeros: int,
    chunk_rows: int,
    value,
) -> int:
    """Verdict of ``column <op> value`` for one numeric chunk.

    Proofs are positive only: a chunk whose min/max are NaN satisfies no
    bound test and stays UNKNOWN; a NaN literal matches nothing
    (``x <op> NaN`` is elementwise False) except ``<>``, which matches
    everything.
    """
    if _is_nan(value):
        return (
            VERDICT_ALL_TRUE if op is CompareOp.NE else VERDICT_ALL_FALSE
        )
    if op is CompareOp.EQ:
        if value < mn or value > mx:
            return VERDICT_ALL_FALSE
        if value == 0 and zeros == 0:
            return VERDICT_ALL_FALSE
        if value == 0 and zeros == chunk_rows:
            return VERDICT_ALL_TRUE
        if mn == mx == value:
            return VERDICT_ALL_TRUE
        return VERDICT_UNKNOWN
    if op is CompareOp.NE:
        inverse = _numeric_compare_verdict(
            CompareOp.EQ, mn, mx, zeros, chunk_rows, value
        )
        return -inverse
    if op is CompareOp.LT:
        if mx < value:
            return VERDICT_ALL_TRUE
        if mn >= value:
            return VERDICT_ALL_FALSE
    elif op is CompareOp.LE:
        if mx <= value:
            return VERDICT_ALL_TRUE
        if mn > value:
            return VERDICT_ALL_FALSE
    elif op is CompareOp.GT:
        if mn > value:
            return VERDICT_ALL_TRUE
        if mx <= value:
            return VERDICT_ALL_FALSE
    elif op is CompareOp.GE:
        if mn >= value:
            return VERDICT_ALL_TRUE
        if mx < value:
            return VERDICT_ALL_FALSE
    return VERDICT_UNKNOWN


def _string_equals_verdicts(
    zone_map: ColumnZoneMap, code: int
) -> np.ndarray:
    out = np.zeros(zone_map.n_chunks, dtype=np.int8)
    if code < 0:  # value absent from the dictionary: matches nowhere
        out[:] = VERDICT_ALL_FALSE
        return out
    for i, (code_set, _nulls) in enumerate(zone_map.summaries):
        if code_set is None:
            continue
        if code not in code_set:
            out[i] = VERDICT_ALL_FALSE
        elif len(code_set) == 1:
            out[i] = VERDICT_ALL_TRUE
    return out


def _numeric_leaf_verdicts(zone_map: ColumnZoneMap, op: CompareOp, value) -> np.ndarray:
    out = np.zeros(zone_map.n_chunks, dtype=np.int8)
    if not _is_real_number(value):
        return out  # evaluation will raise the proper typed error
    for i, ((start, stop), (mn, mx, zeros)) in enumerate(
        zip(zone_map.ranges, zone_map.summaries)
    ):
        if _is_nan(mn) or _is_nan(mx):
            continue  # chunk holds NaN: no bound proof applies
        out[i] = _numeric_compare_verdict(
            op, mn, mx, zeros, stop - start, value
        )
    return out


def _equals_verdicts(table: Table, pred: Equals, options) -> np.ndarray:
    col = table.column(pred.column)
    zone_map = column_zone_map(col, options)
    if zone_map.is_string:
        return _string_equals_verdicts(zone_map, col.encode_value(pred.value))
    return _numeric_leaf_verdicts(zone_map, CompareOp.EQ, pred.value)


def _compare_verdicts(table: Table, pred: Compare, options) -> np.ndarray:
    col = table.column(pred.column)
    zone_map = column_zone_map(col, options)
    if zone_map.is_string:
        # Only =/<> are defined on codes; ordering comparisons raise at
        # evaluation time, so leave their chunks UNKNOWN (scanned).
        if pred.op is CompareOp.EQ:
            return _string_equals_verdicts(
                zone_map, col.encode_value(pred.value)
            )
        if pred.op is CompareOp.NE:
            return -_string_equals_verdicts(
                zone_map, col.encode_value(pred.value)
            )
        return np.zeros(zone_map.n_chunks, dtype=np.int8)
    return _numeric_leaf_verdicts(zone_map, pred.op, pred.value)


def _between_verdicts(table: Table, pred: Between, options) -> np.ndarray:
    col = table.column(pred.column)
    zone_map = column_zone_map(col, options)
    if zone_map.is_string:
        return np.zeros(zone_map.n_chunks, dtype=np.int8)  # raises on scan
    out = np.zeros(zone_map.n_chunks, dtype=np.int8)
    low, high = pred.low, pred.high
    if not (_is_real_number(low) and _is_real_number(high)):
        return out  # evaluation raises on non-numeric bounds
    if _is_nan(low) or _is_nan(high):
        out[:] = VERDICT_ALL_FALSE  # x >= NaN / x <= NaN is always False
        return out
    for i, (mn, mx, _zeros) in enumerate(zone_map.summaries):
        if _is_nan(mn) or _is_nan(mx):
            continue
        if mx < low or mn > high:
            out[i] = VERDICT_ALL_FALSE
        elif mn >= low and mx <= high:
            out[i] = VERDICT_ALL_TRUE
    return out


def _inset_verdicts(table: Table, pred: InSet, options) -> np.ndarray:
    col = table.column(pred.column)
    zone_map = column_zone_map(col, options)
    out = np.zeros(zone_map.n_chunks, dtype=np.int8)
    if zone_map.is_string:
        targets = {
            code
            for code in (col.encode_value(v) for v in pred.values)
            if code >= 0
        }
        if not targets:
            out[:] = VERDICT_ALL_FALSE
            return out
        for i, (code_set, _nulls) in enumerate(zone_map.summaries):
            if code_set is None:
                continue
            if not (code_set & targets):
                out[i] = VERDICT_ALL_FALSE
            elif code_set <= targets:
                out[i] = VERDICT_ALL_TRUE
        return out
    targets = sorted(
        v for v in (col.encode_value(v) for v in pred.values) if not _is_nan(v)
    )
    if not targets:
        out[:] = VERDICT_ALL_FALSE
        return out
    targets_arr = np.asarray(targets, dtype=np.float64)
    for i, (mn, mx, _zeros) in enumerate(zone_map.summaries):
        if _is_nan(mn) or _is_nan(mx):
            continue
        # Any target inside [mn, mx]?  Binary search over the sorted
        # targets keeps the check O(log k) per chunk.
        idx = int(np.searchsorted(targets_arr, mn, side="left"))
        in_range = idx < targets_arr.size and targets_arr[idx] <= mx
        if not in_range:
            out[i] = VERDICT_ALL_FALSE
        elif mn == mx:
            out[i] = VERDICT_ALL_TRUE  # the single value is a target
    return out


def _bitmask_verdicts(
    table: Table, pred: BitmaskDisjoint, options, n_chunks: int
) -> np.ndarray:
    out = np.zeros(n_chunks, dtype=np.int8)
    if table.bitmask is None:
        if pred.mask.is_zero():
            out[:] = VERDICT_ALL_TRUE
        # Non-zero mask on a bitmask-less table raises at evaluation
        # time; UNKNOWN keeps that error path intact.
        return out
    ors = bitmask_chunk_ors(table.bitmask, options)
    words = min(ors.shape[1], len(pred.mask.words))
    overlap = ors[:, :words] & pred.mask.words[np.newaxis, :words]
    # The OR can prove "every row disjoint" (ALL_TRUE) but never "every
    # row overlapping" — a set chunk bit says *some* row has it.
    out[~overlap.any(axis=1)] = VERDICT_ALL_TRUE
    return out


def chunk_verdicts(
    table: Table,
    predicate: Predicate,
    options: ExecutionOptions | None = None,
) -> np.ndarray:
    """Three-valued per-chunk verdicts of ``predicate`` over ``table``.

    Returns an ``int8`` array aligned with
    ``chunk_ranges(table.n_rows, options.chunk_rows)``:
    :data:`VERDICT_ALL_FALSE` where no row can match,
    :data:`VERDICT_ALL_TRUE` where every row must match, and
    :data:`VERDICT_UNKNOWN` where the chunk needs scanning.  Unknown
    predicate types summarise to UNKNOWN everywhere (always correct,
    never fast).
    """
    options = resolve_options(options)
    n_chunks = len(chunk_ranges(table.n_rows, options.chunk_rows))
    return _verdicts(table, predicate, options, n_chunks)


def _verdicts(
    table: Table, pred: Predicate, options, n_chunks: int
) -> np.ndarray:
    if n_chunks == 0:
        return np.zeros(0, dtype=np.int8)
    if isinstance(pred, And):
        out = np.full(n_chunks, VERDICT_ALL_TRUE, dtype=np.int8)
        for operand in pred.operands:
            np.minimum(
                out, _verdicts(table, operand, options, n_chunks), out=out
            )
            if not (out > VERDICT_ALL_FALSE).any():
                break  # every chunk already refuted
        return out
    if isinstance(pred, Or):
        out = np.full(n_chunks, VERDICT_ALL_FALSE, dtype=np.int8)
        for operand in pred.operands:
            np.maximum(
                out, _verdicts(table, operand, options, n_chunks), out=out
            )
            if not (out < VERDICT_ALL_TRUE).any():
                break  # every chunk already proven
        return out
    if isinstance(pred, Not):
        return -_verdicts(table, pred.operand, options, n_chunks)
    if isinstance(pred, Equals):
        return _equals_verdicts(table, pred, options)
    if isinstance(pred, Compare):
        return _compare_verdicts(table, pred, options)
    if isinstance(pred, Between):
        return _between_verdicts(table, pred, options)
    if isinstance(pred, InSet):
        return _inset_verdicts(table, pred, options)
    if isinstance(pred, BitmaskDisjoint):
        return _bitmask_verdicts(table, pred, options, n_chunks)
    return np.zeros(n_chunks, dtype=np.int8)


def predicate_always_false(
    table: Table,
    predicate: Predicate,
    options: ExecutionOptions | None = None,
) -> bool:
    """Whether the summaries prove ``predicate`` matches no row at all.

    This is the piece-pruning test of the §4.2.2 UNION ALL plan: a piece
    whose every chunk is refuted contributes an empty partial result, so
    the combiner can skip executing it entirely without changing the
    combined answer.
    """
    if table.n_rows == 0:
        return False
    verdicts = chunk_verdicts(table, predicate, options)
    return verdicts.size > 0 and bool(
        (verdicts == VERDICT_ALL_FALSE).all()
    )


# ----------------------------------------------------------------------
# Skip accounting
# ----------------------------------------------------------------------
@dataclass
class PieceSkipStats:
    """Per-piece (or per-exact-scan) data-skipping outcome.

    ``rows_touched`` counts the rows whose stored values were actually
    read to build the WHERE mask: rows of scanned (UNKNOWN) chunks, all
    rows when skipping is off or no WHERE applies, zero when the mask
    came from the predicate-mask cache or the whole piece was pruned.
    """

    description: str
    rows_total: int = 0
    n_chunks: int = 0
    chunks_skipped: int = 0
    chunks_accepted: int = 0
    chunks_scanned: int = 0
    rows_touched: int = 0
    pruned: bool = False
    mask_cached: bool = False
    #: WHERE mask assembled from a dominating provenance sketch — only
    #: the sketched chunks were evaluated (see repro.engine.selection).
    sketch_hit: bool = False
    #: Of the sketched chunks scanned, how many were appended-UNKNOWN:
    #: chunks a retained sketch marked unverified after ``append_rows``
    #: (new or boundary-shifted tail chunks), scanned pending their
    #: first full evaluation.  Counted distinctly so sketch-hit scan
    #: ratios stay comparable across append-heavy workloads.
    appended_unknown: int = 0
    #: PS3-style budgeted chunk selection ran on this piece.
    selection_applied: bool = False
    chunks_eligible: int = 0
    chunks_selected: int = 0
    #: Horvitz–Thompson row-weight spread of the selected chunks (both 0
    #: when selection did not apply).
    ht_weight_min: float = 0.0
    ht_weight_max: float = 0.0

    def observe_chunks(
        self,
        n_chunks: int,
        skipped: int,
        accepted: int,
        scanned: int,
        rows_touched: int,
    ) -> None:
        """Record one zone-map mask assembly."""
        self.n_chunks = n_chunks
        self.chunks_skipped = skipped
        self.chunks_accepted = accepted
        self.chunks_scanned = scanned
        self.rows_touched = rows_touched

    def observe_full_scan(self) -> None:
        """Record a mask built without skipping (every row read)."""
        self.rows_touched = self.rows_total


@dataclass
class SkipReport:
    """EXPLAIN-style summary of data skipping for one answered query."""

    enabled: bool
    pieces: list[PieceSkipStats] = field(default_factory=list)

    @property
    def rows_total(self) -> int:
        """Rows stored across all pieces (the rows_scanned cost model)."""
        return sum(p.rows_total for p in self.pieces)

    @property
    def rows_touched(self) -> int:
        """Rows actually read while building WHERE masks."""
        return sum(p.rows_touched for p in self.pieces)

    @property
    def chunks_skipped(self) -> int:
        return sum(p.chunks_skipped for p in self.pieces)

    @property
    def chunks_scanned(self) -> int:
        return sum(p.chunks_scanned for p in self.pieces)

    @property
    def pieces_pruned(self) -> int:
        return sum(1 for p in self.pieces if p.pruned)

    @property
    def sketch_hits(self) -> int:
        """Pieces whose WHERE mask came from a provenance sketch."""
        return sum(1 for p in self.pieces if p.sketch_hit)

    @property
    def appended_unknown(self) -> int:
        """Appended-UNKNOWN chunks scanned under sketch hits (all pieces)."""
        return sum(p.appended_unknown for p in self.pieces)

    @property
    def pieces_selected(self) -> int:
        """Pieces that ran under budgeted chunk selection."""
        return sum(1 for p in self.pieces if p.selection_applied)

    def to_text(self) -> str:
        """Human-readable per-piece rendering (the CLI ``--explain`` body)."""
        state = "on" if self.enabled else "off"
        lines = [
            f"data skipping: {state} — touched {self.rows_touched} of "
            f"{self.rows_total} rows"
        ]
        for piece in self.pieces:
            if piece.pruned:
                lines.append(
                    f"  - {piece.description}: pruned "
                    f"({piece.rows_total} rows never submitted)"
                )
                continue
            if piece.mask_cached:
                lines.append(
                    f"  - {piece.description}: WHERE mask cached "
                    f"(0 rows touched)"
                )
                continue
            if piece.selection_applied:
                lines.append(
                    f"  - {piece.description}: chunk selection drew "
                    f"{piece.chunks_selected} of {piece.chunks_eligible} "
                    f"eligible chunks (HT weights "
                    f"{piece.ht_weight_min:.3g}–{piece.ht_weight_max:.3g}), "
                    f"{piece.rows_touched} rows touched"
                )
                continue
            if piece.sketch_hit:
                appended = (
                    f" ({piece.appended_unknown} appended-unknown)"
                    if piece.appended_unknown
                    else ""
                )
                lines.append(
                    f"  - {piece.description}: provenance sketch hit — "
                    f"{piece.chunks_scanned} of {piece.n_chunks} chunks "
                    f"scanned{appended}, {piece.rows_touched} rows touched"
                )
                continue
            if piece.n_chunks == 0:
                lines.append(
                    f"  - {piece.description}: full scan, "
                    f"{piece.rows_touched} rows touched"
                )
                continue
            lines.append(
                f"  - {piece.description}: {piece.chunks_scanned} of "
                f"{piece.n_chunks} chunks scanned "
                f"({piece.chunks_skipped} skipped, "
                f"{piece.chunks_accepted} accepted whole), "
                f"{piece.rows_touched} rows touched"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Mask assembly
# ----------------------------------------------------------------------
def evaluate_predicate(
    table: Table,
    predicate: Predicate,
    options: ExecutionOptions | None = None,
    stats: PieceSkipStats | None = None,
) -> np.ndarray:
    """Evaluate a WHERE predicate with zone-map data skipping.

    Value-identical to ``predicate.evaluate(table)``: refuted chunks are
    hard ``False``, accepted chunks hard ``True``, and undecided chunks
    are evaluated with :meth:`Predicate.evaluate_range` (strict slice
    equality).  ``stats`` (when given) records the chunk outcome.
    """
    options = resolve_options(options)
    ranges = chunk_ranges(table.n_rows, options.chunk_rows)
    if stats is not None:
        stats.rows_total = table.n_rows
    if not ranges:
        mask = predicate.evaluate(table)
        if stats is not None:
            stats.observe_full_scan()
        return mask
    verdicts = _verdicts(table, predicate, options, len(ranges))
    mask = np.zeros(table.n_rows, dtype=bool)
    skipped = accepted = scanned = touched = 0
    for (start, stop), verdict in zip(ranges, verdicts):
        if verdict == VERDICT_ALL_FALSE:
            skipped += 1
        elif verdict == VERDICT_ALL_TRUE:
            mask[start:stop] = True
            accepted += 1
        else:
            mask[start:stop] = predicate.evaluate_range(table, start, stop)
            scanned += 1
            touched += stop - start
    if stats is not None:
        stats.observe_chunks(len(ranges), skipped, accepted, scanned, touched)
    # Process-wide aggregation (write-only — RL009): chunk verdicts and
    # rows read across every mask assembly, for ``repro stats``.
    registry = get_registry()
    registry.incr("zonemap.chunks_skipped", skipped)
    registry.incr("zonemap.chunks_accepted", accepted)
    registry.incr("zonemap.chunks_scanned", scanned)
    registry.incr("zonemap.rows_touched", touched)
    return mask


__all__ = [
    "VERDICT_ALL_FALSE",
    "VERDICT_ALL_TRUE",
    "VERDICT_UNKNOWN",
    "ZONE_MAP_DISTINCT_CUTOFF",
    "ColumnZoneMap",
    "PieceSkipStats",
    "SkipReport",
    "bitmask_chunk_ors",
    "chunk_verdicts",
    "column_zone_map",
    "evaluate_predicate",
    "predicate_always_false",
]
