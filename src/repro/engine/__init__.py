"""Relational engine substrate: columnar tables, predicates, joins, group-by.

The engine plays the role of the commercial DBMS the paper's middleware ran
against: it stores base tables and sample tables as ordinary relations and
executes the aggregation-query subset (COUNT/SUM/AVG/MIN/MAX with GROUP BY,
selection predicates, and star-schema foreign-key joins).
"""

from repro.engine.bitmask import Bitmask, BitmaskVector
from repro.engine.column import Column, ColumnKind
from repro.engine.database import Database
from repro.engine.executor import GroupedResult, aggregate_table, execute
from repro.engine.expressions import (
    AggFunc,
    AggregateSpec,
    And,
    Between,
    BitmaskDisjoint,
    Compare,
    CompareOp,
    Equals,
    InSet,
    Not,
    Or,
    Predicate,
    Query,
    conjoin,
)
from repro.engine.parallel import (
    ExecutionOptions,
    get_default_options,
    set_default_options,
    shutdown_pool,
)
from repro.engine.reservoir import (
    ReservoirSampler,
    bernoulli_sample_indices,
    uniform_sample_indices,
    weighted_sample_indices,
)
from repro.engine.schema import ForeignKey, StarSchema
from repro.engine.stats import (
    DEFAULT_DISTINCT_THRESHOLD,
    ColumnStats,
    collect_column_stats,
    column_stats,
    per_group_selectivity,
)
from repro.engine.table import Table

__all__ = [
    "AggFunc",
    "AggregateSpec",
    "And",
    "Between",
    "Bitmask",
    "BitmaskDisjoint",
    "BitmaskVector",
    "Column",
    "ColumnKind",
    "ColumnStats",
    "Compare",
    "CompareOp",
    "Database",
    "DEFAULT_DISTINCT_THRESHOLD",
    "Equals",
    "ExecutionOptions",
    "ForeignKey",
    "GroupedResult",
    "InSet",
    "Not",
    "Or",
    "Predicate",
    "Query",
    "ReservoirSampler",
    "StarSchema",
    "Table",
    "aggregate_table",
    "bernoulli_sample_indices",
    "collect_column_stats",
    "column_stats",
    "conjoin",
    "execute",
    "get_default_options",
    "per_group_selectivity",
    "set_default_options",
    "shutdown_pool",
    "uniform_sample_indices",
    "weighted_sample_indices",
]
