"""Plain-text reporting: aligned tables, ASCII charts, CSV export.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output readable in a terminal and easy to
diff across runs.
"""

from __future__ import annotations

import csv
import math
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned text table."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def ascii_chart(
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render one or more y-series over shared x positions as ASCII art.

    Each series gets a marker character; the x axis is positional (the x
    labels are listed underneath), which suits the paper's categorical
    sweeps (number of grouping columns, skew values, rates).
    """
    markers = "*o+x#@%&"
    values = [
        v
        for ys in series.values()
        for v in ys
        if v == v and (not log_y or v > 0)
    ]
    if not values:
        return f"{title}\n(no data)"
    lo, hi = min(values), max(values)
    if log_y:
        lo, hi = math.log10(lo), math.log10(hi)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(xs)
    for s_index, (_, ys) in enumerate(series.items()):
        marker = markers[s_index % len(markers)]
        for i, y in enumerate(ys):
            if y != y or (log_y and y <= 0):
                continue
            value = math.log10(y) if log_y else y
            col = int(round(i * (width - 1) / max(1, n - 1)))
            row = int(round((value - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][col] = marker
    axis = "log10" if log_y else "linear"
    top = 10**hi if log_y else hi
    bottom = 10**lo if log_y else lo
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {_cell(bottom)} .. {_cell(top)} ({axis})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("x: " + " ".join(_cell(x) for x in xs))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write rows to a CSV file (for downstream plotting)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def selectivity_bin_edges() -> list[float]:
    """Per-group-selectivity bin edges used by Figure 5 (log scale)."""
    return [0.0, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128]


def selectivity_bin_label(selectivity: float) -> str:
    """Label a per-group selectivity with its Figure 5 bin."""
    edges = selectivity_bin_edges()
    for low, high in zip(edges, edges[1:]):
        if low <= selectivity < high:
            return f"{low:.2%}-{high:.2%}"
    return f">={edges[-1]:.2%}"
