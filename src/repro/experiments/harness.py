"""Matched-sample-space experiment harness (Section 5.2.3).

The paper's accuracy experiments grant every technique the same amount of
sample table space *per query at runtime*: a query with ``i`` grouping
columns answered by small group sampling (base rate ``r``, allocation
ratio ``γ``) touches up to ``(1 + γ·i)·r·N`` rows, so its competitors use
samples of rate ``(1 + γ·i)·r``.  The harness

* computes the matched rates a workload needs,
* pre-processes each contender with the right rate family,
* executes every workload query exactly and approximately,
* scores each answer with the Section 4.3 metrics, and
* aggregates means by any binning (number of grouping columns, per-group
  selectivity, ...).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.congress import BasicCongress, CongressConfig
from repro.baselines.hybrid import HybridConfig, SmallGroupWithOutlier
from repro.baselines.outlier import OutlierConfig, OutlierIndexing
from repro.baselines.uniform import UniformConfig, UniformSampling
from repro.core.answer import ApproxAnswer
from repro.core.interfaces import AQPTechnique, PreprocessReport
from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.engine.cache import get_cache
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.errors import ExperimentError
from repro.metrics.error import QueryAccuracy, score
from repro.workload.spec import Workload, WorkloadQuery

#: A contender answers one workload query; the matched rate is supplied.
AnswerFn = Callable[[WorkloadQuery, float], ApproxAnswer]


@dataclass
class Contender:
    """One technique entered into an experiment."""

    name: str
    technique: AQPTechnique
    answer: AnswerFn
    report: PreprocessReport | None = None


@dataclass
class QueryRecord:
    """Everything measured for one workload query."""

    workload_query: WorkloadQuery
    matched_rate: float
    per_group_selectivity: float
    n_exact_groups: int
    accuracies: dict[str, QueryAccuracy] = field(default_factory=dict)
    answer_times: dict[str, float] = field(default_factory=dict)
    exact_time: float = 0.0
    rows_scanned: dict[str, int] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """All per-query records of one experiment, with aggregation helpers."""

    records: list[QueryRecord]
    technique_names: tuple[str, ...]
    reports: dict[str, PreprocessReport] = field(default_factory=dict)

    def mean_metric(
        self,
        technique: str,
        metric: str,
        where: Callable[[QueryRecord], bool] | None = None,
    ) -> float:
        """Mean of one metric (``rel_err``/``pct_groups``/``sq_rel_err``)."""
        values = [
            getattr(r.accuracies[technique], metric)
            for r in self.records
            if (where is None or where(r)) and technique in r.accuracies
        ]
        if not values:
            return float("nan")
        return float(np.mean(values))

    def series_by(
        self,
        key: Callable[[QueryRecord], object],
        technique: str,
        metric: str,
    ) -> dict[object, float]:
        """Mean metric per bin, binned by ``key``."""
        bins: dict[object, list[float]] = {}
        for record in self.records:
            if technique not in record.accuracies:
                continue
            bins.setdefault(key(record), []).append(
                getattr(record.accuracies[technique], metric)
            )
        return {k: float(np.mean(v)) for k, v in sorted(bins.items(), key=lambda i: str(i[0]))}

    def series_by_group_columns(
        self, technique: str, metric: str
    ) -> dict[int, float]:
        """Mean metric vs number of grouping columns (Figures 4 and 8)."""
        return self.series_by(
            lambda r: r.workload_query.n_group_columns, technique, metric
        )

    def mean_speedup(self, technique: str) -> float:
        """Mean of per-query (exact time / approximate time)."""
        ratios = [
            r.exact_time / r.answer_times[technique]
            for r in self.records
            if r.answer_times.get(technique, 0.0) > 0 and r.exact_time > 0
        ]
        if not ratios:
            return float("nan")
        return float(np.mean(ratios))


def matched_rate(
    workload_query: WorkloadQuery, base_rate: float, allocation_ratio: float
) -> float:
    """The paper's per-query space match: ``r · (1 + γ·i)``."""
    return min(
        1.0,
        base_rate * (1.0 + allocation_ratio * workload_query.n_group_columns),
    )


def matched_rates(
    workload: Workload, base_rate: float, allocation_ratio: float
) -> tuple[float, ...]:
    """All matched rates a workload requires (one per grouping count)."""
    return tuple(
        sorted(
            {
                matched_rate(q, base_rate, allocation_ratio)
                for q in workload.queries
            }
        )
    )


def per_group_selectivity_of(answer_counts: dict, total_rows: int) -> float:
    """Average result-group size as a fraction of the database (§5.3.1).

    For COUNT queries the group sizes are the aggregate values themselves;
    for SUM queries the harness passes the separately computed counts.
    """
    if not answer_counts or total_rows <= 0:
        return 0.0
    return float(np.mean(list(answer_counts.values()))) / total_rows


def run_experiment(
    db: Database,
    workload: Workload,
    contenders: Iterable[Contender],
    base_rate: float,
    allocation_ratio: float,
    measure_time: bool = False,
) -> ExperimentResult:
    """Execute a workload exactly and with every contender; score answers."""
    contenders = list(contenders)
    if not contenders:
        raise ExperimentError("need at least one contender")
    names = tuple(c.name for c in contenders)
    if len(set(names)) != len(names):
        raise ExperimentError("contender names must be unique")
    total_rows = db.fact_table.n_rows
    records: list[QueryRecord] = []
    for wq in workload.queries:
        rate = matched_rate(wq, base_rate, allocation_ratio)
        if measure_time:
            # Timed figures reproduce the paper's fresh-query cost model;
            # a warm execution cache would make the wall clocks depend on
            # query order (the warm path has its own benchmark).
            get_cache().clear()
        start = time.perf_counter()
        exact = execute(db, wq.query)
        exact_time = time.perf_counter() - start
        exact_values = exact.as_dict()
        group_counts = exact.raw_counts
        record = QueryRecord(
            workload_query=wq,
            matched_rate=rate,
            per_group_selectivity=per_group_selectivity_of(
                group_counts, total_rows
            ),
            n_exact_groups=exact.n_groups,
            exact_time=exact_time,
        )
        for contender in contenders:
            if measure_time:
                get_cache().clear()
            start = time.perf_counter()
            answer = contender.answer(wq, rate)
            elapsed = time.perf_counter() - start
            record.accuracies[contender.name] = score(
                exact_values, answer.as_dict()
            )
            record.rows_scanned[contender.name] = answer.rows_scanned
            if measure_time:
                record.answer_times[contender.name] = elapsed
        records.append(record)
    return ExperimentResult(
        records=records,
        technique_names=names,
        reports={
            c.name: c.report for c in contenders if c.report is not None
        },
    )


# ----------------------------------------------------------------------
# Standard contender builders
# ----------------------------------------------------------------------
def build_small_group_contender(
    db: Database,
    base_rate: float,
    allocation_ratio: float = 0.5,
    config: SmallGroupConfig | None = None,
    name: str = "small_group",
) -> Contender:
    """Pre-process small group sampling and wrap it as a contender."""
    if config is None:
        config = SmallGroupConfig(
            base_rate=base_rate,
            allocation_ratio=allocation_ratio,
            use_reservoir=False,
        )
    technique = SmallGroupSampling(config)
    report = technique.preprocess(db)
    return Contender(
        name=name,
        technique=technique,
        answer=lambda wq, rate: technique.answer(wq.query),
        report=report,
    )


def build_uniform_contender(
    db: Database,
    rates: tuple[float, ...],
    seed: int = 0,
    name: str = "uniform",
) -> Contender:
    """Pre-process the uniform family and wrap it as a contender.

    ``rates`` should be the workload's matched rates; each query is
    answered from the sample whose rate matches its space grant.
    """
    technique = UniformSampling(UniformConfig(rates=rates, seed=seed))
    report = technique.preprocess(db)
    return Contender(
        name=name,
        technique=technique,
        answer=lambda wq, rate: technique.answer_at_rate(wq.query, rate),
        report=report,
    )


def build_congress_contender(
    db: Database,
    rates: tuple[float, ...],
    columns: tuple[str, ...] | None = None,
    exclude_columns: tuple[str, ...] = (),
    seed: int = 0,
    name: str = "basic_congress",
) -> Contender:
    """Pre-process basic congress and wrap it as a contender."""
    technique = BasicCongress(
        CongressConfig(
            rates=rates,
            columns=columns,
            exclude_columns=exclude_columns,
            seed=seed,
        )
    )
    report = technique.preprocess(db)
    return Contender(
        name=name,
        technique=technique,
        answer=lambda wq, rate: technique.answer_at_rate(wq.query, rate),
        report=report,
    )


def build_outlier_contender(
    db: Database,
    rates: tuple[float, ...],
    measures: tuple[str, ...],
    outlier_share: float = 1.0 / 3.0,
    seed: int = 0,
    name: str = "outlier_index",
) -> Contender:
    """Pre-process outlier indexing and wrap it as a contender."""
    technique = OutlierIndexing(
        OutlierConfig(
            rates=rates,
            measures=measures,
            outlier_share=outlier_share,
            seed=seed,
        )
    )
    report = technique.preprocess(db)
    return Contender(
        name=name,
        technique=technique,
        answer=lambda wq, rate: technique.answer_at_rate(wq.query, rate),
        report=report,
    )


def build_hybrid_contender(
    db: Database,
    base_rate: float,
    measure: str,
    allocation_ratio: float = 0.5,
    outlier_share: float = 1.0 / 3.0,
    seed: int = 0,
    name: str = "small_group+outlier",
) -> Contender:
    """Pre-process the outlier-enhanced small group variant."""
    technique = SmallGroupWithOutlier(
        HybridConfig(
            base_rate=base_rate,
            allocation_ratio=allocation_ratio,
            measure=measure,
            outlier_share=outlier_share,
            use_reservoir=False,
            seed=seed,
        )
    )
    report = technique.preprocess(db)
    return Contender(
        name=name,
        technique=technique,
        answer=lambda wq, rate: technique.answer(wq.query),
        report=report,
    )
