"""Canonical experiment configurations — one per paper figure/table.

Each ``run_*`` function reproduces one result from Section 4.4 or 5 at a
laptop-friendly scale and returns the data the paper plots.  The
``benchmarks/`` tree calls these and prints/asserts the paper's shapes;
``examples/`` reuse them interactively.  Row counts and query counts are
parameters so tests can run tiny versions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.model import (
    AnalysisScenario,
    figure_3a_series,
    figure_3b_series,
)
from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.baselines.congress import BasicCongress, CongressConfig
from repro.baselines.outlier import OutlierConfig, OutlierIndexing
from repro.baselines.uniform import UniformConfig, UniformSampling
from repro.datagen.sales import SALES_MEASURE_COLUMNS, generate_sales
from repro.datagen.tpch import TPCH_MEASURE_COLUMNS, generate_tpch
from repro.engine.database import Database
from repro.experiments.harness import (
    Contender,
    ExperimentResult,
    build_congress_contender,
    build_hybrid_contender,
    build_outlier_contender,
    build_small_group_contender,
    build_uniform_contender,
    matched_rates,
    run_experiment,
)
from repro.experiments.reporting import selectivity_bin_label
from repro.workload.generator import generate_workload
from repro.workload.spec import Workload, WorkloadConfig

# The paper runs at 1% of a 6M-row database (60k sampled rows).  Our
# laptop-scale databases are ~100x smaller, so the default base rate is
# scaled up to keep the absolute number of sampled rows per group — the
# quantity accuracy actually depends on — in the paper's regime.
BASE_RATE = 0.04
ALLOCATION_RATIO = 0.5


@dataclass
class FigureRun:
    """Output of one figure reproduction.

    ``series`` maps a series name (e.g. ``"small_group/rel_err"``) to a
    dict of x → y values; ``extras`` carries figure-specific scalars.
    """

    figure: str
    series: dict[str, dict[object, float]] = field(default_factory=dict)
    extras: dict[str, object] = field(default_factory=dict)
    result: ExperimentResult | None = None


# ----------------------------------------------------------------------
# Figure 3 — analytical model
# ----------------------------------------------------------------------
def run_figure3a() -> FigureRun:
    """SqRelErr vs sampling allocation ratio (analytical)."""
    ratios, errors, uniform = figure_3a_series()
    return FigureRun(
        figure="3a",
        series={
            "small_group/sq_rel_err": {
                float(g): float(e) for g, e in zip(ratios, errors)
            },
            "uniform/sq_rel_err": {float(g): uniform for g in ratios},
        },
        extras={"uniform": uniform},
    )


def run_figure3b() -> FigureRun:
    """SqRelErr vs skew (analytical, log-scale in the paper)."""
    skews, small, uniform = figure_3b_series()
    return FigureRun(
        figure="3b",
        series={
            "small_group/sq_rel_err": {
                float(z): float(e) for z, e in zip(skews, small)
            },
            "uniform/sq_rel_err": {
                float(z): float(e) for z, e in zip(skews, uniform)
            },
        },
    )


# ----------------------------------------------------------------------
# Shared helpers for the empirical figures
# ----------------------------------------------------------------------
def _count_workload(
    db: Database,
    queries_per_combo: int,
    seed: int,
    group_column_counts: tuple[int, ...] = (1, 2, 3, 4),
) -> Workload:
    return generate_workload(
        db,
        WorkloadConfig(
            group_column_counts=group_column_counts,
            queries_per_combo=queries_per_combo,
            seed=seed,
        ),
    )


def _sg_vs_uniform(
    db: Database,
    workload: Workload,
    base_rate: float = BASE_RATE,
    seed: int = 0,
    measure_time: bool = False,
) -> ExperimentResult:
    rates = matched_rates(workload, base_rate, ALLOCATION_RATIO)
    contenders = [
        build_small_group_contender(db, base_rate, ALLOCATION_RATIO),
        build_uniform_contender(db, rates, seed=seed),
    ]
    return run_experiment(
        db,
        workload,
        contenders,
        base_rate,
        ALLOCATION_RATIO,
        measure_time=measure_time,
    )


def _per_figure_series(
    result: ExperimentResult, by: str = "group_columns"
) -> dict[str, dict[object, float]]:
    series: dict[str, dict[object, float]] = {}
    for technique in result.technique_names:
        for metric in ("rel_err", "pct_groups"):
            if by == "group_columns":
                data = result.series_by_group_columns(technique, metric)
            elif by == "selectivity":
                data = result.series_by(
                    lambda r: selectivity_bin_label(r.per_group_selectivity),
                    technique,
                    metric,
                )
            else:
                raise ValueError(f"unknown binning {by!r}")
            series[f"{technique}/{metric}"] = data
    return series


# ----------------------------------------------------------------------
# Figure 4 — SmGroup vs Uniform on TPCH1G2.0z, by #grouping columns
# ----------------------------------------------------------------------
def run_figure4(
    rows_per_scale: int = 60000,
    queries_per_combo: int = 8,
    seed: int = 1,
) -> FigureRun:
    """RelErr and PctGroups vs number of grouping columns (TPCH1G2.0z)."""
    db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=rows_per_scale)
    workload = _count_workload(db, queries_per_combo, seed)
    result = _sg_vs_uniform(db, workload)
    return FigureRun(
        figure="4",
        series=_per_figure_series(result, by="group_columns"),
        result=result,
    )


# ----------------------------------------------------------------------
# Figure 5 — error vs per-group selectivity on SALES (and TPCH, §5.3.1)
# ----------------------------------------------------------------------
def run_figure5(
    sales_scale: float = 1.0,
    queries_per_combo: int = 8,
    seed: int = 2,
    database: str = "sales",
    rows_per_scale: int = 60000,
) -> FigureRun:
    """RelErr and PctGroups vs per-group selectivity bins."""
    if database == "sales":
        db = generate_sales(scale=sales_scale)
    elif database == "tpch":
        db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=rows_per_scale)
    else:
        raise ValueError(f"unknown database {database!r}")
    workload = _count_workload(db, queries_per_combo, seed)
    result = _sg_vs_uniform(db, workload)
    return FigureRun(
        figure="5" if database == "sales" else "5-tpch",
        series=_per_figure_series(result, by="selectivity"),
        result=result,
        extras={"database": database},
    )


# ----------------------------------------------------------------------
# Figure 6 — RelErr vs skew on the TPCH1Gyz family
# ----------------------------------------------------------------------
def run_figure6(
    skews: tuple[float, ...] = (1.0, 1.5, 2.0, 2.5),
    rows_per_scale: int = 60000,
    queries_per_combo: int = 6,
    seed: int = 3,
) -> FigureRun:
    """Mean RelErr (and PctGroups) per Zipf parameter, both techniques."""
    series: dict[str, dict[object, float]] = {
        "small_group/rel_err": {},
        "uniform/rel_err": {},
        "small_group/pct_groups": {},
        "uniform/pct_groups": {},
    }
    for z in skews:
        db = generate_tpch(scale=1.0, z=z, rows_per_scale=rows_per_scale)
        workload = _count_workload(db, queries_per_combo, seed)
        result = _sg_vs_uniform(db, workload)
        for technique in ("small_group", "uniform"):
            for metric in ("rel_err", "pct_groups"):
                series[f"{technique}/{metric}"][z] = result.mean_metric(
                    technique, metric
                )
    return FigureRun(figure="6", series=series)


# ----------------------------------------------------------------------
# Figure 7 — error vs base sampling rate on TPCH1G2.0z
# ----------------------------------------------------------------------
def run_figure7(
    rates: tuple[float, ...] = (0.01, 0.02, 0.04, 0.08, 0.16),
    rows_per_scale: int = 60000,
    queries_per_combo: int = 6,
    seed: int = 4,
) -> FigureRun:
    """Mean RelErr and PctGroups per base sampling rate, both techniques."""
    db = generate_tpch(scale=1.0, z=2.0, rows_per_scale=rows_per_scale)
    workload = _count_workload(db, queries_per_combo, seed)
    series: dict[str, dict[object, float]] = {
        "small_group/rel_err": {},
        "uniform/rel_err": {},
        "small_group/pct_groups": {},
        "uniform/pct_groups": {},
    }
    for rate in rates:
        result = _sg_vs_uniform(db, workload, base_rate=rate)
        for technique in ("small_group", "uniform"):
            for metric in ("rel_err", "pct_groups"):
                series[f"{technique}/{metric}"][rate] = result.mean_metric(
                    technique, metric
                )
    return FigureRun(figure="7", series=series)


# ----------------------------------------------------------------------
# Figure 8 — SmGroup vs Basic Congress vs Uniform on SALES
# ----------------------------------------------------------------------
def run_figure8(
    sales_scale: float = 1.5,
    queries_per_combo: int = 6,
    seed: int = 5,
) -> FigureRun:
    """RelErr and PctGroups vs #grouping columns, three techniques."""
    db = generate_sales(scale=sales_scale)
    workload = _count_workload(db, queries_per_combo, seed)
    rates = matched_rates(workload, BASE_RATE, ALLOCATION_RATIO)
    contenders = [
        build_small_group_contender(db, BASE_RATE, ALLOCATION_RATIO),
        build_congress_contender(db, rates, seed=seed),
        build_uniform_contender(db, rates, seed=seed),
    ]
    result = run_experiment(
        db, workload, contenders, BASE_RATE, ALLOCATION_RATIO
    )
    run = FigureRun(
        figure="8",
        series=_per_figure_series(result, by="group_columns"),
        result=result,
    )
    congress = next(
        c for c in contenders if c.name == "basic_congress"
    )
    if congress.report is not None:
        run.extras["n_strata"] = congress.report.details.get("n_strata")
    return run


# ----------------------------------------------------------------------
# §5.3.3 — SUM queries: SG+outlier vs outlier indexing vs uniform
# ----------------------------------------------------------------------
def run_table_outlier(
    sales_scale: float = 1.0,
    queries_per_combo: int = 6,
    seed: int = 6,
) -> FigureRun:
    """Overall RelErr / missed-group means for the SUM comparison."""
    db = generate_sales(scale=sales_scale)
    workload = generate_workload(
        db,
        WorkloadConfig(
            group_column_counts=(1, 2, 3),
            aggregate="SUM",
            measure_columns=SALES_MEASURE_COLUMNS,
            queries_per_combo=queries_per_combo,
            seed=seed,
        ),
    )
    rates = matched_rates(workload, BASE_RATE, ALLOCATION_RATIO)
    contenders = [
        build_hybrid_contender(
            db, BASE_RATE, measure="s_revenue", seed=seed
        ),
        build_outlier_contender(
            db, rates, measures=SALES_MEASURE_COLUMNS, seed=seed
        ),
        build_uniform_contender(db, rates, seed=seed),
    ]
    result = run_experiment(
        db, workload, contenders, BASE_RATE, ALLOCATION_RATIO
    )
    series: dict[str, dict[object, float]] = {}
    for technique in result.technique_names:
        series[f"{technique}/overall"] = {
            "rel_err": result.mean_metric(technique, "rel_err"),
            "pct_groups": result.mean_metric(technique, "pct_groups"),
        }
    return FigureRun(figure="5.3.3", series=series, result=result)


# ----------------------------------------------------------------------
# Figure 9 + §5.4.1 — query processing speedups
# ----------------------------------------------------------------------
def run_figure9(
    rows_per_scale: int = 60000,
    scale: float = 5.0,
    z: float = 1.5,
    queries_per_combo: int = 4,
    seed: int = 7,
) -> FigureRun:
    """Speedup vs exact execution, overall and by #grouping columns."""
    db = generate_tpch(scale=scale, z=z, rows_per_scale=rows_per_scale)
    workload = _count_workload(db, queries_per_combo, seed)
    rates = matched_rates(workload, BASE_RATE, ALLOCATION_RATIO)
    contenders = [
        build_small_group_contender(db, BASE_RATE, ALLOCATION_RATIO),
        build_uniform_contender(db, rates, seed=seed),
    ]
    result = run_experiment(
        db,
        workload,
        contenders,
        BASE_RATE,
        ALLOCATION_RATIO,
        measure_time=True,
    )
    speedup_by_g: dict[object, float] = {}
    for g in sorted({q.n_group_columns for q in workload.queries}):
        records = [
            r
            for r in result.records
            if r.workload_query.n_group_columns == g
            and r.answer_times.get("small_group", 0) > 0
        ]
        if records:
            speedup_by_g[g] = float(
                np.mean(
                    [r.exact_time / r.answer_times["small_group"] for r in records]
                )
            )
    return FigureRun(
        figure="9",
        series={"small_group/speedup": speedup_by_g},
        extras={
            "overall_speedup/small_group": result.mean_speedup("small_group"),
            "overall_speedup/uniform": result.mean_speedup("uniform"),
        },
        result=result,
    )


# ----------------------------------------------------------------------
# §5.4.2 — pre-processing time and space
# ----------------------------------------------------------------------
def run_table_preprocessing(
    rows_per_scale: int = 60000,
    sales_scale: float = 1.0,
    base_rates: tuple[float, ...] = (0.04, 0.01),
) -> FigureRun:
    """Pre-processing wall time and space overhead for every technique."""
    rows: dict[str, dict[object, float]] = {}
    for db_name, db in (
        ("TPCH1G2.0z", generate_tpch(scale=1.0, z=2.0, rows_per_scale=rows_per_scale)),
        ("SALES", generate_sales(scale=sales_scale)),
    ):
        measures = (
            TPCH_MEASURE_COLUMNS if db_name.startswith("TPCH") else SALES_MEASURE_COLUMNS
        )
        for base_rate in base_rates:
            techniques = {
                "small_group": SmallGroupSampling(
                    SmallGroupConfig(
                        base_rate=base_rate,
                        allocation_ratio=ALLOCATION_RATIO,
                        use_reservoir=False,
                    )
                ),
                "uniform": UniformSampling(UniformConfig(rates=(base_rate,))),
                "basic_congress": BasicCongress(
                    CongressConfig(rates=(base_rate,))
                ),
                "outlier_index": OutlierIndexing(
                    OutlierConfig(rates=(base_rate,), measures=measures)
                ),
            }
            for name, technique in techniques.items():
                start = time.perf_counter()
                report = technique.preprocess(db)
                elapsed = time.perf_counter() - start
                key = f"{db_name}@{base_rate:g}"
                rows.setdefault(f"{name}/time_s", {})[key] = elapsed
                rows.setdefault(f"{name}/space_overhead", {})[key] = (
                    report.space_overhead
                )
                rows.setdefault(f"{name}/row_overhead", {})[key] = (
                    report.row_overhead
                )
    return FigureRun(figure="5.4.2", series=rows)
