"""Approximate answer containers.

An :class:`ApproxAnswer` is what an AQP technique returns for one query:
per-group estimates with variances, exactness flags (small-group-derived
groups are exact — Section 4.2.2), confidence intervals, and provenance
(which sample tables were used, the rewritten SQL, rows scanned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.confidence import normal_interval
from repro.errors import RuntimePhaseError

GroupKey = tuple[Any, ...]


@dataclass
class GroupEstimate:
    """Estimate of one aggregate value for one group.

    Attributes
    ----------
    value:
        The (scaled) estimate.
    variance:
        Estimated variance of the estimator; 0 for exact values.
    exact:
        Whether every contribution to this group came from a zero-variance
        (100%-sampled) stratum, in which case the value is exact.
    """

    value: float
    variance: float = 0.0
    exact: bool = False

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Normal-approximation confidence interval (degenerate if exact)."""
        if self.exact or self.variance <= 0.0:
            return (self.value, self.value)
        return normal_interval(self.value, self.variance, level)


@dataclass
class ApproxAnswer:
    """Approximate answer to one aggregation query.

    Attributes
    ----------
    group_columns:
        Grouping columns of the query.
    aggregate_names:
        Output names of the query's aggregates.
    groups:
        Group key → one :class:`GroupEstimate` per aggregate.
    technique:
        Name of the AQP technique that produced the answer.
    rows_scanned:
        Total sample rows scanned to answer the query (the runtime cost).
    pieces:
        Human-readable description of each sample table queried.
    rewritten_sql:
        The rewritten UNION ALL statement, when the technique rewrites SQL.
    top_k_confident:
        For LIMIT queries ordered by an estimated aggregate: whether the
        confidence interval of the last kept group is disjoint from that
        of the best dropped group — i.e. whether the approximate top-k
        cut is statistically separated.  ``None`` when not applicable.
    skip_report:
        Per-piece data-skipping outcome
        (:class:`~repro.engine.zonemap.SkipReport`): chunks skipped vs
        scanned and rows actually touched while building WHERE masks.
        ``None`` for techniques that never went through the combiner.
        Deliberately excluded from answer equality concerns —
        ``rows_scanned`` is the cost-model figure; this is diagnostics.
    trace:
        Root :class:`~repro.obs.trace.Span` of the execution, when the
        caller requested profiling (``session.sql(..., profile=True)``);
        ``None`` otherwise.  Pure diagnostics like ``skip_report`` —
        the estimates are byte-identical with tracing on or off
        (enforced by lint rule RL009 and the determinism sweep test).
    """

    group_columns: tuple[str, ...]
    aggregate_names: tuple[str, ...]
    groups: dict[GroupKey, tuple[GroupEstimate, ...]]
    technique: str = ""
    rows_scanned: int = 0
    pieces: tuple[str, ...] = field(default_factory=tuple)
    rewritten_sql: str | None = None
    top_k_confident: bool | None = None
    skip_report: Any | None = None
    trace: Any | None = None

    @property
    def n_groups(self) -> int:
        """Number of groups present in the answer."""
        return len(self.groups)

    def _agg_index(self, aggregate: str | None) -> int:
        if aggregate is None:
            return 0
        try:
            return self.aggregate_names.index(aggregate)
        except ValueError:
            raise RuntimePhaseError(
                f"no aggregate {aggregate!r}; have {self.aggregate_names}"
            ) from None

    def estimate(self, group: GroupKey, aggregate: str | None = None) -> GroupEstimate:
        """The estimate object for one group and aggregate."""
        idx = self._agg_index(aggregate)
        try:
            return self.groups[group][idx]
        except KeyError:
            raise RuntimePhaseError(f"group {group!r} not in answer") from None

    def value(self, group: GroupKey, aggregate: str | None = None) -> float:
        """The estimated value for one group."""
        return self.estimate(group, aggregate).value

    def as_dict(self, aggregate: str | None = None) -> dict[GroupKey, float]:
        """Group → estimated value for one aggregate."""
        idx = self._agg_index(aggregate)
        return {g: ests[idx].value for g, ests in self.groups.items()}

    def confidence_interval(
        self, group: GroupKey, aggregate: str | None = None, level: float = 0.95
    ) -> tuple[float, float]:
        """Confidence interval for one group's estimate."""
        return self.estimate(group, aggregate).confidence_interval(level)

    def exact_groups(self) -> set[GroupKey]:
        """Groups whose values are exact (from small group tables)."""
        return {
            g for g, ests in self.groups.items() if all(e.exact for e in ests)
        }

    def to_table(
        self, name: str = "answer", level: float = 0.95
    ) -> "Table":
        """Materialise the answer as an engine table.

        Columns: the group columns, then per aggregate its estimate plus
        ``<name>_lo`` / ``<name>_hi`` confidence bounds, and finally an
        ``exact`` indicator (1 for small-group-served groups) — ready to
        persist with :mod:`repro.storage` or re-query with the engine.
        """
        from repro.engine.column import Column
        from repro.engine.table import Table

        if not self.groups:
            raise RuntimePhaseError("cannot materialise an empty answer")
        data: dict[str, list] = {}
        for i, column in enumerate(self.group_columns):
            data[column] = [g[i] for g in self.groups]
        for j, agg in enumerate(self.aggregate_names):
            estimates = [ests[j] for ests in self.groups.values()]
            data[agg] = [e.value for e in estimates]
            intervals = [e.confidence_interval(level) for e in estimates]
            data[f"{agg}_lo"] = [lo for lo, _ in intervals]
            data[f"{agg}_hi"] = [hi for _, hi in intervals]
        data["exact"] = [
            int(all(e.exact for e in ests)) for ests in self.groups.values()
        ]
        return Table(
            name, {c: Column.from_values(v) for c, v in data.items()}
        )
