"""Runtime query rewriting against sample tables.

A technique's runtime phase turns one incoming query into a list of
:class:`SamplePiece` objects — one per sample table it touches.  Each
piece carries the rewritten query (original predicate plus any bitmask
de-duplication filter), the scale factor for the aggregates, per-row
weights, and the per-row variance contributions.  The paper's Section
4.2.2 UNION ALL is exactly this list rendered as SQL, which
:func:`pieces_to_sql` does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.table import Table
from repro.engine.expressions import Query
from repro.sql.formatter import format_query


@dataclass
class SamplePiece:
    """One branch of a rewritten query.

    Attributes
    ----------
    table:
        Sample table to scan.
    query:
        Rewritten query (WHERE includes any bitmask filter) targeting
        ``table``'s name.
    scale:
        Aggregate scale factor (``1/r`` for the overall sample, 1 for
        100%-sampled small group tables).
    weights:
        Optional per-row weights for non-uniform sample tables.
    variance_weights:
        Per-row variance contribution (see
        :func:`repro.engine.executor.aggregate_table`); ``None`` for
        zero-variance pieces.
    zero_variance:
        Whether this piece's contributions carry no sampling variance
        (100%-sampled stratum).
    counts_as_exact:
        Whether groups answered solely from this piece may be reported as
        exact.  Defaults to ``zero_variance``.  Small group tables cover
        their groups *completely*, so they count; an outlier stratum is
        100%-sampled but covers only the outlier rows of a group, so it
        does not (set this to ``False``).
    description:
        Human-readable label for reports.
    """

    table: Table
    query: Query
    scale: float = 1.0
    weights: np.ndarray | None = None
    variance_weights: np.ndarray | None = None
    zero_variance: bool = False
    counts_as_exact: bool | None = None
    description: str = ""

    @property
    def marks_exact(self) -> bool:
        """Whether groups from this piece alone may be marked exact."""
        if self.counts_as_exact is None:
            return self.zero_variance
        return self.counts_as_exact


def pieces_to_sql(pieces: list[SamplePiece]) -> str:
    """Render the rewritten query as the paper's UNION ALL SQL text."""
    return "\nUNION ALL\n".join(
        format_query(piece.query, scale=piece.scale) for piece in pieces
    )
