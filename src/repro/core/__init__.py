"""Core contribution: dynamic sample selection + small group sampling."""

from repro.core.answer import ApproxAnswer, GroupEstimate
from repro.core.architecture import DynamicSampleSelection
from repro.core.combiner import execute_pieces
from repro.core.confidence import (
    agresti_coull_interval,
    bernoulli_count_variance,
    normal_interval,
    z_value,
)
from repro.core.interfaces import (
    AQPTechnique,
    PreprocessReport,
    SampleTableInfo,
)
from repro.core.pair_selection import PairSuggestion, suggest_pair_columns
from repro.core.rewriter import SamplePiece, pieces_to_sql
from repro.core.smallgroup import (
    OverallPart,
    SampleTableMeta,
    SmallGroupConfig,
    SmallGroupSampling,
    small_group_table_name,
)
from repro.core.workload_policy import (
    grouping_column_counts,
    small_group_for_workload,
    trim_columns,
)

__all__ = [
    "AQPTechnique",
    "ApproxAnswer",
    "DynamicSampleSelection",
    "GroupEstimate",
    "OverallPart",
    "PairSuggestion",
    "PreprocessReport",
    "SamplePiece",
    "SampleTableInfo",
    "SampleTableMeta",
    "SmallGroupConfig",
    "SmallGroupSampling",
    "agresti_coull_interval",
    "bernoulli_count_variance",
    "execute_pieces",
    "grouping_column_counts",
    "normal_interval",
    "pieces_to_sql",
    "small_group_for_workload",
    "small_group_table_name",
    "suggest_pair_columns",
    "trim_columns",
    "z_value",
]
