"""Small group sampling (Section 4).

The pre-processing phase takes a base sampling rate ``r`` and a small
group fraction ``t`` and builds, over the (joined) database of ``N`` rows:

* the **overall sample** — a uniform reservoir sample of ``N·r`` rows;
* a **small group table** per retained column ``C`` holding *all* rows
  whose value on ``C`` falls outside the common-value set ``L(C)`` (the
  minimal set of values covering at least ``N·(1 − t)`` rows) — at most
  ``N·t`` rows by construction;
* a **metadata table** assigning each small group table a bit index; and
* a **bitmask** on every stored sample row recording which small group
  classes the row belongs to, used at runtime to avoid double counting.

The first scan counts value frequencies per column, dropping columns with
more than ``τ`` distinct values (τ = 5000 in the paper); the second scan
populates the small group tables and the reservoir.

At runtime a query grouping on columns ``C1 … Cg`` is rewritten into a
UNION ALL: one unscaled branch per applicable small group table, each
filtered with ``bitmask & m = 0`` against the previously used tables, plus
a ``1/r``-scaled branch against the overall sample filtered against all
used tables (Section 4.2.2).  Answers for groups coming from small group
tables are exact.

Variations from Section 4.2.3 are implemented as options:

* ``levels`` — a multi-level hierarchy (e.g. 100% of small groups, 10% of
  medium groups, base rate for the rest);
* ``pair_columns`` — small group tables for selected column *pairs*;
* ``columns`` — an explicit (e.g. workload-trimmed) candidate column set;
* ``max_tables_per_query`` — a runtime cap on the number of small group
  tables consulted per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.architecture import DynamicSampleSelection
from repro.core.interfaces import SampleTableInfo
from repro.core.rewriter import SamplePiece
from repro.engine.bitmask import Bitmask, BitmaskVector
from repro.engine.cache import get_cache
from repro.engine.column import ColumnKind
from repro.engine.database import Database
from repro.engine.parallel import (
    ExecutionOptions,
    map_row_chunks,
    parallel_map,
    resolve_options,
)
from repro.engine.expressions import BitmaskDisjoint, Query
from repro.engine.reservoir import (
    ReservoirSampler,
    as_generator,
    reservoir_replacements,
    uniform_sample_indices,
)
from repro.engine.stats import DEFAULT_DISTINCT_THRESHOLD, collect_column_stats
from repro.engine.table import Table
from repro.errors import PreprocessingError, SamplingError
from repro.obs.registry import get_registry
from repro.sql.parser import BITMASK_COLUMN


@dataclass(frozen=True)
class SmallGroupConfig:
    """Tuning parameters for small group sampling.

    Attributes
    ----------
    base_rate:
        The base sampling rate ``r`` (overall sample size as a fraction of
        the database).  The paper's experiments mostly use 1%.
    allocation_ratio:
        The sampling allocation ratio ``γ = t/r``; the analysis in Section
        4.4 recommends 0.5 and finds 0.25–1.0 near-optimal.
    distinct_threshold:
        ``τ`` — columns with more distinct values are dropped from ``S``.
    columns:
        Optional explicit candidate column list (e.g. workload-trimmed);
        ``None`` means every categorical column of the joined view.
    exclude_columns:
        Columns never considered (keys, free text).
    levels:
        Extra sampling levels as ``(fraction, rate)`` pairs beyond the
        default ``((t, 1.0),)``.  Fractions are cumulative coverage
        targets; rates are the per-level sampling rates.  Example for the
        paper's three-level sketch: ``((t, 1.0), (4*t, 0.1))``.
    pair_columns:
        Column pairs to build joint small group tables for.
    max_tables_per_query:
        Runtime cap on the number of small group tables used per query
        (``None`` = use all applicable).
    max_rows_per_query:
        Runtime cap on the total sample rows scanned per query (the
        overall sample plus chosen small group tables).  When the
        applicable tables exceed the remaining budget, they are chosen
        greedily by class coverage per stored row — Section 4.2.3's
        "heuristic for picking a subset of the relevant small group
        tables" driven by an explicit time budget.
    use_reservoir:
        Build the overall sample with streaming reservoir sampling
        (faithful to the paper) or with a direct uniform draw (faster,
        statistically equivalent).
    storage:
        How star-schema sample tables are materialised. ``"inline"``
        stores full join synopses (every dimension attribute inline);
        ``"renormalized"`` applies the paper's §5.2.2 space optimisation:
        sample tables keep only fact columns, plus one *reduced*
        dimension table per original dimension (the union of dimension
        rows any sample references), re-joined at runtime.
    seed:
        RNG seed.
    """

    base_rate: float = 0.01
    allocation_ratio: float = 0.5
    distinct_threshold: int = DEFAULT_DISTINCT_THRESHOLD
    columns: tuple[str, ...] | None = None
    exclude_columns: tuple[str, ...] = ()
    levels: tuple[tuple[float, float], ...] | None = None
    pair_columns: tuple[tuple[str, str], ...] = ()
    max_tables_per_query: int | None = None
    max_rows_per_query: int | None = None
    use_reservoir: bool = True
    storage: str = "inline"
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_rate <= 1.0:
            raise SamplingError(
                f"base rate must be in (0, 1], got {self.base_rate}"
            )
        if self.storage not in ("inline", "renormalized"):
            raise SamplingError(
                f"storage must be 'inline' or 'renormalized', "
                f"got {self.storage!r}"
            )
        if self.allocation_ratio < 0.0:
            raise SamplingError(
                f"allocation ratio must be >= 0, got {self.allocation_ratio}"
            )
        if self.levels is not None:
            fractions = [f for f, _ in self.levels]
            rates = [r for _, r in self.levels]
            if fractions != sorted(fractions):
                raise SamplingError("level fractions must be increasing")
            if any(not 0.0 < r <= 1.0 for r in rates):
                raise SamplingError("level rates must be in (0, 1]")
            if rates != sorted(rates, reverse=True):
                raise SamplingError("level rates must be decreasing")

    @property
    def small_fraction(self) -> float:
        """The small group fraction ``t = γ · r``."""
        return min(1.0, self.allocation_ratio * self.base_rate)

    def effective_levels(self) -> tuple[tuple[float, float], ...]:
        """The level ladder, defaulting to the single 100% level."""
        if self.levels is not None:
            return self.levels
        return ((self.small_fraction, 1.0),)


@dataclass(frozen=True)
class SampleTableMeta:
    """Metadata-table entry for one small group sample table.

    Mirrors the paper's metadata table: which column(s) the table covers,
    its bit index, its sampling rate, and its stored size.
    """

    name: str
    columns: tuple[str, ...]
    bit_index: int
    rate: float
    level: int
    class_rows: int
    stored_rows: int


@dataclass
class _Stratification:
    """Output of the first scan: per-table row-class membership.

    ``classifiers`` re-test class membership for *new* rows (incremental
    maintenance): one callable per table mapping a batch table to a
    boolean membership array.  Class membership is value-determined, so a
    frozen classifier stays correct for already-seen values; unseen values
    are uncommon by definition and classify into the first (100%) level.
    """

    metas: list[SampleTableMeta]
    class_members: list[np.ndarray]  # boolean (N,) per table
    n_rows: int
    classifiers: list = field(default_factory=list)


def _isin_chunk(payload: tuple, start: int, stop: int) -> np.ndarray:
    """Process-pool task: ``np.isin`` membership for one row chunk.

    ``payload`` is ``(ArrayHandle, codes)`` — the shared-memory handle of
    the column's raw array plus the (small, pickled) uncommon-code set.
    """
    from repro.engine import procpool

    handle, codes = payload
    data = procpool.resolve_array(handle)
    return np.isin(data[start:stop], codes)


def _chunked_isin(
    data: np.ndarray, codes: np.ndarray, options: ExecutionOptions
) -> np.ndarray:
    """``np.isin(data, codes)`` evaluated over deterministic row chunks.

    Chunks scatter across the worker pool (thread or process backend);
    parts come back in chunk order and concatenate to exactly the serial
    membership array (the chunk layout depends only on the row count,
    never on the worker count or backend).
    """
    use_processes = options.uses_processes and len(data) > options.chunk_rows
    if use_processes:
        from repro.engine import procpool

        use_processes = not procpool.in_worker()
    if use_processes:
        handle = procpool.get_arena().publish_array(data)
        parts = procpool.process_map_row_chunks(
            _isin_chunk, (handle, codes), len(data), options
        )
    else:

        def _membership(start: int, stop: int) -> np.ndarray:
            return np.isin(data[start:stop], codes)

        parts = map_row_chunks(_membership, len(data), options)
    if not parts:
        return np.zeros(0, dtype=bool)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def _single_column_classifier(
    column: str, common: set, previous_common: set | None
):
    """Membership test for one (column, level) class on a batch of rows.

    A value belongs to the class when it is outside this level's common
    set but inside the next-stricter level's common set (always true for
    level 0).  Unseen values land in level 0.
    """

    def classify(batch: Table) -> np.ndarray:
        col = batch.column(column)
        dictionary = col.dictionary or ()
        in_common = np.asarray([v in common for v in dictionary])
        if previous_common is None:
            in_previous = np.ones(len(dictionary), dtype=bool)
        else:
            in_previous = np.asarray(
                [v in previous_common for v in dictionary]
            )
        member_by_code = ~in_common & in_previous
        if len(dictionary) == 0:
            return np.zeros(batch.n_rows, dtype=bool)
        return member_by_code[col.data]

    return classify


def _pair_classifier(pair: tuple[str, str], common_pairs: set):
    """Membership test for a pair class: the joint value is uncommon."""

    def classify(batch: Table) -> np.ndarray:
        col_a = batch.column(pair[0])
        col_b = batch.column(pair[1])
        out = np.empty(batch.n_rows, dtype=bool)
        for i in range(batch.n_rows):
            out[i] = (col_a[i], col_b[i]) not in common_pairs
        return out

    return classify


@dataclass
class OverallPart:
    """One stratum of the overall sample.

    The basic algorithm has a single uniform part; the outlier-enhanced
    variant (Section 4.2.1's "small group sampling enhanced with outlier
    indexing") replaces it with an exact outlier stratum plus a uniform
    sample of the remainder.
    """

    table: Table
    scale: float
    rate: float
    zero_variance: bool = False

    def variance_weights(self) -> np.ndarray | None:
        """Per-row variance contributions for this part."""
        if self.zero_variance:
            return None
        return np.full(
            self.table.n_rows, (1.0 - self.rate) * self.scale * self.scale
        )


class SmallGroupSampling(DynamicSampleSelection):
    """The paper's small group sampling technique."""

    name = "small_group"

    def __init__(
        self,
        config: SmallGroupConfig | None = None,
        options: ExecutionOptions | None = None,
    ) -> None:
        super().__init__()
        self.config = config or SmallGroupConfig()
        #: Parallelism knobs for the two pre-processing scans; ``None``
        #: falls back to the process-wide defaults at preprocess time.
        self.options = options
        self._metas: list[SampleTableMeta] = []
        self._tables: list[Table] = []
        self._table_weights: list[np.ndarray | None] = []
        self._overall_parts: list[OverallPart] = []
        self._n_bits: int = 0
        self._view_rows: int = 0
        self._classifiers: list = []
        #: Completed ``insert_rows`` batches since the last preprocess:
        #: seeds the deterministic per-append maintenance RNG stream.
        self._append_ordinal: int = 0
        self._view_columns: tuple[str, ...] = ()
        self._fact_columns: tuple[str, ...] = ()
        self._foreign_keys: tuple = ()
        self._dimensions: dict[str, Table] = {}
        self._reduced_dims: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Pre-processing: first scan
    # ------------------------------------------------------------------
    def candidate_columns(self, view: Table) -> list[str]:
        """Columns considered for small group tables.

        Categorical (string) columns only — numeric measures and key
        columns are not meaningful grouping targets — minus exclusions.
        """
        if self.config.columns is not None:
            return [c for c in self.config.columns if view.has_column(c)]
        excluded = set(self.config.exclude_columns)
        return [
            c
            for c in view.column_names
            if c not in excluded
            and view.column(c).kind is ColumnKind.STRING
        ]

    def select_strata(self, db: Database, view: Table) -> _Stratification:
        """First scan: frequency counts → per-column value classes.

        For each retained column and each level ``(fraction, rate)``, the
        level's value class is the set of values outside the common prefix
        covering ``1 − fraction`` of rows but inside the next-stricter
        level's prefix.  Rows are classified by their column values, so
        class membership is deterministic — the property the bitmask
        de-duplication relies on.
        """
        candidates = self.candidate_columns(view)
        options = resolve_options(self.options)
        stats = collect_column_stats(
            view, candidates, self.config.distinct_threshold, options=options
        )
        levels = self.config.effective_levels()
        n = view.n_rows
        metas: list[SampleTableMeta] = []
        members: list[np.ndarray] = []
        classifiers: list = []
        for column in candidates:
            if column not in stats:
                continue
            col_stats = stats[column]
            col = view.column(column)
            previous = np.zeros(n, dtype=bool)
            previous_common: set | None = None
            for level_index, (fraction, rate) in enumerate(levels):
                common = col_stats.common_values(fraction)
                uncommon_codes = [
                    col.code_for(v)
                    for v in col_stats.frequencies
                    if v not in common
                ]
                in_class = _chunked_isin(
                    col.data,
                    np.asarray(sorted(uncommon_codes), dtype=col.data.dtype),
                    options,
                ) if uncommon_codes else np.zeros(n, dtype=bool)
                level_class = in_class & ~previous
                previous |= in_class
                class_rows = int(level_class.sum())
                if class_rows == 0:
                    previous_common = common
                    continue
                suffix = "" if len(levels) == 1 else f"_L{level_index}"
                metas.append(
                    SampleTableMeta(
                        name=f"sg_{column}{suffix}",
                        columns=(column,),
                        bit_index=len(metas),
                        rate=rate,
                        level=level_index,
                        class_rows=class_rows,
                        stored_rows=0,
                    )
                )
                members.append(level_class)
                classifiers.append(
                    _single_column_classifier(column, common, previous_common)
                )
                previous_common = common
        for pair in self.config.pair_columns:
            member, common_pairs = self._pair_class(view, pair)
            class_rows = int(member.sum())
            if class_rows == 0:
                continue
            metas.append(
                SampleTableMeta(
                    name=f"sg_{pair[0]}__{pair[1]}",
                    columns=tuple(pair),
                    bit_index=len(metas),
                    rate=1.0,
                    level=0,
                    class_rows=class_rows,
                    stored_rows=0,
                )
            )
            members.append(member)
            classifiers.append(_pair_classifier(pair, common_pairs))
        return _Stratification(
            metas=metas,
            class_members=members,
            n_rows=n,
            classifiers=classifiers,
        )

    def _pair_class(
        self, view: Table, pair: tuple[str, str]
    ) -> tuple[np.ndarray, set]:
        """Joint small-group class for a column pair (Section 4.2.3).

        Returns the per-row membership array and the set of *common*
        decoded value pairs (for the incremental-maintenance classifier).
        """
        a, b = pair
        if not (view.has_column(a) and view.has_column(b)):
            raise PreprocessingError(f"pair column missing: {pair}")
        col_a, col_b = view.column(a), view.column(b)
        if (
            col_a.kind is not ColumnKind.STRING
            or col_b.kind is not ColumnKind.STRING
        ):
            raise PreprocessingError("pair small group tables need categoricals")
        n = view.n_rows
        t = self.config.small_fraction
        radix = int(col_b.data.max(initial=0)) + 1
        joint = col_a.data.astype(np.int64) * radix + col_b.data
        values, inverse, counts = np.unique(
            joint, return_inverse=True, return_counts=True
        )
        order = np.argsort(-counts, kind="stable")
        covered = np.cumsum(counts[order])
        target = n * (1.0 - t)
        # Minimal prefix of most-common joint values covering >= target.
        n_common = int(np.searchsorted(covered, target - 1e-9)) + 1
        common_positions = set(order[:n_common].tolist())
        is_common = np.asarray(
            [pos in common_positions for pos in range(len(values))]
        )
        common_pairs = {
            (col_a.decode(int(values[pos]) // radix),
             col_b.decode(int(values[pos]) % radix))
            for pos in common_positions
        }
        return ~is_common[inverse], common_pairs

    # ------------------------------------------------------------------
    # Pre-processing: second scan
    # ------------------------------------------------------------------
    def build_samples(
        self, db: Database, view: Table, strata: _Stratification
    ) -> list[SampleTableInfo]:
        """Second scan: materialise sample tables, reservoir, bitmasks.

        The scan splits into a serial head and a parallel tail.  All RNG
        draws — which rows each sub-100% table stores, and the overall
        reservoir — run serially in metadata order so the consumed
        random sequence is identical at every worker count.  The row
        *collection* (gathering each table's stored rows out of the view
        and packing its bitmask) is a pure function of those indices and
        scatters across the worker pool, gathered back in table order.
        """
        rng = as_generator(self.config.seed)
        options = resolve_options(self.options)
        n = strata.n_rows
        self._n_bits = max(1, len(strata.metas))
        self._view_rows = n
        self._classifiers = list(strata.classifiers)
        self._append_ordinal = 0
        self._view_columns = tuple(view.column_names)
        self._fact_columns = tuple(db.fact_table.column_names)
        self._foreign_keys = (
            db.star_schema.foreign_keys if db.star_schema else ()
        )
        self._dimensions = {
            fk.dimension_table: db.table(fk.dimension_table)
            for fk in self._foreign_keys
        }
        self._reduced_dims = {}
        member_matrix = (
            np.stack(strata.class_members, axis=1)
            if strata.class_members
            else np.zeros((n, 0), dtype=bool)
        )

        metas: list[SampleTableMeta] = []
        tables: list[Table] = []
        weights: list[np.ndarray | None] = []
        infos: list[SampleTableInfo] = []
        # Serial head: every RNG draw happens here, in metadata order.
        stored_per_table: list[np.ndarray] = []
        for meta, member in zip(strata.metas, strata.class_members):
            class_indices = np.flatnonzero(member)
            if meta.rate >= 1.0:
                stored = class_indices
            else:
                k = max(1, round(meta.rate * class_indices.size))
                stored = class_indices[
                    uniform_sample_indices(class_indices.size, k, rng)
                ]
            stored_per_table.append(stored)

        def _collect_rows(item: tuple[SampleTableMeta, np.ndarray]) -> Table:
            meta, stored = item
            return self._store_rows(view, stored, meta.name, member_matrix)

        # Parallel tail: per-table row collection, gathered in table order.
        # This site stays on the thread pool under every backend: each
        # task returns a whole materialised sample table, so the process
        # backend would pickle megabytes of output per task — the
        # transfer would cost more than the fancy-indexing it offloads.
        built = parallel_map(
            _collect_rows,
            list(zip(strata.metas, stored_per_table)),
            options.workers,
        )
        for meta, stored, table in zip(strata.metas, stored_per_table, built):
            stored_meta = SampleTableMeta(
                name=meta.name,
                columns=meta.columns,
                bit_index=meta.bit_index,
                rate=meta.rate,
                level=meta.level,
                class_rows=meta.class_rows,
                stored_rows=int(stored.size),
            )
            metas.append(stored_meta)
            tables.append(table)
            weights.append(None)
            infos.append(
                SampleTableInfo(table=table, kind="small_group", rate=meta.rate)
            )

        self._metas = metas
        self._tables = tables
        self._table_weights = weights
        self._overall_parts = self.build_overall_parts(
            view, member_matrix, rng
        )
        for part in self._overall_parts:
            infos.append(
                SampleTableInfo(
                    table=part.table,
                    kind="outlier" if part.zero_variance else "overall",
                    rate=part.rate,
                )
            )
        if self.config.storage == "renormalized":
            self._build_reduced_dimensions()
            for dim in self._reduced_dims.values():
                infos.append(
                    SampleTableInfo(table=dim, kind="dimension", rate=1.0)
                )
        return infos

    def _store_rows(
        self,
        view: Table,
        rows: np.ndarray,
        name: str,
        member_matrix: np.ndarray,
    ) -> Table:
        """Materialise a sample table from view row indices.

        Inline storage keeps the full join synopsis; renormalized storage
        keeps only the fact columns (dimension attributes are re-joined
        at runtime through the shared reduced dimension tables).
        """
        table = view.take(rows)
        if self.config.storage == "renormalized":
            table = table.select(list(self._fact_columns))
        return table.rename(name).with_bitmask(
            self._pack_bits(member_matrix, rows)
        )

    def _build_reduced_dimensions(self) -> None:
        """One reduced dimension table per original dimension (§5.2.2).

        The paper first renormalizes each join synopsis into per-sample
        small dimension tables, then merges them into a single smaller
        dimension table per original dimension; we build the merged form
        directly: the union of dimension rows referenced by any sample.
        """
        all_samples = list(self._tables) + [
            p.table for p in self._overall_parts
        ]
        for fk in self._foreign_keys:
            dim = self._dimensions[fk.dimension_table]
            referenced: set[int] = set()
            for sample in all_samples:
                referenced.update(
                    np.unique(
                        sample.column(fk.fact_column).numeric_values()
                    ).tolist()
                )
            keys = dim.column(fk.dimension_key).numeric_values()
            keep = np.isin(
                keys, np.asarray(sorted(referenced), dtype=keys.dtype)
            )
            self._reduced_dims[fk.dimension_table] = dim.filter(keep).rename(
                f"sg_dim_{fk.dimension_table}"
            )

    def _piece_table(self, table: Table, query: Query) -> Table:
        """Resolve a sample table for one query's referenced columns.

        Inline samples already carry every column.  Renormalized samples
        re-join the needed dimension attributes from the reduced
        dimension tables, preserving the bitmask.
        """
        if self.config.storage != "renormalized":
            return table
        needed = query.referenced_columns()
        missing = [c for c in needed if not table.has_column(c)]
        if not missing:
            return table
        from repro.engine.database import gather_dimension_column

        columns = {c: table.column(c) for c in table.column_names}
        remaining = set(missing)
        for fk in self._foreign_keys:
            dim = self._reduced_dims[fk.dimension_table]
            wanted = [c for c in remaining if dim.has_column(c)]
            if not wanted:
                continue
            fact_key_col = table.column(fk.fact_column)
            dim_key_col = dim.column(fk.dimension_key)
            for c in wanted:
                columns[c] = gather_dimension_column(
                    fact_key_col, dim_key_col, dim.column(c)
                )
                remaining.discard(c)
        if remaining:
            raise PreprocessingError(
                f"columns {sorted(remaining)} not found in sample or "
                "reduced dimensions"
            )
        return Table(table.name, columns, table.bitmask)

    def build_overall_parts(
        self,
        view: Table,
        member_matrix: np.ndarray,
        rng: np.random.Generator,
    ) -> list[OverallPart]:
        """Construct the overall sample (hook for the outlier variant).

        The base algorithm draws a single uniform reservoir sample of
        ``base_rate · N`` rows.
        """
        n = view.n_rows
        overall_indices = self._draw_overall(n, rng)
        overall = self._store_rows(
            view, overall_indices, "sg_overall", member_matrix
        )
        rate = overall_indices.size / n if n else self.config.base_rate
        return [
            OverallPart(table=overall, scale=1.0 / rate, rate=rate)
        ]

    def _draw_overall(self, n: int, rng: np.random.Generator) -> np.ndarray:
        k = max(1, round(self.config.base_rate * n))
        if not self.config.use_reservoir:
            return uniform_sample_indices(n, k, rng)
        sampler = ReservoirSampler(k, rng)
        sampler.offer_many(range(n))
        return sampler.sample()

    def _pack_bits(
        self, member_matrix: np.ndarray, rows: np.ndarray
    ) -> BitmaskVector:
        """Bitmask vector for the stored ``rows`` from class membership."""
        vector = BitmaskVector(rows.size, self._n_bits)
        selected = member_matrix[rows]
        for bit in range(selected.shape[1]):
            vector.set_bit(np.flatnonzero(selected[:, bit]), bit)
        return vector

    def preprocess_details(self) -> dict:
        """Metadata-table contents for reports."""
        return {
            "small_group_tables": [
                {
                    "name": m.name,
                    "columns": list(m.columns),
                    "bit_index": m.bit_index,
                    "rate": m.rate,
                    "stored_rows": m.stored_rows,
                }
                for m in self._metas
            ],
            "overall_rows": sum(p.table.n_rows for p in self._overall_parts),
            "overall_parts": [
                {
                    "name": p.table.name,
                    "rows": p.table.n_rows,
                    "rate": p.rate,
                    "exact": p.zero_variance,
                }
                for p in self._overall_parts
            ],
        }

    # ------------------------------------------------------------------
    # Runtime phase
    # ------------------------------------------------------------------
    def metadata(self) -> list[SampleTableMeta]:
        """The metadata table: one entry per small group table."""
        self.require_preprocessed()
        return list(self._metas)

    def sample_catalog(self) -> Database:
        """The sample tables as an ordinary database (middleware view)."""
        self.require_preprocessed()
        tables = list(self._tables) + [p.table for p in self._overall_parts]
        tables.extend(self._reduced_dims.values())
        return Database(tables)

    def applicable_tables(self, query: Query) -> list[int]:
        """Indices (into the metadata list) of tables usable for ``query``.

        A single-column table applies when its column is in the query's
        GROUP BY list; a pair table applies when both its columns are.
        Two runtime caps (Section 4.2.3's "heuristic for picking a
        subset") may then trim the list:

        * ``max_rows_per_query`` — keep tables greedily by class coverage
          per stored row while the total scan (overall sample included)
          fits the row budget;
        * ``max_tables_per_query`` — keep the smallest tables.
        """
        grouping = set(query.group_by)
        chosen = [
            i
            for i, meta in enumerate(self._metas)
            if set(meta.columns) <= grouping
        ]
        row_budget = self.config.max_rows_per_query
        if row_budget is not None:
            remaining = row_budget - sum(
                p.table.n_rows for p in self._overall_parts
            )
            # Greedy knapsack: prefer high class coverage per stored row,
            # then larger coverage outright.
            order = sorted(
                chosen,
                key=lambda i: (
                    -(
                        self._metas[i].class_rows
                        / max(1, self._metas[i].stored_rows)
                    ),
                    -self._metas[i].class_rows,
                ),
            )
            kept = []
            for i in order:
                cost = self._metas[i].stored_rows
                if cost <= remaining:
                    kept.append(i)
                    remaining -= cost
            chosen = kept
        cap = self.config.max_tables_per_query
        if cap is not None and len(chosen) > cap:
            chosen = sorted(
                chosen, key=lambda i: self._metas[i].stored_rows
            )[:cap]
        chosen.sort(key=lambda i: self._metas[i].bit_index)
        return chosen

    def choose_samples(self, query: Query) -> list[SamplePiece]:
        """Rewrite ``query`` into small-group pieces + the overall pieces."""
        pieces: list[SamplePiece] = []
        used_bits: list[int] = []
        for i in self.applicable_tables(query):
            meta = self._metas[i]
            table = self._piece_table(self._tables[i], query)
            filter_mask = Bitmask(self._n_bits, used_bits)
            piece_query = query.with_table(meta.name)
            if used_bits:
                piece_query = piece_query.and_where(
                    BitmaskDisjoint(filter_mask)
                )
            if meta.rate >= 1.0:
                pieces.append(
                    SamplePiece(
                        table=table,
                        query=piece_query,
                        scale=1.0,
                        zero_variance=True,
                        description=f"{meta.name} (exact)",
                    )
                )
            else:
                actual_rate = (
                    meta.stored_rows / meta.class_rows
                    if meta.class_rows
                    else meta.rate
                )
                scale = 1.0 / actual_rate
                variance_weights = np.full(
                    table.n_rows, (1.0 - actual_rate) * scale * scale
                )
                pieces.append(
                    SamplePiece(
                        table=table,
                        query=piece_query,
                        scale=scale,
                        variance_weights=variance_weights,
                        description=f"{meta.name} (rate {actual_rate:.3f})",
                    )
                )
            used_bits.append(meta.bit_index)
        overall_mask = Bitmask(self._n_bits, used_bits)
        for part in self._overall_parts:
            part_query = query.with_table(part.table.name)
            if used_bits:
                part_query = part_query.and_where(
                    BitmaskDisjoint(overall_mask)
                )
            pieces.append(
                SamplePiece(
                    table=self._piece_table(part.table, query),
                    query=part_query,
                    scale=part.scale,
                    variance_weights=part.variance_weights(),
                    zero_variance=part.zero_variance,
                    # An overall part never fully covers a group by itself,
                    # so its groups are not reported as exact.
                    counts_as_exact=False,
                    description=f"{part.table.name} (rate {part.rate:.4f})",
                )
            )
        return pieces

    def rows_for_query(self, query: Query) -> int:
        """Rows scanned for ``query``: overall + applicable small tables."""
        self.require_preprocessed()
        rows = sum(p.table.n_rows for p in self._overall_parts)
        for i in self.applicable_tables(query):
            rows += self._metas[i].stored_rows
        return rows

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def supports_incremental_maintenance(self) -> bool:
        """Whether :meth:`insert_rows` is available.

        True for the basic algorithm (single uniform overall sample);
        variants that restructure the overall sample (e.g. the outlier
        hybrid) must rebuild instead.
        """
        return (
            len(self._overall_parts) == 1
            and not self._overall_parts[0].zero_variance
        )

    def insert_rows(self, new_rows: Table) -> None:
        """Maintain the samples under appended rows.

        ``new_rows`` must carry the joined-view schema (every column of
        the stored sample tables).  Each new row is

        * appended to the small group tables whose value classes it falls
          into — classes are value-determined, so the frozen common-value
          sets stay correct for seen values, and *unseen* values are
          uncommon by definition and land in the 100% level;
        * offered to the overall reservoir, which keeps its fixed size
          (the classic reservoir discipline), so the overall sampling
          rate is re-derived as ``k / N`` after each batch.

        Value-frequency drift can eventually invalidate the common sets;
        :meth:`maintenance_report` quantifies the drift so callers can
        decide when to re-run :meth:`preprocess`.
        """
        self.require_preprocessed()
        if not self.supports_incremental_maintenance():
            raise SamplingError(
                f"{self.name}: incremental maintenance requires the basic "
                "single-part overall sample; rebuild with preprocess()"
            )
        required = self._view_columns or tuple(
            (self._tables[0] if self._tables else self._overall_parts[0].table)
            .column_names
        )
        missing = [c for c in required if not new_rows.has_column(c)]
        if missing:
            raise SamplingError(
                f"insert batch is missing view columns {missing}"
            )
        batch = new_rows.select(list(required))
        stored_columns = (
            list(self._fact_columns)
            if self.config.storage == "renormalized"
            else list(required)
        )
        n_new = batch.n_rows
        if n_new == 0:
            return
        # Deterministic per-append RNG stream: the draws for append #i
        # are a pure function of (seed, i), never of how many queries
        # ran in between, so any interleaving of appends and queries
        # yields samples byte-identical to a fresh session replaying the
        # same appends in order at the same seed.
        rng = as_generator(
            np.random.default_rng(
                [int(self.config.seed), 0x5EED, self._append_ordinal]
            )
        )
        self._append_ordinal += 1

        # Class membership of the new rows across every small group table.
        member_matrix = (
            np.stack([clf(batch) for clf in self._classifiers], axis=1)
            if self._classifiers
            else np.zeros((n_new, 0), dtype=bool)
        )

        # 1. Extend the small group tables.
        from dataclasses import replace as _replace

        for i, meta in enumerate(self._metas):
            member = member_matrix[:, i]
            class_indices = np.flatnonzero(member)
            if class_indices.size == 0:
                continue
            if meta.rate >= 1.0:
                stored = class_indices
            else:
                keep = rng.random(class_indices.size) < meta.rate
                stored = class_indices[keep]
            appended = 0
            if stored.size:
                extension = (
                    batch.take(stored)
                    .select(stored_columns)
                    .rename(meta.name)
                    .with_bitmask(self._pack_bits(member_matrix, stored))
                )
                replaced = self._tables[i]
                self._tables[i] = replaced.concat(extension)
                get_cache().invalidate_table(replaced)
                appended = int(stored.size)
            self._metas[i] = _replace(
                meta,
                class_rows=meta.class_rows + int(class_indices.size),
                stored_rows=meta.stored_rows + appended,
            )

        # 2. Maintain the overall reservoir at its fixed capacity.
        part = self._overall_parts[0]
        overall = part.table
        k = overall.n_rows
        replacements = reservoir_replacements(k, self._view_rows, n_new, rng)
        total = self._view_rows + n_new
        if replacements:
            get_registry().incr("ingest.reservoir_updates", len(replacements))
            keep_mask = np.ones(k, dtype=bool)
            keep_mask[list(replacements)] = False
            kept = overall.filter(keep_mask)
            incoming = np.asarray(sorted(set(replacements.values())))
            addition = (
                batch.take(incoming)
                .select(stored_columns)
                .rename(overall.name)
                .with_bitmask(self._pack_bits(member_matrix, incoming))
            )
            overall = kept.concat(addition)
            get_cache().invalidate_table(part.table)
        self._view_rows = total
        if self.config.storage == "renormalized":
            self._extend_reduced_dimensions(batch)
        rate = overall.n_rows / total
        self._overall_parts[0] = OverallPart(
            table=overall, scale=1.0 / rate, rate=rate
        )
        self._refresh_infos()
        # The overall scale factor moved with the new row count, so any
        # memoised rewrite plans are stale even when no table changed.
        self.invalidate_plans()

    def _extend_reduced_dimensions(self, batch: Table) -> None:
        """Add newly referenced dimension rows to the reduced dimensions."""
        for fk in self._foreign_keys:
            reduced = self._reduced_dims[fk.dimension_table]
            have = set(
                np.unique(
                    reduced.column(fk.dimension_key).numeric_values()
                ).tolist()
            )
            incoming = set(
                np.unique(
                    batch.column(fk.fact_column).numeric_values()
                ).tolist()
            )
            new_keys = incoming - have
            if not new_keys:
                continue
            source = self._dimensions[fk.dimension_table]
            keys = source.column(fk.dimension_key).numeric_values()
            keep = np.isin(
                keys, np.asarray(sorted(new_keys), dtype=keys.dtype)
            )
            addition = source.filter(keep).rename(reduced.name)
            self._reduced_dims[fk.dimension_table] = reduced.concat(addition)
            get_cache().invalidate_table(reduced)

    def _refresh_infos(self) -> None:
        """Rebuild the sample-table info list after maintenance."""
        infos = [
            SampleTableInfo(table=table, kind="small_group", rate=meta.rate)
            for table, meta in zip(self._tables, self._metas)
        ]
        for part in self._overall_parts:
            infos.append(
                SampleTableInfo(
                    table=part.table,
                    kind="outlier" if part.zero_variance else "overall",
                    rate=part.rate,
                )
            )
        for dim in self._reduced_dims.values():
            infos.append(SampleTableInfo(table=dim, kind="dimension", rate=1.0))
        self._infos = infos

    def maintenance_report(self) -> dict:
        """Quantify drift accumulated through :meth:`insert_rows`.

        Returns per-table class fractions against the configured caps.
        A ``fill_ratio`` well above 1 means value-frequency drift has
        outgrown a small group table and a rebuild is warranted.
        """
        self.require_preprocessed()
        levels = self.config.effective_levels()
        tables = []
        worst = 0.0
        for meta in self._metas:
            cap_fraction = levels[meta.level][0] if meta.level < len(levels) else levels[-1][0]
            fraction = meta.class_rows / max(1, self._view_rows)
            fill = fraction / cap_fraction if cap_fraction > 0 else 0.0
            worst = max(worst, fill)
            tables.append(
                {
                    "name": meta.name,
                    "class_fraction": fraction,
                    "cap_fraction": cap_fraction,
                    "fill_ratio": fill,
                }
            )
        return {
            "view_rows": self._view_rows,
            "tables": tables,
            "worst_fill_ratio": worst,
            "rebuild_recommended": worst > 1.5,
        }


def small_group_table_name(column: str) -> str:
    """Catalog name of the single-level small group table for ``column``."""
    return f"sg_{column}"


# Re-exported so middleware users can build the paper's filters directly.
__all__ = [
    "BITMASK_COLUMN",
    "SampleTableMeta",
    "SmallGroupConfig",
    "SmallGroupSampling",
    "small_group_table_name",
]
