"""Workload-driven sample selection policies.

Section 3.3 notes that richer dynamic-selection policies can consult
query-distribution information, and Section 5.4.2 suggests the concrete
space optimisation: "available workloads may be analyzed to eliminate
infrequently referenced grouping columns".  This module implements that
trimming: count how often each column is used as a grouping column in a
(training) workload, keep only the frequently used ones, and hand the
result to :class:`SmallGroupConfig.columns`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.errors import WorkloadError
from repro.workload.spec import Workload


def grouping_column_counts(workload: Workload) -> Counter:
    """How many workload queries group on each column."""
    counts: Counter = Counter()
    for wq in workload.queries:
        for column in wq.query.group_by:
            counts[column] += 1
    return counts


def trim_columns(
    workload: Workload,
    min_references: int = 1,
    top_k: int | None = None,
) -> tuple[str, ...]:
    """Columns worth building small group tables for, per the workload.

    Parameters
    ----------
    workload:
        Training workload to analyse.
    min_references:
        Columns grouped on fewer than this many times are dropped.
    top_k:
        Optionally keep only the ``k`` most frequently grouped columns.

    Returns the retained column names, most-referenced first.
    """
    if min_references < 1:
        raise WorkloadError("min_references must be >= 1")
    if top_k is not None and top_k < 1:
        raise WorkloadError("top_k must be >= 1 when given")
    counts = grouping_column_counts(workload)
    retained = [
        column
        for column, count in counts.most_common()
        if count >= min_references
    ]
    if top_k is not None:
        retained = retained[:top_k]
    if not retained:
        raise WorkloadError(
            "workload trimming removed every candidate column; lower "
            "min_references or top_k"
        )
    return tuple(retained)


def small_group_for_workload(
    db,
    workload: Workload,
    config: SmallGroupConfig | None = None,
    min_references: int = 1,
    top_k: int | None = None,
) -> SmallGroupSampling:
    """Build small group sampling with a workload-trimmed column set.

    Convenience wrapper: trims the candidate columns, injects them into
    the config, runs pre-processing, and returns the ready technique.
    """
    config = config or SmallGroupConfig()
    columns = trim_columns(workload, min_references, top_k)
    technique = SmallGroupSampling(replace(config, columns=columns))
    technique.preprocess(db)
    return technique
