"""Common interfaces for AQP techniques.

Every technique in this library — small group sampling and all baselines —
follows the paper's two-phase contract:

* :meth:`AQPTechnique.preprocess` scans the database and builds sample
  tables (possibly many, possibly biased), returning a
  :class:`PreprocessReport` with the time/space accounting that Section
  5.4.2 reports;
* :meth:`AQPTechnique.answer` takes an aggregation query, selects the
  appropriate sample table(s), rewrites the query against them, and
  returns an :class:`~repro.core.answer.ApproxAnswer`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.answer import ApproxAnswer
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.engine.table import Table
from repro.errors import RuntimePhaseError


@dataclass(frozen=True)
class SampleTableInfo:
    """One stored sample table plus its sampling metadata.

    Attributes
    ----------
    table:
        The sample rows (a join synopsis for star schemas: dimension
        columns are materialised inline).
    kind:
        Role of the table (``"overall"``, ``"small_group"``, ``"outlier"``,
        ``"stratified"``, ``"uniform"``...).
    rate:
        Nominal sampling rate used to build the table (1.0 for
        100%-sampled small group / outlier tables).
    weights:
        Optional per-row weights (inverse inclusion probabilities) for
        non-uniformly sampled tables.
    """

    table: Table
    kind: str
    rate: float
    weights: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        """Number of rows stored."""
        return self.table.n_rows


@dataclass
class PreprocessReport:
    """Cost accounting for a technique's pre-processing phase.

    Attributes
    ----------
    technique:
        Technique name.
    wall_time_seconds:
        Time spent building samples.
    sample_rows:
        Total rows across all sample tables.
    sample_bytes:
        Approximate bytes across all sample tables.
    database_rows / database_bytes:
        Size of the source database (joined view), for overhead ratios.
    n_sample_tables:
        Number of sample tables built.
    details:
        Free-form per-technique extras (e.g. small group table sizes).
    """

    technique: str
    wall_time_seconds: float
    sample_rows: int
    sample_bytes: int
    database_rows: int
    database_bytes: int
    n_sample_tables: int
    details: dict = field(default_factory=dict)

    @property
    def space_overhead(self) -> float:
        """Sample bytes as a fraction of database bytes (Section 5.4.2)."""
        if self.database_bytes == 0:
            return 0.0
        return self.sample_bytes / self.database_bytes

    @property
    def row_overhead(self) -> float:
        """Sample rows as a fraction of database rows."""
        if self.database_rows == 0:
            return 0.0
        return self.sample_rows / self.database_rows


class AQPTechnique(abc.ABC):
    """Base class for approximate query processing techniques."""

    #: Short technique name used in reports and answers.
    name: str = "abstract"

    def __init__(self) -> None:
        self._preprocessed = False
        self._plan_version = 0

    @property
    def plan_version(self) -> int:
        """Monotonic counter identifying the current sample layout.

        Session-level plan memos store the version they were computed
        against and recompute when it moves — after :meth:`preprocess`
        or incremental maintenance restructure the samples.
        """
        return self._plan_version

    def invalidate_plans(self) -> None:
        """Bump :attr:`plan_version`; call after the sample layout changes."""
        self._plan_version += 1

    @abc.abstractmethod
    def preprocess(self, db: Database) -> PreprocessReport:
        """Scan the database and build this technique's sample tables."""

    @abc.abstractmethod
    def answer(self, query: Query) -> ApproxAnswer:
        """Answer a query approximately from the built samples."""

    @abc.abstractmethod
    def sample_tables(self) -> list[SampleTableInfo]:
        """All sample tables this technique stores."""

    def require_preprocessed(self) -> None:
        """Raise unless :meth:`preprocess` has completed."""
        if not self._preprocessed:
            raise RuntimePhaseError(
                f"{self.name}: preprocess() must run before answering queries"
            )

    def rows_for_query(self, query: Query) -> int:
        """Sample rows this technique would scan for ``query``.

        The experiment harness uses this to grant competing techniques the
        same per-query sample space (Section 5.2.3).  Default: all stored
        rows.
        """
        return sum(info.n_rows for info in self.sample_tables())

    def _report(
        self,
        db: Database,
        wall_time_seconds: float,
        details: dict | None = None,
    ) -> PreprocessReport:
        """Assemble a report from the technique's current sample tables."""
        # Every preprocess implementation ends here, so reporting doubles
        # as the plan-version bump for freshly (re)built samples.
        self.invalidate_plans()
        infos = self.sample_tables()
        view_rows = db.fact_table.n_rows
        return PreprocessReport(
            technique=self.name,
            wall_time_seconds=wall_time_seconds,
            sample_rows=sum(i.n_rows for i in infos),
            sample_bytes=sum(i.table.memory_bytes() for i in infos),
            database_rows=view_rows,
            database_bytes=db.total_bytes(),
            n_sample_tables=len(infos),
            details=details or {},
        )
