"""Combine partial results from rewritten query pieces.

Each :class:`~repro.core.rewriter.SamplePiece` is executed against its
sample table; the per-group values are summed across pieces (strata are
disjoint thanks to the bitmask filters, so the estimates add), as do the
per-group variances (independent strata).  A group is exact when every
piece contributing to it is a zero-variance (100%-sampled) stratum —
the paper's "answers for groups that result from querying small group
tables are marked as being exact".

COUNT and SUM add across strata directly.  AVG does not, so AVG
aggregates are decomposed into a SUM and a shared COUNT component — the
actual rewrite executed against the sample tables — and recombined as a
ratio estimator, with the delta-method variance

    Var(S/C) ≈ (Var(S) − 2·R·Cov(S, C) + R²·Var(C)) / C²,   R = S/C,

where the component variances and the covariance accumulate per stratum
(``Σ vw·x²``, ``Σ vw``, and ``Σ vw·x`` from the executor's variance
statistics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.answer import ApproxAnswer, GroupEstimate, GroupKey
from repro.core.rewriter import SamplePiece, pieces_to_sql
from repro.engine.executor import (
    GroupedResult,
    aggregate_table,
    order_limit_groups,
)
from repro.engine.deadline import Deadline
from repro.engine.expressions import AggFunc, AggregateSpec, Query
from repro.engine.parallel import (
    ExecutionOptions,
    parallel_map,
    resolve_options,
)
from repro.engine.selection import ChunkSelectionPlan, plan_chunk_selection
from repro.engine.zonemap import (
    PieceSkipStats,
    SkipReport,
    predicate_always_false,
)
from repro.errors import RuntimePhaseError
from repro.obs.registry import get_registry
from repro.obs.trace import NULL_SPAN, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.engine.procpool import ArrayHandle, TableHandle


def _order_and_limit(
    groups: dict[GroupKey, tuple[GroupEstimate, ...]],
    query: Query,
    agg_names: tuple[str, ...],
) -> tuple[dict[GroupKey, tuple[GroupEstimate, ...]], bool | None]:
    """Apply the query's ORDER BY/LIMIT to the combined estimates.

    When the query orders by an estimated aggregate and a LIMIT actually
    drops groups, also report whether the cut is statistically separated:
    the last kept group's confidence interval must not overlap the best
    dropped group's.
    """
    values = {g: tuple(e.value for e in ests) for g, ests in groups.items()}
    ordered_all = order_limit_groups(
        values, query.group_by, agg_names, query.order_by, None
    )
    kept = (
        ordered_all[: query.limit] if query.limit is not None else ordered_all
    )
    confident: bool | None = None
    if (
        query.limit is not None
        and len(ordered_all) > len(kept)
        and query.order_by
        and query.order_by[0][0] in agg_names
    ):
        agg_index = agg_names.index(query.order_by[0][0])
        descending = query.order_by[0][1]
        last_kept = groups[kept[-1]][agg_index]
        first_dropped = groups[ordered_all[len(kept)]][agg_index]
        kept_lo, kept_hi = last_kept.confidence_interval()
        drop_lo, drop_hi = first_dropped.confidence_interval()
        confident = kept_lo > drop_hi if descending else kept_hi < drop_lo
    return {g: groups[g] for g in kept}, confident


@dataclass(frozen=True)
class _DirectOutput:
    """Output aggregate computed by summing one component across strata."""

    name: str
    component: int


@dataclass(frozen=True)
class _RatioOutput:
    """AVG output: ratio of a SUM component to the shared COUNT component."""

    name: str
    sum_component: int
    count_component: int


def _plan_components(
    aggregates: tuple[AggregateSpec, ...],
) -> tuple[list[AggregateSpec], list[_DirectOutput | _RatioOutput]]:
    """Decompose the query's aggregates into additive components.

    COUNT/SUM pass through; each AVG contributes a SUM component and (one
    shared) COUNT component.
    """
    components: list[AggregateSpec] = []
    outputs: list[_DirectOutput | _RatioOutput] = []
    shared_count: int | None = None
    for agg in aggregates:
        if agg.func in (AggFunc.COUNT, AggFunc.SUM):
            if agg.func is AggFunc.COUNT and shared_count is None:
                shared_count = len(components)
            outputs.append(_DirectOutput(agg.name, len(components)))
            components.append(agg)
            continue
        if agg.func is AggFunc.AVG:
            sum_component = len(components)
            components.append(
                AggregateSpec(
                    AggFunc.SUM, agg.column, alias=f"avg_sum_{agg.name}"
                )
            )
            if shared_count is None:
                shared_count = len(components)
                components.append(
                    AggregateSpec(AggFunc.COUNT, alias="avg_count")
                )
            outputs.append(
                _RatioOutput(agg.name, sum_component, shared_count)
            )
            continue
        raise RuntimePhaseError(
            f"approximate answering supports COUNT, SUM, and AVG, not "
            f"{agg.func.value} (run the exact executor instead)"
        )
    return components, outputs


def _execute_one_piece(
    item: tuple[
        SamplePiece,
        Query,
        PieceSkipStats,
        ExecutionOptions,
        Span,
        "ChunkSelectionPlan | None",
        "Deadline | None",
    ],
):
    """Aggregate one rewritten piece (the unit of work scattered to the
    worker pool).

    Pure function of its piece: it reads sample tables and the execution
    cache (both thread-safe) and mutates no shared engine state — the
    property lint rule RL007 enforces for everything submitted to the
    pool.  The skip-stats and span objects it fills in are freshly
    allocated per piece and owned by this task alone.  The selection
    plan (if any) was computed serially in the parent before the
    scatter, so the drawn chunk subset never depends on pool timing.

    The deadline (if any) is checked once at the head of the task: an
    expired request stops starting new pieces (serial backend: the
    remaining pieces never run; thread backend: queued tasks fail fast),
    and the raise propagates through the gather.  Reading the deadline
    is a pure, answer-neutral operation — a piece either runs
    identically to an unbounded run or raises.
    """
    piece, exec_query, stats, options, piece_span, plan, deadline = item
    if deadline is not None:
        deadline.check(f"piece {stats.description}")
    with piece_span:
        return aggregate_table(
            piece.table,
            exec_query,
            weights=piece.weights,
            scale=piece.scale,
            collect_variance_stats=not piece.zero_variance,
            variance_weights=piece.variance_weights,
            options=options,
            skip_stats=stats,
            span=piece_span,
            selection_plan=plan,
        )


@dataclass(frozen=True)
class _PiecePayload:
    """Picklable descriptor of one piece execution for the process pool.

    Carries shared-memory *handles* (not arrays) plus the few scalars
    the worker needs; the worker resolves the handles against the arena
    into zero-copy views (see :mod:`repro.engine.procpool`).
    """

    table: "TableHandle"
    query: Query
    scale: float
    weights: "ArrayHandle | None"
    variance_weights: "ArrayHandle | None"
    collect_variance: bool
    chunk_rows: int
    data_skipping: bool
    description: str
    #: Parent-computed budgeted chunk-selection plan (picklable: plain
    #: arrays and ints).  Shipped rather than recomputed because the
    #: worker's sketch store is empty — its scores would differ.
    selection_plan: "ChunkSelectionPlan | None"


def _execute_piece_remote(payload: _PiecePayload):
    """Process-pool sibling of :func:`_execute_one_piece`.

    Runs in a worker process: resolves the payload's handles into
    zero-copy views and aggregates serially (``executor="serial"`` — a
    worker never fans out again).  Returns the picklable triple
    ``(GroupedResult, PieceSkipStats, seconds)``; the parent copies the
    stats fields into its serially-registered skip report and stamps the
    per-piece span, so profiles keep one entry per piece under every
    backend.
    """
    from repro.engine import procpool

    table = procpool.resolve_table(payload.table)
    weights = (
        procpool.resolve_array(payload.weights)
        if payload.weights is not None
        else None
    )
    variance_weights = (
        procpool.resolve_array(payload.variance_weights)
        if payload.variance_weights is not None
        else None
    )
    stats = PieceSkipStats(
        description=payload.description, rows_total=table.n_rows
    )
    options = ExecutionOptions(
        chunk_rows=payload.chunk_rows,
        data_skipping=payload.data_skipping,
        executor="serial",
    )
    started = time.perf_counter()
    result = aggregate_table(
        table,
        payload.query,
        weights=weights,
        scale=payload.scale,
        collect_variance_stats=payload.collect_variance,
        variance_weights=variance_weights,
        options=options,
        skip_stats=stats,
        selection_plan=payload.selection_plan,
    )
    return result, stats, time.perf_counter() - started


def _piece_payload_columns(piece: SamplePiece, exec_query: Query) -> list[str]:
    """The stored columns a piece task actually reads — group-by,
    aggregate inputs, and WHERE columns — in the table's column order so
    the handle (and the worker-side table it caches under) is identical
    across calls.  Falls back to the first column for ``COUNT(*)``-only
    queries (a table needs at least one column to know its row count)."""
    needed = set(exec_query.group_by)
    needed.update(a.column for a in exec_query.aggregates if a.column)
    if exec_query.where is not None:
        needed.update(exec_query.where.columns())
    columns = [c for c in piece.table.column_names if c in needed]
    return columns or [piece.table.column_names[0]]


def _scatter_pieces_to_processes(
    submitted: list,
    options: ExecutionOptions,
    span: Span,
) -> list[GroupedResult]:
    """Publish each piece's columns to the arena and scatter descriptors
    across the process pool; results come back in submission order."""
    from repro.engine import procpool

    arena = procpool.get_arena()
    payloads = []
    for _idx, (
        piece,
        exec_query,
        stats,
        _options,
        _span,
        plan,
        _deadline,
    ) in submitted:
        payloads.append(
            _PiecePayload(
                table=arena.publish_table(
                    piece.table, _piece_payload_columns(piece, exec_query)
                ),
                query=exec_query,
                scale=piece.scale,
                weights=(
                    arena.publish_array(piece.weights)
                    if piece.weights is not None
                    else None
                ),
                variance_weights=(
                    arena.publish_array(piece.variance_weights)
                    if piece.variance_weights is not None
                    else None
                ),
                collect_variance=not piece.zero_variance,
                chunk_rows=options.chunk_rows,
                data_skipping=options.data_skipping,
                description=stats.description,
                selection_plan=plan,
            )
        )
    gathered = procpool.process_map(
        _execute_piece_remote, payloads, options, span=span
    )
    results = []
    for (
        _idx,
        (_piece, _query, stats, _options, piece_span, _plan, _deadline),
    ), (
        result,
        remote_stats,
        seconds,
    ) in zip(submitted, gathered):
        for name in (
            "n_chunks",
            "chunks_skipped",
            "chunks_accepted",
            "chunks_scanned",
            "rows_touched",
            "mask_cached",
            "sketch_hit",
            "appended_unknown",
            "selection_applied",
            "chunks_eligible",
            "chunks_selected",
            "ht_weight_min",
            "ht_weight_max",
        ):
            setattr(stats, name, getattr(remote_stats, name))
        piece_span.seconds = seconds
        piece_span.annotate(backend="process")
        results.append(result)
    return results


def execute_pieces(
    pieces: list[SamplePiece],
    technique: str,
    emit_sql: bool = True,
    options: ExecutionOptions | None = None,
    span: Span = NULL_SPAN,
    deadline: Deadline | None = None,
) -> ApproxAnswer:
    """Execute rewritten pieces and combine them into an answer.

    The pieces are independent strata (the paper's UNION ALL branches),
    so they scatter across the shared worker pool when
    ``options.max_workers > 1``.  The gather is by piece index: partial
    per-group results are folded in the original piece order regardless
    of completion order, so the floating-point accumulation associates
    exactly as in the serial loop and the answer is byte-identical for
    any worker count.

    ``span`` (when profiling) gains one ``piece:*`` child per piece —
    created serially before the scatter and written only by the task
    that owns it (the RL007 purity discipline) — plus a ``combine``
    child; the span tree rides on the answer as ``ApproxAnswer.trace``.
    Spans are write-only in this layer (RL009), so answers are
    byte-identical with profiling on or off.

    ``deadline`` (if any) is enforced at piece granularity: checked in
    the serial pre-scatter loop, at the head of every piece task on the
    serial/thread backends, in the parent before a process scatter, and
    before the combine.  An expired deadline raises
    :class:`~repro.errors.DeadlineExceeded`; there are no partial
    answers, so determinism guarantees are unaffected.
    """
    if not pieces:
        raise RuntimePhaseError("rewritten query has no pieces")
    aggregates = pieces[0].query.aggregates
    for piece in pieces[1:]:
        if tuple(a.name for a in piece.query.aggregates) != tuple(
            a.name for a in aggregates
        ):
            raise RuntimePhaseError("pieces compute different aggregates")
    components, outputs = _plan_components(aggregates)
    component_names = tuple(c.name for c in components)

    # The queries that actually run carry the additive components — this
    # is also what the emitted rewritten SQL shows.
    exec_pieces: list[tuple[SamplePiece, Query]] = []
    for piece in pieces:
        exec_query = Query(
            piece.query.table,
            tuple(components),
            piece.query.group_by,
            piece.query.where,
        )
        exec_pieces.append((piece, exec_query))

    values: dict[GroupKey, list[float]] = {}
    variances: dict[GroupKey, list[float]] = {}
    crosses: dict[GroupKey, dict[int, float]] = {}
    all_exact: dict[GroupKey, bool] = {}
    rows_scanned = 0
    n_components = len(components)
    ratio_sum_components = [
        o.sum_component for o in outputs if isinstance(o, _RatioOutput)
    ]

    options = resolve_options(options)

    # Piece pruning: a piece whose every chunk refutes the WHERE would
    # aggregate an all-false mask into zero groups — substitute that
    # empty partial outright and never submit the piece to the pool.
    # ``rows_scanned`` still counts the piece's rows (the §4.2.2 cost
    # model charges for what is *stored* in the plan, and the answer
    # must be byte-identical with skipping off); the saved work shows up
    # as ``rows_touched`` in the skip report instead.
    skip_report = SkipReport(enabled=options.data_skipping)
    span.annotate(pieces=len(exec_pieces))
    # Budgeted chunk-selection plans are drawn here, serially and in
    # piece-index order, for every backend: a plan drawn inside a pool
    # task would see whatever sketch history concurrent siblings had
    # already recorded, making the chunk draw depend on scheduling.  The
    # pieces then run with ``chunk_selection`` off so no task re-plans.
    piece_options = options
    if options.chunk_selection:
        piece_options = replace(options, chunk_selection=False)
    piece_results: list[GroupedResult | None] = [None] * len(exec_pieces)
    submitted: list[tuple[int, tuple[SamplePiece, Query, PieceSkipStats, ExecutionOptions, Span, ChunkSelectionPlan | None, Deadline | None]]] = []
    for idx, (piece, exec_query) in enumerate(exec_pieces):
        if deadline is not None:
            deadline.check("piece planning")
        description = piece.description or piece.table.name
        stats = PieceSkipStats(
            description=description,
            rows_total=piece.table.n_rows,
        )
        skip_report.pieces.append(stats)
        # Per-piece spans are created serially here, before the scatter,
        # so each pool task mutates only the one span it owns (RL007).
        piece_span = span.child(f"piece:{description}")
        if (
            options.data_skipping
            and exec_query.where is not None
            and predicate_always_false(piece.table, exec_query.where, options)
        ):
            stats.pruned = True
            piece_span.annotate(pruned=True, rows=piece.table.n_rows)
            piece_results[idx] = GroupedResult(
                group_columns=exec_query.group_by,
                aggregate_names=component_names,
                rows={},
            )
            continue
        plan = None
        if options.chunk_selection and not piece.zero_variance:
            plan = plan_chunk_selection(piece.table, exec_query.where, options)
        submitted.append(
            (
                idx,
                (
                    piece,
                    exec_query,
                    stats,
                    piece_options,
                    piece_span,
                    plan,
                    deadline,
                ),
            )
        )
    use_processes = options.uses_processes and len(submitted) > 1
    if use_processes:
        from repro.engine import procpool

        use_processes = not procpool.in_worker()
    if use_processes:
        # Process workers never see the deadline (their clocks race the
        # parent's by scheduling delays); the parent checks around the
        # scatter instead.
        if deadline is not None:
            deadline.check("process scatter")
        gathered = _scatter_pieces_to_processes(submitted, options, span)
    else:
        gathered = parallel_map(
            _execute_one_piece,
            [item for _, item in submitted],
            options.workers,
            span=span,
        )
    for (idx, _), result in zip(submitted, gathered):
        piece_results[idx] = result
    registry = get_registry()
    registry.incr("combiner.pieces_executed", len(submitted))
    registry.incr("combiner.pieces_pruned", len(exec_pieces) - len(submitted))
    if deadline is not None:
        deadline.check("combine")
    combine_started = time.perf_counter()

    # Deterministic combine: fold partials in piece-index order.
    for (piece, exec_query), result in zip(exec_pieces, piece_results):
        rows_scanned += piece.table.n_rows
        for group, row in result.rows.items():
            if group not in values:
                values[group] = [0.0] * n_components
                variances[group] = [0.0] * n_components
                crosses[group] = {c: 0.0 for c in ratio_sum_components}
                all_exact[group] = True
            for i, value in enumerate(row):
                values[group][i] += value
            if not piece.marks_exact:
                all_exact[group] = False
            if piece.zero_variance:
                continue
            for i, name in enumerate(component_names):
                per_group = result.sum_squares.get(name)
                if per_group is not None:
                    variances[group][i] += per_group.get(group, 0.0)
            for c in ratio_sum_components:
                per_group = result.sum_cross.get(component_names[c])
                if per_group is not None:
                    crosses[group][c] += per_group.get(group, 0.0)

    groups: dict[GroupKey, tuple[GroupEstimate, ...]] = {}
    for group in values:  # noqa: B007 - populated below
        estimates = []
        for output in outputs:
            if isinstance(output, _DirectOutput):
                estimates.append(
                    GroupEstimate(
                        value=values[group][output.component],
                        variance=variances[group][output.component],
                        exact=all_exact[group],
                    )
                )
                continue
            total = values[group][output.sum_component]
            count = values[group][output.count_component]
            if count <= 0:
                estimates.append(
                    GroupEstimate(value=float("nan"), variance=0.0)
                )
                continue
            ratio = total / count
            var_sum = variances[group][output.sum_component]
            var_count = variances[group][output.count_component]
            cov = crosses[group][output.sum_component]
            variance = max(
                0.0,
                (var_sum - 2.0 * ratio * cov + ratio * ratio * var_count)
                / (count * count),
            )
            estimates.append(
                GroupEstimate(
                    value=ratio, variance=variance, exact=all_exact[group]
                )
            )
        groups[group] = tuple(estimates)

    combine_span = span.child("combine")
    combine_span.seconds = time.perf_counter() - combine_started
    combine_span.annotate(groups=len(groups))

    agg_names = tuple(a.name for a in aggregates)
    base_query = pieces[0].query
    if base_query.having:
        groups = {
            g: ests
            for g, ests in groups.items()
            if base_query.evaluate_having(tuple(e.value for e in ests))
        }
    top_k_confident: bool | None = None
    if base_query.order_by or base_query.limit is not None:
        groups, top_k_confident = _order_and_limit(
            groups, base_query, agg_names
        )

    return ApproxAnswer(
        group_columns=pieces[0].query.group_by,
        aggregate_names=agg_names,
        groups=groups,
        technique=technique,
        top_k_confident=top_k_confident,
        rows_scanned=rows_scanned,
        skip_report=skip_report,
        trace=None if span is NULL_SPAN else span,
        pieces=tuple(p.description or p.table.name for p in pieces),
        rewritten_sql=(
            pieces_to_sql(
                [
                    SamplePiece(
                        table=piece.table,
                        query=exec_query,
                        scale=piece.scale,
                        description=piece.description,
                    )
                    for piece, exec_query in exec_pieces
                ]
            )
            if emit_sql
            else None
        ),
    )
