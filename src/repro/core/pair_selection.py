"""Choosing pair columns for joint small group tables (§4.2.3).

"As an alternative to using single-column group-by queries, one could
generate small group tables based on selected group-by queries over
pairs of columns ... The number of pairs of columns for an m-column
database is m(m−1)/2, however, so some judgment would have to be
exercised in selecting a small subset of pairs when m is large."

This module supplies that judgment: a pair is worth a table when many
rows have a *rare combination* of two individually-*common* values —
rows the single-column tables cannot cover.  :func:`suggest_pair_columns`
scores every candidate pair by that incremental coverage and returns the
best few.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.engine.column import ColumnKind
from repro.engine.executor import dense_ids
from repro.engine.stats import collect_column_stats
from repro.engine.table import Table
from repro.errors import PreprocessingError


@dataclass(frozen=True)
class PairSuggestion:
    """One scored pair-column candidate.

    Attributes
    ----------
    columns:
        The column pair.
    benefit_rows:
        Rows whose joint value is rare but whose individual values are
        both common — coverage only a pair table provides.
    table_rows:
        Rows a pair table for this pair would store (its cost).
    """

    columns: tuple[str, str]
    benefit_rows: int
    table_rows: int


def _uncommon_mask(view: Table, column: str, common: set) -> np.ndarray:
    col = view.column(column)
    dictionary = col.dictionary or ()
    by_code = np.asarray([v not in common for v in dictionary])
    if len(dictionary) == 0:
        return np.zeros(view.n_rows, dtype=bool)
    return by_code[col.data]


def _pair_uncommon_mask(
    view: Table, a: str, b: str, small_fraction: float
) -> np.ndarray:
    ids, n_groups = dense_ids(
        [view.column(a).data, view.column(b).data]
    )
    counts = np.bincount(ids, minlength=n_groups)
    order = np.argsort(-counts, kind="stable")
    covered = np.cumsum(counts[order])
    target = view.n_rows * (1.0 - small_fraction)
    n_common = int(np.searchsorted(covered, target - 1e-9)) + 1
    is_common = np.zeros(n_groups, dtype=bool)
    is_common[order[:n_common]] = True
    return ~is_common[ids]


def suggest_pair_columns(
    view: Table,
    small_fraction: float,
    candidates: list[str] | None = None,
    max_pairs: int = 5,
    max_candidate_columns: int = 15,
    distinct_threshold: int = 5000,
) -> list[PairSuggestion]:
    """Rank column pairs by the coverage only a pair table provides.

    Parameters
    ----------
    view:
        The (joined) database view.
    small_fraction:
        The ``t`` the small group tables are built with
        (``SmallGroupConfig.small_fraction``).
    candidates:
        Columns to consider (default: every retained categorical column).
    max_pairs:
        Number of suggestions to return.
    max_candidate_columns:
        Guard on the quadratic pair enumeration — the highest-cardinality
        categorical columns are kept (rare combinations need domain room).
    distinct_threshold:
        Same τ cutoff as the first pre-processing scan.

    Returns suggestions sorted by descending ``benefit_rows``; pairs with
    no incremental benefit are omitted.
    """
    if not 0.0 < small_fraction < 1.0:
        raise PreprocessingError(
            f"small fraction must be in (0, 1), got {small_fraction}"
        )
    if candidates is None:
        candidates = [
            c
            for c in view.column_names
            if view.column(c).kind is ColumnKind.STRING
        ]
    stats = collect_column_stats(view, candidates, distinct_threshold)
    retained = [c for c in candidates if c in stats]
    if len(retained) > max_candidate_columns:
        retained = sorted(
            retained, key=lambda c: -stats[c].distinct_count
        )[:max_candidate_columns]
    single_uncommon = {
        c: _uncommon_mask(
            view, c, stats[c].common_values(small_fraction)
        )
        for c in retained
    }
    suggestions = []
    for a, b in combinations(retained, 2):
        pair_mask = _pair_uncommon_mask(view, a, b, small_fraction)
        benefit = pair_mask & ~single_uncommon[a] & ~single_uncommon[b]
        benefit_rows = int(benefit.sum())
        if benefit_rows == 0:
            continue
        suggestions.append(
            PairSuggestion(
                columns=(a, b),
                benefit_rows=benefit_rows,
                table_rows=int(pair_mask.sum()),
            )
        )
    suggestions.sort(key=lambda s: (-s.benefit_rows, s.table_rows, s.columns))
    return suggestions[:max_pairs]
