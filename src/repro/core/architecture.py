"""The generic dynamic sample selection architecture (Section 3).

Pre-processing (the paper's Figure 1) runs in two steps: examine the data
distribution (and optionally a workload) to *select strata*, then *build
samples* — one or more biased sample tables plus metadata describing them.
At runtime (Figure 2), each incoming query is compared against the
metadata to *choose samples*, rewritten to run against them, and the
partial results are combined into one approximate answer.

:class:`DynamicSampleSelection` encodes that pipeline; concrete policies
(small group sampling, and the baselines re-expressed as trivial
single-sample policies) override the three hook methods.
"""

from __future__ import annotations

import abc
import time

from repro.core.answer import ApproxAnswer
from repro.core.combiner import execute_pieces
from repro.core.interfaces import (
    AQPTechnique,
    PreprocessReport,
    SampleTableInfo,
)
from repro.core.rewriter import SamplePiece
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.engine.table import Table


class DynamicSampleSelection(AQPTechnique):
    """Template for techniques following the dynamic-selection pipeline."""

    def __init__(self) -> None:
        super().__init__()
        self._infos: list[SampleTableInfo] = []

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def select_strata(self, db: Database, view: Table) -> object:
        """Step 1 of pre-processing: examine the data, pick the strata.

        Returns an arbitrary stratification description consumed by
        :meth:`build_samples`.
        """

    @abc.abstractmethod
    def build_samples(
        self, db: Database, view: Table, strata: object
    ) -> list[SampleTableInfo]:
        """Step 2 of pre-processing: build sample tables + metadata."""

    @abc.abstractmethod
    def choose_samples(self, query: Query) -> list[SamplePiece]:
        """Runtime phase: choose samples and rewrite the query."""

    def preprocess_details(self) -> dict:
        """Extra per-technique fields for the preprocess report."""
        return {}

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def preprocess(self, db: Database) -> PreprocessReport:
        """Run both pre-processing steps and report their cost."""
        start = time.perf_counter()
        view = db.joined_view()
        strata = self.select_strata(db, view)
        self._infos = self.build_samples(db, view, strata)
        self._preprocessed = True
        elapsed = time.perf_counter() - start
        return self._report(db, elapsed, details=self.preprocess_details())

    def answer(self, query: Query) -> ApproxAnswer:
        """Choose samples, execute the rewritten pieces, combine.

        Techniques carrying :class:`ExecutionOptions` (e.g. small-group
        sampling's ``options``) forward them to the piece executor;
        otherwise the process-wide defaults apply.
        """
        self.require_preprocessed()
        pieces = self.choose_samples(query)
        return execute_pieces(
            pieces,
            technique=self.name,
            options=getattr(self, "options", None),
        )

    def sample_tables(self) -> list[SampleTableInfo]:
        """All sample tables built during pre-processing."""
        return list(self._infos)
