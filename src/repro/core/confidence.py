"""Confidence intervals for sampled estimates.

The paper reports confidence intervals alongside approximate answers
(Section 4.2.2), noting that small group sampling makes them simple: the
only source of error is the single uniformly-sampled stratum, so standard
methods apply — a normal approximation for the general case and the
Agresti–Coull interval [5] for binomial proportions (COUNT of a subset).
"""

from __future__ import annotations

import math

from scipy import stats as _scipy_stats

from repro.errors import RuntimePhaseError


def z_value(level: float) -> float:
    """Two-sided standard-normal critical value for a confidence level."""
    if not 0.0 < level < 1.0:
        raise RuntimePhaseError(
            f"confidence level must be in (0, 1), got {level}"
        )
    return float(_scipy_stats.norm.ppf(0.5 + level / 2.0))


def normal_interval(
    estimate: float, variance: float, level: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation interval ``estimate ± z·sqrt(variance)``."""
    if variance < 0:
        raise RuntimePhaseError(f"variance must be >= 0, got {variance}")
    half = z_value(level) * math.sqrt(variance)
    return (estimate - half, estimate + half)


def bernoulli_count_variance(
    sample_rows_in_group: int, rate: float
) -> float:
    """Variance of a scaled COUNT estimate from a rate-``p`` sample.

    A group with ``S`` sample rows is estimated as ``S / p``; under
    Bernoulli sampling ``Var(S/p) ≈ S (1 - p) / p²`` (plugging the observed
    ``S`` in for its expectation, as in Theorem 4.1's derivation).
    """
    if not 0.0 < rate <= 1.0:
        raise RuntimePhaseError(f"sampling rate must be in (0, 1], got {rate}")
    return sample_rows_in_group * (1.0 - rate) / (rate * rate)


def agresti_coull_interval(
    successes: int, trials: int, level: float = 0.95
) -> tuple[float, float]:
    """Agresti–Coull interval for a binomial proportion [5].

    Used to bound the fraction of rows satisfying a predicate when a COUNT
    estimate is expressed as ``N × proportion``.
    """
    if trials <= 0:
        raise RuntimePhaseError("trials must be positive")
    if not 0 <= successes <= trials:
        raise RuntimePhaseError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    z = z_value(level)
    n_adj = trials + z * z
    p_adj = (successes + z * z / 2.0) / n_adj
    half = z * math.sqrt(p_adj * (1.0 - p_adj) / n_adj)
    return (max(0.0, p_adj - half), min(1.0, p_adj + half))
