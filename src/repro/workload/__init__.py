"""Random query workloads per the paper's Section 5.2.3."""

from repro.workload.generator import eligible_grouping_columns, generate_workload
from repro.workload.spec import Workload, WorkloadConfig, WorkloadQuery

__all__ = [
    "Workload",
    "WorkloadConfig",
    "WorkloadQuery",
    "eligible_grouping_columns",
    "generate_workload",
]
