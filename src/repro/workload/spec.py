"""Workload specification dataclasses (Section 5.2.3)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import Query
from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the paper's random query workload.

    The paper generates random select-project-join queries with group-bys
    and COUNT/SUM aggregates: 1–4 grouping columns, 1–2 IN-subset selection
    predicates with subset fraction between 0.05 and 0.3 of the column's
    distinct values, 20 queries per parameter combination.

    Attributes
    ----------
    group_column_counts:
        Numbers of grouping columns to sweep.
    predicate_counts:
        Numbers of selection predicates to sweep.
    subset_fractions:
        Fractions of a predicate column's distinct values placed in the
        IN list.
    aggregate:
        ``"COUNT"`` or ``"SUM"``.
    queries_per_combo:
        Queries generated per (g, #predicates, fraction) combination.
    measure_columns:
        Numeric columns eligible for SUM (required when aggregate="SUM").
    exclude_columns:
        Columns never used for grouping or predicates (keys, free text).
    max_grouping_distinct:
        Columns with more distinct values than this are excluded (the
        paper excludes near-unique columns such as customer address).
    seed:
        RNG seed; workloads are fully reproducible.
    """

    group_column_counts: tuple[int, ...] = (1, 2, 3, 4)
    predicate_counts: tuple[int, ...] = (1, 2)
    subset_fractions: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3)
    aggregate: str = "COUNT"
    queries_per_combo: int = 20
    measure_columns: tuple[str, ...] = ()
    exclude_columns: tuple[str, ...] = ()
    max_grouping_distinct: int = 5000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.aggregate not in ("COUNT", "SUM"):
            raise WorkloadError(
                f"aggregate must be COUNT or SUM, got {self.aggregate!r}"
            )
        if self.aggregate == "SUM" and not self.measure_columns:
            raise WorkloadError("SUM workloads require measure_columns")
        for fraction in self.subset_fractions:
            if not 0.0 < fraction <= 1.0:
                raise WorkloadError(
                    f"subset fraction must be in (0, 1], got {fraction}"
                )
        if self.queries_per_combo <= 0:
            raise WorkloadError("queries_per_combo must be positive")


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query plus the sweep parameters that produced it.

    The experiment harness bins metrics by these parameters (e.g. RelErr
    as a function of the number of grouping columns).
    """

    query: Query
    n_group_columns: int
    n_predicates: int
    subset_fraction: float
    aggregate: str
    index: int = 0


@dataclass(frozen=True)
class Workload:
    """A generated workload: queries plus the config that produced them."""

    config: WorkloadConfig
    queries: tuple[WorkloadQuery, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.queries)

    def by_group_columns(self, g: int) -> list[WorkloadQuery]:
        """Queries with exactly ``g`` grouping columns."""
        return [q for q in self.queries if q.n_group_columns == g]
