"""Random query workload generation (Section 5.2.3).

Grouping columns are chosen uniformly at random from the categorical
columns of the (joined) database, excluding near-unique columns; selection
predicates restrict a randomly chosen column to a random subset of its
distinct values, the subset sized between 0.05 and 0.3 of the domain; SUM
queries aggregate a randomly chosen measure column.  Twenty queries are
generated per parameter combination by default, matching the paper.
"""

from __future__ import annotations

import numpy as np

from repro.engine.column import ColumnKind
from repro.engine.database import Database
from repro.engine.expressions import (
    AggFunc,
    AggregateSpec,
    InSet,
    Query,
    conjoin,
)
from repro.engine.reservoir import as_generator
from repro.engine.table import Table
from repro.errors import WorkloadError
from repro.workload.spec import Workload, WorkloadConfig, WorkloadQuery


def eligible_grouping_columns(
    view: Table, config: WorkloadConfig
) -> list[str]:
    """Categorical columns usable for grouping and predicates.

    Excludes configured columns and columns whose distinct count exceeds
    ``config.max_grouping_distinct`` (near-unique columns).
    """
    excluded = set(config.exclude_columns)
    out = []
    for name in view.column_names:
        if name in excluded:
            continue
        col = view.column(name)
        if col.kind is not ColumnKind.STRING:
            continue
        if col.distinct_count() > config.max_grouping_distinct:
            continue
        out.append(name)
    return out


def generate_workload(db: Database, config: WorkloadConfig) -> Workload:
    """Generate a workload against ``db`` following the paper's recipe."""
    view = db.joined_view()
    columns = eligible_grouping_columns(view, config)
    max_g = max(config.group_column_counts)
    if len(columns) < max_g + max(config.predicate_counts):
        raise WorkloadError(
            f"database exposes only {len(columns)} eligible columns; "
            f"cannot generate queries with {max_g} grouping columns"
        )
    domains = {
        name: sorted(view.column(name).value_counts()) for name in columns
    }
    rng = as_generator(config.seed)
    fact_name = db.fact_table.name
    queries: list[WorkloadQuery] = []
    index = 0
    for g in config.group_column_counts:
        for n_predicates in config.predicate_counts:
            for fraction in config.subset_fractions:
                for _ in range(config.queries_per_combo):
                    queries.append(
                        _generate_one(
                            rng,
                            fact_name,
                            columns,
                            domains,
                            config,
                            g,
                            n_predicates,
                            fraction,
                            index,
                        )
                    )
                    index += 1
    return Workload(config=config, queries=tuple(queries))


def _generate_one(
    rng: np.random.Generator,
    fact_name: str,
    columns: list[str],
    domains: dict[str, list],
    config: WorkloadConfig,
    g: int,
    n_predicates: int,
    fraction: float,
    index: int,
) -> WorkloadQuery:
    chosen = rng.choice(len(columns), size=g + n_predicates, replace=False)
    group_by = tuple(columns[i] for i in chosen[:g])
    predicates = []
    for i in chosen[g:]:
        column = columns[i]
        domain = domains[column]
        subset_size = max(1, round(fraction * len(domain)))
        picked = rng.choice(len(domain), size=min(subset_size, len(domain)), replace=False)
        values = tuple(domain[j] for j in sorted(picked))
        predicates.append(InSet(column, values))
    if config.aggregate == "COUNT":
        aggregates = (AggregateSpec(AggFunc.COUNT, alias="cnt"),)
    else:
        measure = config.measure_columns[
            int(rng.integers(0, len(config.measure_columns)))
        ]
        aggregates = (AggregateSpec(AggFunc.SUM, measure, alias="total"),)
    query = Query(fact_name, aggregates, group_by, conjoin(predicates))
    return WorkloadQuery(
        query=query,
        n_group_columns=g,
        n_predicates=n_predicates,
        subset_fraction=fraction,
        aggregate=config.aggregate,
        index=index,
    )
