"""Analytical model of small group sampling (Section 4.4, Theorem 4.1).

For COUNT queries over an idealised database whose grouping attributes are
independent truncated-Zipf(z, c) variables, with Bernoulli sampling and a
selectivity-σ predicate that keeps each tuple independently, Theorem 4.1
gives the expected average squared relative error:

* uniform sampling with expected sample size ``s`` (Equation 1)::

      Eu = (1 / (s·n)) · Σ_i (1 − p_i) / p_i

* small group sampling whose overall sample has expected size ``s0``
  (Equation 2) — only groups all of whose grouping values are *common*
  (inside ``L(C)``) contribute error; small groups are exact::

      Esg = (1 / (s0·n)) · Σ_{i common} (1 − p_i) / p_i

Because the group cells are the cross product of independent per-column
Zipf values, both sums factor into per-column sums, so the model is
evaluated in closed form — no enumeration of the ``c^g`` cells.

The comparison holds total *runtime* sample space fixed: a query with
``g`` grouping columns under small group sampling touches
``s0 · (1 + g·γ)`` rows (overall sample plus ``g`` small group tables of
at most ``γ·s0`` rows), so against a budget of ``s`` rows the overall
sample shrinks to ``s0 = s / (1 + g·γ)``.  Uniform sampling is the
``γ = 0`` special case — exactly how Figure 3(a) plots it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datagen.zipf import ZipfDistribution
from repro.errors import ExperimentError


@dataclass(frozen=True)
class AnalysisScenario:
    """One query/data scenario for the analytical model.

    Attributes
    ----------
    n_group_columns:
        Number of grouping columns ``g``.
    selectivity:
        Predicate selectivity ``σ`` (each tuple kept independently).
    n_distinct:
        Distinct values per attribute ``c``.
    z:
        Zipf skew parameter.
    database_rows:
        Database size ``N``.
    budget_fraction:
        Total runtime sample budget as a fraction of ``N``.
    """

    n_group_columns: int = 2
    selectivity: float = 0.1
    n_distinct: int = 50
    z: float = 1.8
    database_rows: int = 1_000_000
    # The paper does not state N or s; 2% of 1M reproduces Figure 3(a)'s
    # shape (shallow basin over γ ∈ [0.25, 1.0], minimum near 0.5).
    budget_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.n_group_columns < 1:
            raise ExperimentError("need at least one grouping column")
        if not 0.0 < self.selectivity <= 1.0:
            raise ExperimentError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ExperimentError(
                f"budget fraction must be in (0, 1], got {self.budget_fraction}"
            )

    @property
    def budget_rows(self) -> float:
        """Total runtime sample budget ``s`` in rows."""
        return self.budget_fraction * self.database_rows


def expected_sq_rel_err_uniform(
    scenario: AnalysisScenario, sample_rows: float | None = None
) -> float:
    """Equation 1: expected SqRelErr of uniform sampling.

    ``sample_rows`` defaults to the scenario's full budget.
    """
    s = scenario.budget_rows if sample_rows is None else sample_rows
    if s <= 0:
        raise ExperimentError("sample size must be positive")
    dist = ZipfDistribution(scenario.n_distinct, scenario.z)
    g = scenario.n_group_columns
    n_groups = float(scenario.n_distinct) ** g
    # Σ_i 1/p_i factors: p_i = σ · Π_C f(rank_C), so
    # Σ_i 1/p_i = (1/σ) · (Σ_j 1/f_j)^g; then Σ (1-p)/p = Σ 1/p − n.
    inv_sum = float(np.sum(1.0 / dist.pmf))
    total = inv_sum**g / scenario.selectivity - n_groups
    return total / (s * n_groups)


def expected_sq_rel_err_small_group(
    scenario: AnalysisScenario, allocation_ratio: float
) -> float:
    """Equation 2 under the fixed runtime budget.

    ``allocation_ratio`` is ``γ = t/r``; 0 reduces to Equation 1.
    """
    if allocation_ratio < 0:
        raise ExperimentError("allocation ratio must be >= 0")
    g = scenario.n_group_columns
    s = scenario.budget_rows
    s0 = s / (1.0 + g * allocation_ratio)
    if allocation_ratio == 0:
        return expected_sq_rel_err_uniform(scenario, s0)
    dist = ZipfDistribution(scenario.n_distinct, scenario.z)
    # Small group fraction t = γ·r where r = s0/N.
    t = min(1.0, allocation_ratio * s0 / scenario.database_rows)
    n_common = dist.common_rank_count(t)
    n_groups = float(scenario.n_distinct) ** g
    inv_sum_common = float(np.sum(1.0 / dist.pmf[:n_common]))
    common_cells = float(n_common) ** g
    total = inv_sum_common**g / scenario.selectivity - common_cells
    return max(0.0, total) / (s0 * n_groups)


def figure_3a_series(
    scenario: AnalysisScenario | None = None,
    allocation_ratios: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Figure 3(a): SqRelErr vs sampling allocation ratio.

    Returns ``(ratios, small_group_errors, uniform_error)``; the uniform
    error is the γ = 0 value, drawn as a flat reference line in the paper.
    Defaults reproduce the paper's setting: g=2, σ=0.1, c=50, z=1.8.
    """
    scenario = scenario or AnalysisScenario()
    if allocation_ratios is None:
        allocation_ratios = np.linspace(0.0, 2.0, 41)
    errors = np.array(
        [
            expected_sq_rel_err_small_group(scenario, float(gamma))
            for gamma in allocation_ratios
        ]
    )
    uniform = expected_sq_rel_err_uniform(scenario)
    return allocation_ratios, errors, uniform


def figure_3b_series(
    scenario: AnalysisScenario | None = None,
    skews: np.ndarray | None = None,
    allocation_ratio: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 3(b): SqRelErr vs skew for both strategies.

    Returns ``(skews, small_group_errors, uniform_errors)``.  Defaults
    reproduce the paper's setting: g=3, σ=0.3, c=50, γ=0.5.
    """
    scenario = scenario or AnalysisScenario(
        n_group_columns=3, selectivity=0.3, n_distinct=50
    )
    if skews is None:
        skews = np.linspace(1.0, 2.5, 16)
    small = []
    uniform = []
    for z in skews:
        sz = replace(scenario, z=float(z))
        small.append(expected_sq_rel_err_small_group(sz, allocation_ratio))
        uniform.append(expected_sq_rel_err_uniform(sz))
    return skews, np.array(small), np.array(uniform)


def optimal_allocation_ratio(
    scenario: AnalysisScenario | None = None,
    allocation_ratios: np.ndarray | None = None,
) -> float:
    """The γ minimising the model's SqRelErr (the paper reports ≈0.5)."""
    ratios, errors, _ = figure_3a_series(scenario, allocation_ratios)
    return float(ratios[int(np.argmin(errors))])
