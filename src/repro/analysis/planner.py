"""Model-driven parameter planning.

The analytical model (Theorem 4.1) predicts the expected SqRelErr of
small group sampling from the data's skew and the space budget.  Turned
around, it answers the operator's questions:

* *How much runtime sample space do I need for a target error?*
  (:func:`plan_budget`)
* *Given my budget, what allocation ratio should I use?*
  (:func:`plan_allocation_ratio` — the per-scenario version of the
  paper's global "γ = 0.5 works well" recommendation)

All answers are model-based, i.e. exactly as idealised as Section 4.4;
they are starting points, not guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.model import (
    AnalysisScenario,
    expected_sq_rel_err_small_group,
)
from repro.errors import ExperimentError


@dataclass(frozen=True)
class Plan:
    """A recommended small-group-sampling parameterisation.

    Attributes
    ----------
    budget_fraction:
        Total runtime sample budget as a fraction of the database.
    allocation_ratio:
        The γ to configure.
    base_rate:
        The implied overall-sample rate ``budget / (1 + g·γ)``.
    predicted_sq_rel_err:
        The model's expected SqRelErr at these parameters.
    """

    budget_fraction: float
    allocation_ratio: float
    base_rate: float
    predicted_sq_rel_err: float


def plan_allocation_ratio(
    scenario: AnalysisScenario,
    ratios: np.ndarray | None = None,
) -> Plan:
    """The γ minimising the model's error at the scenario's budget."""
    if ratios is None:
        ratios = np.linspace(0.0, 2.0, 41)
    best_gamma = 0.0
    best_error = float("inf")
    for gamma in ratios:
        error = expected_sq_rel_err_small_group(scenario, float(gamma))
        if error < best_error:
            best_error = error
            best_gamma = float(gamma)
    g = scenario.n_group_columns
    return Plan(
        budget_fraction=scenario.budget_fraction,
        allocation_ratio=best_gamma,
        base_rate=scenario.budget_fraction / (1.0 + g * best_gamma),
        predicted_sq_rel_err=best_error,
    )


def plan_budget(
    scenario: AnalysisScenario,
    target_sq_rel_err: float,
    max_budget_fraction: float = 0.5,
    tolerance: float = 1e-4,
) -> Plan:
    """Smallest budget whose best-γ error meets ``target_sq_rel_err``.

    Bisects on the budget fraction, optimising γ at each probe.  Raises
    if even ``max_budget_fraction`` cannot reach the target under the
    model.
    """
    if target_sq_rel_err <= 0:
        raise ExperimentError("target error must be positive")
    if not 0 < max_budget_fraction <= 1:
        raise ExperimentError("max budget fraction must be in (0, 1]")

    def best_error_at(budget: float) -> Plan:
        probe = replace(scenario, budget_fraction=budget)
        return plan_allocation_ratio(probe)

    ceiling = best_error_at(max_budget_fraction)
    if ceiling.predicted_sq_rel_err > target_sq_rel_err:
        raise ExperimentError(
            f"even a {max_budget_fraction:.0%} budget only reaches "
            f"SqRelErr {ceiling.predicted_sq_rel_err:.3g} "
            f"(target {target_sq_rel_err:.3g}) under the model"
        )
    low = 1e-6
    high = max_budget_fraction
    best = ceiling
    while high - low > tolerance:
        mid = (low + high) / 2.0
        plan = best_error_at(mid)
        if plan.predicted_sq_rel_err <= target_sq_rel_err:
            best = plan
            high = mid
        else:
            low = mid
    return best
