"""Analytical model of Theorem 4.1 and the Figure 3 studies."""

from repro.analysis.model import (
    AnalysisScenario,
    expected_sq_rel_err_small_group,
    expected_sq_rel_err_uniform,
    figure_3a_series,
    figure_3b_series,
    optimal_allocation_ratio,
)
from repro.analysis.planner import Plan, plan_allocation_ratio, plan_budget
from repro.analysis.simulation import (
    SimulationResult,
    simulate_small_group_sq_rel_err,
    simulate_uniform_sq_rel_err,
)

__all__ = [
    "AnalysisScenario",
    "Plan",
    "plan_allocation_ratio",
    "plan_budget",
    "SimulationResult",
    "expected_sq_rel_err_small_group",
    "expected_sq_rel_err_uniform",
    "figure_3a_series",
    "figure_3b_series",
    "optimal_allocation_ratio",
    "simulate_small_group_sq_rel_err",
    "simulate_uniform_sq_rel_err",
]
