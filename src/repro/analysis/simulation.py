"""Monte Carlo companion to the Theorem 4.1 analytical model.

The closed-form expressions in :mod:`repro.analysis.model` rest on the
paper's idealised assumptions (independent Zipf attributes, Bernoulli
sampling, selectivity-σ predicates).  This module *simulates* exactly
that setting and measures SqRelErr empirically, so the closed form can be
cross-checked (the tests assert agreement) and so the model's assumptions
can be probed — e.g. the fixed-size-vs-Bernoulli sampling distinction the
paper glosses over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.model import AnalysisScenario
from repro.datagen.zipf import ZipfDistribution
from repro.engine.reservoir import as_generator
from repro.errors import ExperimentError


@dataclass(frozen=True)
class SimulationResult:
    """Empirical SqRelErr estimates from repeated sampling trials."""

    mean: float
    std_error: float
    trials: int

    def agrees_with(self, predicted: float, z: float = 4.0) -> bool:
        """Whether ``predicted`` lies within ``z`` standard errors."""
        return abs(self.mean - predicted) <= z * self.std_error + 1e-12


def _expected_group_counts(scenario: AnalysisScenario) -> np.ndarray:
    """Expected rows per group cell under the idealised model.

    Cells are the cross product of ``g`` independent Zipf attributes;
    the selectivity-σ predicate thins every cell equally.
    """
    dist = ZipfDistribution(scenario.n_distinct, scenario.z)
    probabilities = dist.pmf
    for _ in range(scenario.n_group_columns - 1):
        probabilities = np.outer(probabilities, dist.pmf).reshape(-1)
    return probabilities * scenario.selectivity * scenario.database_rows


def simulate_uniform_sq_rel_err(
    scenario: AnalysisScenario,
    sample_rows: float | None = None,
    trials: int = 200,
    rng: int | np.random.Generator | None = 0,
    max_cells: int = 20000,
) -> SimulationResult:
    """Empirical Equation 1: SqRelErr of Bernoulli uniform sampling.

    Each trial draws binomial sample counts for every group cell, scales
    by the inverse rate, and averages the squared relative errors (cells
    whose expected size rounds to zero are excluded, as the paper's
    ``G`` contains only realised groups).
    """
    if trials <= 0:
        raise ExperimentError("trials must be positive")
    gen = as_generator(rng)
    counts = np.round(_expected_group_counts(scenario)).astype(np.int64)
    counts = counts[counts > 0]
    if counts.size == 0:
        raise ExperimentError("scenario yields no non-empty groups")
    if counts.size > max_cells:
        raise ExperimentError(
            f"scenario has {counts.size} group cells; raise max_cells or "
            "shrink n_distinct/g"
        )
    s = scenario.budget_rows if sample_rows is None else sample_rows
    rate = s / scenario.database_rows
    if not 0.0 < rate <= 1.0:
        raise ExperimentError(f"implied sampling rate {rate} out of range")
    errors = np.empty(trials)
    for t in range(trials):
        sampled = gen.binomial(counts, rate)
        estimates = sampled / rate
        ratios = (counts - estimates) / counts
        errors[t] = float(np.mean(ratios * ratios))
    return SimulationResult(
        mean=float(errors.mean()),
        std_error=float(errors.std(ddof=1) / np.sqrt(trials)),
        trials=trials,
    )


def simulate_small_group_sq_rel_err(
    scenario: AnalysisScenario,
    allocation_ratio: float,
    trials: int = 200,
    rng: int | np.random.Generator | None = 0,
    max_cells: int = 20000,
) -> SimulationResult:
    """Empirical Equation 2 under the fixed runtime budget.

    Groups whose every attribute value is common are estimated from the
    (shrunken) overall sample; all other groups are exact (zero error),
    exactly as in Theorem 4.1's derivation.
    """
    if allocation_ratio < 0:
        raise ExperimentError("allocation ratio must be >= 0")
    gen = as_generator(rng)
    g = scenario.n_group_columns
    s0 = scenario.budget_rows / (1.0 + g * allocation_ratio)
    rate = s0 / scenario.database_rows
    dist = ZipfDistribution(scenario.n_distinct, scenario.z)
    t = min(1.0, allocation_ratio * s0 / scenario.database_rows)
    n_common = dist.common_rank_count(t) if allocation_ratio > 0 else scenario.n_distinct

    counts = np.round(_expected_group_counts(scenario)).astype(np.int64)
    # Mark cells whose every per-column rank is common.
    ranks = np.arange(scenario.n_distinct)
    common_mask = ranks < n_common
    cell_common = common_mask.copy()
    for _ in range(g - 1):
        cell_common = np.outer(cell_common, common_mask).reshape(-1)
    keep = counts > 0
    counts = counts[keep]
    cell_common = cell_common[keep]
    if counts.size == 0:
        raise ExperimentError("scenario yields no non-empty groups")
    if counts.size > max_cells:
        raise ExperimentError(
            f"scenario has {counts.size} group cells; raise max_cells or "
            "shrink n_distinct/g"
        )
    sampled_counts = counts[cell_common]
    n_groups = counts.size
    errors = np.empty(trials)
    for trial in range(trials):
        if sampled_counts.size:
            sampled = gen.binomial(sampled_counts, rate)
            estimates = sampled / rate
            ratios = (sampled_counts - estimates) / sampled_counts
            total = float(np.sum(ratios * ratios))
        else:
            total = 0.0
        errors[trial] = total / n_groups
    return SimulationResult(
        mean=float(errors.mean()),
        std_error=float(errors.std(ddof=1) / np.sqrt(trials)),
        trials=trials,
    )
