"""Persistence: tables and databases as on-disk files."""

from repro.storage.io import (
    FORMAT_VERSION,
    StorageError,
    load_database,
    load_table,
    save_database,
    save_table,
)

__all__ = [
    "FORMAT_VERSION",
    "StorageError",
    "load_database",
    "load_table",
    "save_database",
    "save_table",
]
