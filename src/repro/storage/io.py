"""On-disk persistence for tables, databases, and sample sets.

The paper's pre-processing phase is explicitly allowed to be expensive
because its output is *stored*: sample tables live on disk as ordinary
relations and are reused across sessions.  This module provides that
persistence for the in-package engine:

* one ``.npz`` file per table — column arrays, dictionary-encoded string
  vocabularies, and the bitmask words, with a JSON header carrying names,
  kinds, and bit width;
* a database directory — one file per table plus ``catalog.json``
  recording the star schema.

Everything round-trips exactly (a property the tests enforce), including
bitmasks and string dictionaries.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.engine.bitmask import BitmaskVector
from repro.engine.column import Column, ColumnKind
from repro.engine.database import Database
from repro.engine.schema import ForeignKey, StarSchema
from repro.engine.table import Table
from repro.errors import ReproError

#: Format marker written into every file for forward compatibility.
FORMAT_VERSION = 1


class StorageError(ReproError):
    """A file could not be written or does not contain a valid table."""


def save_table(table: Table, path: str | Path) -> Path:
    """Write ``table`` to one ``.npz`` file; returns the path written."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    header: dict = {
        "version": FORMAT_VERSION,
        "name": table.name,
        "n_rows": table.n_rows,
        "columns": [],
    }
    for i, name in enumerate(table.column_names):
        col = table.column(name)
        arrays[f"col_{i}"] = col.data
        entry = {"name": name, "kind": col.kind.value}
        if col.dictionary is not None:
            entry["dictionary"] = list(col.dictionary)
        header["columns"].append(entry)
    if table.bitmask is not None:
        arrays["bitmask_words"] = table.bitmask.words
        header["bitmask_bits"] = table.bitmask.n_bits
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_table(path: str | Path) -> Table:
    """Read a table previously written by :func:`save_table`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such table file: {path}")
    with np.load(path, allow_pickle=False) as data:
        if "header" not in data:
            raise StorageError(f"{path} is not a repro table file")
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise StorageError(
                f"{path}: unsupported format version {header.get('version')}"
            )
        columns: dict[str, Column] = {}
        for i, entry in enumerate(header["columns"]):
            kind = ColumnKind(entry["kind"])
            array = data[f"col_{i}"]
            if kind is ColumnKind.STRING:
                columns[entry["name"]] = Column(
                    kind, array, entry["dictionary"]
                )
            else:
                columns[entry["name"]] = Column(kind, array)
        bitmask = None
        if "bitmask_words" in data:
            words = data["bitmask_words"]
            bitmask = BitmaskVector(
                words.shape[0], header["bitmask_bits"], words
            )
    return Table(header["name"], columns, bitmask)


def save_database(db: Database, directory: str | Path) -> Path:
    """Write a whole database (tables + star schema) to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    catalog: dict = {
        "version": FORMAT_VERSION,
        "tables": [],
        "star_schema": None,
    }
    for name in db.table_names:
        save_table(db.table(name), directory / f"{name}.npz")
        catalog["tables"].append(name)
    if db.star_schema is not None:
        catalog["star_schema"] = {
            "fact_table": db.star_schema.fact_table,
            "foreign_keys": [
                {
                    "fact_column": fk.fact_column,
                    "dimension_table": fk.dimension_table,
                    "dimension_key": fk.dimension_key,
                }
                for fk in db.star_schema.foreign_keys
            ],
        }
    (directory / "catalog.json").write_text(json.dumps(catalog, indent=2))
    return directory


def load_database(directory: str | Path) -> Database:
    """Read a database previously written by :func:`save_database`."""
    directory = Path(directory)
    catalog_path = directory / "catalog.json"
    if not catalog_path.exists():
        raise StorageError(f"no catalog.json in {directory}")
    catalog = json.loads(catalog_path.read_text())
    if catalog.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"{directory}: unsupported catalog version {catalog.get('version')}"
        )
    tables = [
        load_table(directory / f"{name}.npz") for name in catalog["tables"]
    ]
    star_schema = None
    if catalog["star_schema"] is not None:
        raw = catalog["star_schema"]
        star_schema = StarSchema(
            raw["fact_table"],
            tuple(
                ForeignKey(
                    fk["fact_column"],
                    fk["dimension_table"],
                    fk["dimension_key"],
                )
                for fk in raw["foreign_keys"]
            ),
        )
    return Database(tables, star_schema)
