"""Property-based tests: the vectorised executor equals a reference."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine.executor import aggregate_table, dense_ids
from repro.engine.expressions import AggFunc, AggregateSpec, InSet, Query
from repro.engine.table import Table

from tests.test_executor import reference_aggregate

LETTERS = ["a", "b", "c", "d"]


@st.composite
def random_table(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    g1 = draw(st.lists(st.sampled_from(LETTERS), min_size=n, max_size=n))
    g2 = draw(
        st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n)
    )
    v = draw(
        st.lists(
            st.floats(
                min_value=-1000, max_value=1000, allow_nan=False, width=32
            ),
            min_size=n,
            max_size=n,
        )
    )
    return Table.from_dict("t", {"g1": g1, "g2": g2, "v": [float(x) for x in v]})


@given(
    table=random_table(),
    group_by=st.sampled_from([(), ("g1",), ("g2",), ("g1", "g2"), ("g2", "g1")]),
    agg=st.sampled_from(
        [
            (AggregateSpec(AggFunc.COUNT, alias="cnt"),),
            (AggregateSpec(AggFunc.SUM, "v", alias="s"),),
            (
                AggregateSpec(AggFunc.COUNT, alias="cnt"),
                AggregateSpec(AggFunc.SUM, "v", alias="s"),
            ),
            (AggregateSpec(AggFunc.MIN, "v"), AggregateSpec(AggFunc.MAX, "v")),
        ]
    ),
    predicate_values=st.sets(st.sampled_from(LETTERS), max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_aggregate_matches_reference(table, group_by, agg, predicate_values):
    where = InSet("g1", sorted(predicate_values)) if predicate_values else None
    query = Query("t", agg, group_by, where)
    result = aggregate_table(table, query)
    expected = reference_aggregate(table, query)
    assert set(result.rows) == set(expected)
    for key, values in expected.items():
        got = result.rows[key]
        assert len(got) == len(values)
        for g, e in zip(got, values):
            assert abs(g - e) <= 1e-6 * max(1.0, abs(e))


@given(
    table=random_table(),
    weights=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    scale=st.floats(min_value=0.1, max_value=200.0, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_weighted_scaled_count(table, weights, scale):
    n = table.n_rows
    w = np.full(n, weights)
    query = Query("t", (AggregateSpec(AggFunc.COUNT, alias="c"),), ("g1",))
    result = aggregate_table(table, query, weights=w, scale=scale)
    expected = reference_aggregate(table, query, weights=w.tolist(), scale=scale)
    for key, values in expected.items():
        assert result.rows[key][0] == np.float64(values[0]) or abs(
            result.rows[key][0] - values[0]
        ) <= 1e-9 * abs(values[0])


@given(
    columns=st.lists(
        st.lists(st.integers(min_value=0, max_value=5), min_size=5, max_size=5),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=60, deadline=None)
def test_dense_ids_equals_tuple_grouping(columns):
    arrays = [np.asarray(c) for c in columns]
    ids, n_groups = dense_ids(arrays)
    tuples = list(zip(*(a.tolist() for a in arrays)))
    # Same partition: two rows share an id iff they share a tuple.
    for i in range(len(tuples)):
        for j in range(len(tuples)):
            assert (ids[i] == ids[j]) == (tuples[i] == tuples[j])
    assert n_groups == len(set(tuples))
