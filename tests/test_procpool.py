"""Lifecycle and crash-semantics tests for the process backend.

The shared-memory column arena (:mod:`repro.engine.procpool`) copies
engine buffers into :mod:`multiprocessing.shared_memory` segments so
worker processes can attach zero-copy views.  Segments live in a global
OS namespace — a leaked one outlives the interpreter — so every release
path gets a test: explicit release, anchor death (weakref), catalog
invalidation (``drop_table`` / ``append_rows``), session close, and
interpreter-exit sweep (covered by the suite-wide leak check in
``conftest.py``).  Crash semantics get their own: a worker killed
mid-task must surface as :class:`~repro.errors.InternalError`, never a
hang, and the next scatter must respawn a working pool.
"""

from __future__ import annotations

import gc
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.parallel import ExecutionOptions
from repro.engine.procpool import (
    ColumnArena,
    get_arena,
    process_map,
    resolve_array,
    resolve_column,
    resolve_table,
    shutdown_process_pool,
)
from repro.engine.table import Table
from repro.errors import InternalError
from repro.middleware.session import AQPSession
from repro.obs.registry import get_registry


def _options(workers: int = 2) -> ExecutionOptions:
    return ExecutionOptions(max_workers=workers, executor="process")


def _make_table(name: str = "tmp", rows: int = 64) -> Table:
    return Table.from_dict(
        name,
        {
            "grp": [("abc", "de", "fgh")[i % 3] for i in range(rows)],
            "val": [float(i) for i in range(rows)],
        },
    )


def _assert_unlinked(name: str) -> None:
    with pytest.raises(FileNotFoundError):
        probe = shared_memory.SharedMemory(name=name)
        probe.close()  # pragma: no cover - only on leak


# ----------------------------------------------------------------------
# Pool tasks (module-level: RL010)
# ----------------------------------------------------------------------
def _identity(payload):
    return payload


def _parent_pid(_payload):
    return os.getpid()


def _sum_shared(handle):
    from repro.engine import procpool

    view = procpool.resolve_array(handle)
    return float(view.sum()), procpool.in_worker(), bool(view.flags.writeable)


def _group_count(handle):
    table = resolve_table(handle)
    return table.column("grp").value_counts()


def _kill_self(_payload):
    os.kill(os.getpid(), signal.SIGKILL)


class TestArenaPublishResolve:
    def test_array_round_trip_is_zero_copy_and_read_only(self):
        arena = ColumnArena()
        array = np.arange(4096, dtype=np.int64)
        handle = arena.publish_array(array)
        try:
            view = resolve_array(handle)
            assert np.array_equal(view, array)
            assert not view.flags.writeable
            assert not view.flags.owndata  # a view over the segment
        finally:
            arena.release_all()

    def test_republish_reuses_the_live_entry(self):
        arena = ColumnArena()
        array = np.arange(128, dtype=np.float64)
        try:
            first = arena.publish_array(array)
            second = arena.publish_array(array)
            assert second is first
            assert len(arena.created_segment_names()) == 1
        finally:
            arena.release_all()

    def test_empty_array_needs_no_segment(self):
        arena = ColumnArena()
        handle = arena.publish_array(np.empty(0, dtype=np.int64))
        assert handle.segment is None
        assert arena.created_segment_names() == ()
        resolved = resolve_array(handle)
        assert resolved.shape == (0,)
        assert resolved.dtype == np.int64

    def test_column_round_trip_keeps_dictionary_and_identity(self):
        arena = ColumnArena()
        table = _make_table()
        column = table.column("grp")
        try:
            handle = arena.publish_column(column)
            resolved = resolve_column(handle)
            assert np.array_equal(resolved.data, column.data)
            assert resolved.dictionary == column.dictionary
            assert resolved.kind == column.kind
            # Handle-keyed worker cache: same handle, same object — the
            # identity the worker-side execution cache anchors on.
            assert resolve_column(handle) is resolved
        finally:
            arena.release_all()

    def test_publish_table_prunes_to_requested_columns(self):
        arena = ColumnArena()
        table = _make_table()
        try:
            handle = arena.publish_table(table, columns=["val"])
            assert [name for name, _ in handle.columns] == ["val"]
            # One data segment only: the string column was never copied.
            assert len(arena.created_segment_names()) == 1
        finally:
            arena.release_all()


class TestArenaRelease:
    def test_release_object_unlinks_the_segment(self):
        arena = ColumnArena()
        array = np.arange(1024, dtype=np.int64)
        handle = arena.publish_array(array)
        assert handle.segment in arena.active_segment_names()
        arena.release_object(array)
        assert arena.active_segment_names() == ()
        _assert_unlinked(handle.segment)
        assert arena.leaked_segment_names() == ()

    def test_anchor_death_unlinks_via_weakref(self):
        arena = ColumnArena()
        array = np.arange(512, dtype=np.float64)
        handle = arena.publish_array(array)
        name = handle.segment
        del array, handle
        gc.collect()
        assert name in arena.released_segment_names()
        _assert_unlinked(name)

    def test_release_all_accounts_for_every_created_segment(self):
        arena = ColumnArena()
        table = _make_table()
        arena.publish_table(table)
        arena.publish_array(np.arange(64, dtype=np.int64))
        assert len(arena) > 0
        arena.release_all()
        assert len(arena) == 0
        assert sorted(arena.released_segment_names()) == sorted(
            arena.created_segment_names()
        )
        assert arena.leaked_segment_names() == ()


class TestCatalogInvalidation:
    """Invalidation flows parent-side through the execution cache's
    listeners, so the *process-wide* arena (``get_arena``) is under test
    here, not a private instance."""

    def test_drop_table_releases_published_segments(self):
        arena = get_arena()
        table = _make_table("doomed")
        db = Database([table])
        handle = arena.publish_table(table)
        names = [col.data.segment for _, col in handle.columns]
        db.drop_table("doomed")
        for name in names:
            assert name in arena.released_segment_names()
            _assert_unlinked(name)
        assert arena.leaked_segment_names() == ()

    def test_append_rows_releases_the_replaced_table(self):
        arena = get_arena()
        table = _make_table("growing", rows=32)
        db = Database([table])
        old_handle = arena.publish_table(table)
        old_names = [col.data.segment for _, col in old_handle.columns]

        merged = db.append_rows("growing", _make_table("growing", rows=8))
        for name in old_names:
            assert name in arena.released_segment_names()
            _assert_unlinked(name)

        # The merged table republishes cleanly under fresh segments.
        new_handle = arena.publish_table(merged)
        assert new_handle.n_rows == 40
        assert all(
            col.data.segment not in old_names for _, col in new_handle.columns
        )
        arena.release_table(merged)
        assert arena.leaked_segment_names() == ()

    def test_session_close_releases_everything(self):
        arena = get_arena()
        table = _make_table("sessioned")
        db = Database([table])
        with AQPSession(db):
            arena.publish_table(table)
            assert arena.active_segment_names() != ()
        assert arena.active_segment_names() == ()
        assert arena.leaked_segment_names() == ()


class TestProcessScatter:
    def test_results_gather_in_submission_order(self):
        results = process_map(_identity, list(range(24)), _options())
        assert results == list(range(24))

    def test_single_worker_degrades_to_in_parent_serial(self):
        pids = process_map(_parent_pid, [1, 2], _options(workers=1))
        assert pids == [os.getpid()] * 2

    def test_workers_resolve_shared_arrays_zero_copy(self):
        arena = get_arena()
        array = np.arange(10_000, dtype=np.float64)
        handle = arena.publish_array(array)
        try:
            results = process_map(_sum_shared, [handle, handle], _options())
            expected = (float(array.sum()), True, False)
            assert results == [expected, expected]
        finally:
            arena.release_object(array)

    def test_workers_reconstruct_tables_from_handles(self):
        arena = get_arena()
        table = _make_table(rows=99)
        handle = arena.publish_table(table)
        try:
            counts = process_map(_group_count, [handle, handle], _options())
            assert counts[0] == counts[1] == {"abc": 33, "de": 33, "fgh": 33}
        finally:
            arena.release_table(table)

    def test_scatter_records_metrics(self):
        get_registry().reset()
        process_map(_identity, list(range(8)), _options())
        snapshot = get_registry().snapshot()
        assert snapshot["counters"]["procpool.tasks_scattered"] == 8
        for name in ("procpool.submit_seconds", "procpool.wait_seconds"):
            assert snapshot["histograms"][name]["count"] >= 1

    def test_worker_death_raises_internal_error_then_pool_respawns(self):
        options = _options()
        with pytest.raises(InternalError, match="worker died"):
            process_map(_kill_self, [0, 1], options)
        # The broken pool was discarded; the next scatter works.
        assert process_map(_identity, [1, 2, 3], options) == [1, 2, 3]

    def test_shutdown_is_idempotent_and_pool_restarts(self):
        shutdown_process_pool()
        shutdown_process_pool()
        assert process_map(_identity, [5, 6], _options()) == [5, 6]
