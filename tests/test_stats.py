"""Tests for the first pre-processing scan (column statistics, L(C))."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.column import Column
from repro.engine.stats import (
    collect_column_stats,
    column_stats,
    per_group_selectivity,
)
from repro.engine.table import Table


def make_table(values):
    return Table("t", {"c": Column.strings(values)})


class TestColumnStats:
    def test_frequencies(self, small_table):
        stats = column_stats(small_table, "a")
        assert stats.frequencies == {"x": 3, "y": 3, "z": 2}
        assert stats.distinct_count == 3
        assert stats.total_count == 8

    def test_values_by_frequency_desc(self):
        stats = column_stats(make_table(["a"] * 5 + ["b"] * 2 + ["c"] * 3), "c")
        assert [v for v, _ in stats.values_by_frequency()] == ["a", "c", "b"]

    def test_values_by_frequency_tie_break_deterministic(self):
        stats = column_stats(make_table(["b", "a"]), "c")
        assert [v for v, _ in stats.values_by_frequency()] == ["a", "b"]


class TestCommonValues:
    def test_paper_definition_example(self):
        # 90 Stereo / 10 TV with t = 0.15: common must cover >= 85 rows.
        stats = column_stats(make_table(["Stereo"] * 90 + ["TV"] * 10), "c")
        assert stats.common_values(0.15) == {"Stereo"}

    def test_t_zero_everything_common(self):
        stats = column_stats(make_table(["a", "b", "b"]), "c")
        assert stats.common_values(0.0) == {"a", "b"}

    def test_t_one_nothing_common(self):
        stats = column_stats(make_table(["a", "b"]), "c")
        assert stats.common_values(1.0) == set()

    def test_invalid_fraction(self):
        stats = column_stats(make_table(["a"]), "c")
        with pytest.raises(ValueError):
            stats.common_values(1.5)

    @given(
        counts=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
        t=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_minimality_and_coverage(self, counts, t):
        values = [v for i, c in enumerate(counts) for v in [f"v{i}"] * c]
        stats = column_stats(make_table(values), "c")
        common = stats.common_values(t)
        n = stats.total_count
        covered = sum(stats.frequencies[v] for v in common)
        uncommon_rows = n - covered
        # Rows outside L(C) fit in the small group table: <= N*t.
        assert uncommon_rows <= n * t + 1e-9
        # Minimality: dropping the least frequent common value breaks coverage.
        if common:
            weakest = min(common, key=lambda v: stats.frequencies[v])
            assert covered - stats.frequencies[weakest] < n * (1 - t)


class TestCollect:
    def test_threshold_drops_wide_columns(self):
        t = Table(
            "t",
            {
                "narrow": Column.strings(["a", "b"] * 10),
                "wide": Column.ints(range(20)),
            },
        )
        stats = collect_column_stats(t, distinct_threshold=5)
        assert "narrow" in stats
        assert "wide" not in stats

    def test_explicit_column_list(self, small_table):
        stats = collect_column_stats(small_table, columns=["a"])
        assert set(stats) == {"a"}

    def test_includes_numeric_columns_when_small(self, small_table):
        stats = collect_column_stats(small_table)
        assert "b" in stats
        assert stats["b"].frequencies == {1: 5, 2: 3}


class TestPerGroupSelectivity:
    def test_basic(self):
        assert per_group_selectivity([10, 20, 30], 100) == pytest.approx(0.2)

    def test_empty(self):
        assert per_group_selectivity([], 100) == 0.0
        assert per_group_selectivity([1], 0) == 0.0
