"""Tests for the AQP middleware session."""

import pytest

from repro.core.smallgroup import SmallGroupConfig, SmallGroupSampling
from repro.core.workload_policy import trim_columns
from repro.errors import RuntimePhaseError
from repro.middleware import AQPSession

SQL_COUNT = (
    "SELECT l_shipmode, COUNT(*) AS cnt FROM lineitem GROUP BY l_shipmode"
)
SQL_FILTERED = (
    "SELECT p_brand, COUNT(*) AS cnt FROM lineitem "
    "WHERE s_region IN ('s_region_000') GROUP BY p_brand"
)


@pytest.fixture()
def session(tiny_tpch):
    session = AQPSession(tiny_tpch)
    session.install(
        SmallGroupSampling(
            SmallGroupConfig(base_rate=0.05, use_reservoir=False)
        )
    )
    return session


class TestModes:
    def test_approx_mode(self, session):
        result = session.sql(SQL_COUNT)
        assert result.approx is not None
        assert result.exact is None
        assert result.approx.n_groups > 0
        assert result.approx_seconds > 0

    def test_exact_mode_without_technique(self, tiny_tpch):
        session = AQPSession(tiny_tpch)
        result = session.sql(SQL_COUNT, mode="exact")
        assert result.exact is not None
        assert result.approx is None

    def test_both_mode_speedup(self, session):
        result = session.sql(SQL_COUNT, mode="both")
        assert result.approx is not None and result.exact is not None
        assert result.speedup > 0

    def test_invalid_mode(self, session):
        with pytest.raises(RuntimePhaseError):
            session.sql(SQL_COUNT, mode="fast")

    def test_approx_without_technique(self, tiny_tpch):
        session = AQPSession(tiny_tpch)
        with pytest.raises(RuntimePhaseError, match="install"):
            session.sql(SQL_COUNT)

    def test_install_reports(self, tiny_tpch):
        session = AQPSession(tiny_tpch)
        report = session.install(
            SmallGroupSampling(
                SmallGroupConfig(base_rate=0.05, use_reservoir=False)
            )
        )
        assert report.sample_rows > 0
        assert session.report is report


class TestRendering:
    def test_to_text_contains_groups_and_ci(self, session):
        result = session.sql(SQL_COUNT, mode="both")
        text = result.to_text()
        assert "approximate answer" in text
        assert "95% CI" in text
        assert "speedup" in text

    def test_explain_lists_pieces(self, session):
        text = session.explain(SQL_FILTERED)
        assert "pieces:" in text
        assert "sg_overall" in text
        assert "rewritten SQL" in text
        assert "UNION ALL" in text or "SELECT" in text


class TestWorkloadFeedback:
    def test_log_grows(self, session):
        assert session.query_count == 0
        session.sql(SQL_COUNT)
        session.sql(SQL_FILTERED)
        assert session.query_count == 2

    def test_observed_workload_feeds_trimming(self, session):
        session.sql(SQL_COUNT)
        session.sql(SQL_COUNT)
        session.sql(SQL_FILTERED)
        workload = session.observed_workload()
        assert len(workload) == 3
        columns = trim_columns(workload)
        assert columns[0] == "l_shipmode"  # referenced twice
        assert "p_brand" in columns

    def test_workload_query_parameters(self, session):
        session.sql(SQL_FILTERED)
        wq = session.observed_workload().queries[0]
        assert wq.n_group_columns == 1
        assert wq.n_predicates == 1
        assert wq.aggregate == "COUNT"


class TestLifecycle:
    def test_close_is_idempotent(self, tiny_tpch):
        session = AQPSession(tiny_tpch)
        session.close()
        session.close()  # second close must be a no-op, not a crash
        assert session.closed

    def test_context_manager_plus_explicit_close(self, tiny_tpch):
        # The common double-close pattern: with-block exit and a finally.
        with AQPSession(tiny_tpch) as session:
            session.sql(SQL_COUNT, mode="exact")
        session.close()
        assert session.closed

    def test_post_close_sql_raises_cleanly(self, tiny_tpch):
        from repro.errors import InternalError

        session = AQPSession(tiny_tpch)
        session.close()
        with pytest.raises(InternalError, match="session closed"):
            session.sql(SQL_COUNT, mode="exact")

    def test_post_close_append_and_install_raise_cleanly(self, tiny_tpch):
        from repro.engine.table import Table
        from repro.errors import InternalError

        session = AQPSession(tiny_tpch)
        session.close()
        with pytest.raises(InternalError, match="session closed"):
            session.append_rows(
                "lineitem", Table.from_dict("lineitem", {"x": [1]})
            )
        with pytest.raises(InternalError, match="session closed"):
            session.install(
                SmallGroupSampling(SmallGroupConfig(base_rate=0.05))
            )
        with pytest.raises(InternalError, match="session closed"):
            with session:
                pass

    def test_close_races_are_single_release(self, tiny_tpch):
        import threading

        session = AQPSession(tiny_tpch)
        barrier = threading.Barrier(4)

        def close():
            barrier.wait()
            session.close()

        threads = [threading.Thread(target=close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert session.closed
