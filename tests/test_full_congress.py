"""Tests for the full congress algorithm [2]."""

import time

import numpy as np
import pytest

from repro.baselines.congress import BasicCongress, CongressConfig, FullCongress
from repro.engine.executor import execute
from repro.engine.expressions import AggFunc, AggregateSpec, Query
from repro.errors import PreprocessingError

COUNT = AggregateSpec(AggFunc.COUNT, alias="cnt")


class TestGuard:
    def test_subset_cap(self, tiny_sales):
        technique = FullCongress(
            CongressConfig(rates=(0.02,)), max_subset_columns=3
        )
        with pytest.raises(PreprocessingError, match="2\\^"):
            technique.preprocess(tiny_sales)


class TestAllocation:
    def test_grouping_count_reported(self, flat_db):
        technique = FullCongress(
            CongressConfig(rates=(0.05,), columns=("color", "shape", "status"))
        )
        report = technique.preprocess(flat_db)
        # 2^3 groupings: house + 7 non-empty subsets.
        assert report.details["n_groupings"] == 8

    def test_budget_respected(self, flat_db):
        technique = FullCongress(
            CongressConfig(
                rates=(0.05,), columns=("color", "shape"), seed=1
            )
        )
        report = technique.preprocess(flat_db)
        n = flat_db.fact_table.n_rows
        assert report.sample_rows == pytest.approx(0.05 * n, rel=0.3)

    def test_dominates_basic_on_sub_groupings(self, flat_db):
        """Full congress explicitly allocates for every sub-grouping, so
        single-column groups (not just the finest) are better covered:
        across seeds it should miss no more single-column groups than
        basic congress."""
        query = Query("flat", (COUNT,), ("shape",))
        exact = execute(flat_db, query).as_dict()
        full_missed = basic_missed = 0
        for seed in range(12):
            config = CongressConfig(
                rates=(0.02,), columns=("color", "shape", "city"), seed=seed
            )
            full = FullCongress(config)
            full.preprocess(flat_db)
            basic = BasicCongress(config)
            basic.preprocess(flat_db)
            full_missed += len(exact) - len(full.answer(query).as_dict())
            basic_missed += len(exact) - len(basic.answer(query).as_dict())
        assert full_missed <= basic_missed

    def test_estimates_unbiased_over_seeds(self, flat_db):
        query = Query("flat", (COUNT,), ("shape",))
        exact = execute(flat_db, query).as_dict()
        target = max(exact, key=exact.get)
        estimates = []
        for seed in range(20):
            technique = FullCongress(
                CongressConfig(
                    rates=(0.05,), columns=("color", "shape"), seed=seed
                )
            )
            technique.preprocess(flat_db)
            estimates.append(technique.answer(query).value(target))
        assert np.mean(estimates) == pytest.approx(exact[target], rel=0.12)

    def test_weights_reconstruct_population(self, flat_db):
        technique = FullCongress(
            CongressConfig(rates=(0.1,), columns=("status", "shape"), seed=3)
        )
        technique.preprocess(flat_db)
        info = technique.sample_tables()[0]
        assert info.weights.sum() == pytest.approx(
            flat_db.fact_table.n_rows, rel=1e-9
        )


class TestExponentialCost:
    def test_preprocessing_grows_with_columns(self, flat_db):
        """The 2^k blowup the paper cites as the reason full congress was
        infeasible on SALES: grouping count doubles per added column."""
        groupings = []
        for k in (1, 2, 3, 4):
            technique = FullCongress(
                CongressConfig(
                    rates=(0.05,),
                    columns=("color", "shape", "status", "city")[:k],
                )
            )
            report = technique.preprocess(flat_db)
            groupings.append(report.details["n_groupings"])
        assert groupings == [2, 4, 8, 16]
