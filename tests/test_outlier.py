"""Tests for outlier indexing, including optimality of outlier selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.outlier import (
    OutlierConfig,
    OutlierIndexing,
    select_outlier_indices,
)
from repro.engine.executor import execute
from repro.engine.expressions import AggFunc, AggregateSpec, Query
from repro.errors import SamplingError

SUM_AMOUNT = AggregateSpec(AggFunc.SUM, "amount", alias="total")
COUNT = AggregateSpec(AggFunc.COUNT, alias="cnt")


class TestSelectOutliers:
    def test_empty_and_degenerate(self):
        assert len(select_outlier_indices(np.array([]), 3)) == 0
        assert len(select_outlier_indices(np.array([1.0, 2.0]), 0)) == 0
        assert select_outlier_indices(np.array([1.0, 2.0]), 5).tolist() == [0, 1]

    def test_negative_k_rejected(self):
        with pytest.raises(SamplingError):
            select_outlier_indices(np.array([1.0]), -1)

    def test_picks_heavy_tail(self):
        values = np.array([1.0, 2.0, 1.5, 1000.0, 2.5, 900.0])
        chosen = select_outlier_indices(values, 2)
        assert set(chosen.tolist()) == {3, 5}

    def test_picks_both_tails_when_symmetric(self):
        values = np.array([-100.0, 0.0, 0.1, -0.1, 100.0])
        chosen = set(select_outlier_indices(values, 2).tolist())
        assert chosen == {0, 4}

    def test_removal_reduces_variance(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(3, 1.5, 500)
        chosen = select_outlier_indices(values, 25)
        keep = np.ones(500, dtype=bool)
        keep[chosen] = False
        assert values[keep].var() < values.var() * 0.5

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
            min_size=1,
            max_size=12,
        ),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimal_among_all_subsets(self, values, k):
        """The window algorithm matches brute-force over all k-subsets."""
        from itertools import combinations

        values = np.asarray([float(v) for v in values])
        n = len(values)
        if k >= n:
            return
        chosen = select_outlier_indices(values, k)
        keep = np.ones(n, dtype=bool)
        keep[chosen] = False
        achieved = values[keep].var()
        best = min(
            np.delete(values, list(combo)).var()
            for combo in combinations(range(n), k)
        )
        assert achieved <= best + 1e-9


class TestConfig:
    def test_requires_measures(self):
        with pytest.raises(SamplingError):
            OutlierConfig(rates=(0.01,))

    def test_share_bounds(self):
        with pytest.raises(SamplingError):
            OutlierConfig(rates=(0.01,), measures=("m",), outlier_share=0.0)


class TestTechnique:
    def test_partitions_per_measure_and_rate(self, flat_db):
        technique = OutlierIndexing(
            OutlierConfig(rates=(0.02, 0.05), measures=("amount", "qty"))
        )
        report = technique.preprocess(flat_db)
        # Two tables (outliers + remainder) per (rate, measure).
        assert report.n_sample_tables == 8

    def test_missing_measure_raises(self, flat_db):
        technique = OutlierIndexing(
            OutlierConfig(rates=(0.02,), measures=("nope",))
        )
        from repro.errors import PreprocessingError

        with pytest.raises(PreprocessingError):
            technique.preprocess(flat_db)

    def test_budget_split(self, flat_db):
        technique = OutlierIndexing(
            OutlierConfig(
                rates=(0.05,), measures=("amount",), outlier_share=0.4
            )
        )
        technique.preprocess(flat_db)
        n = flat_db.fact_table.n_rows
        rows = technique.rows_for_query(
            Query("flat", (SUM_AMOUNT,))
        )
        assert rows == pytest.approx(0.05 * n, rel=0.05)

    def test_sum_total_estimate(self, flat_db):
        technique = OutlierIndexing(
            OutlierConfig(rates=(0.05,), measures=("amount",), seed=0)
        )
        technique.preprocess(flat_db)
        query = Query("flat", (SUM_AMOUNT,))
        truth = execute(flat_db, query).rows[()][0]
        answer = technique.answer(query)
        assert answer.value(()) == pytest.approx(truth, rel=0.25)

    def test_outlier_beats_uniform_variance_on_skewed_sum(self, flat_db):
        """Repeated estimates: outlier indexing's spread is smaller."""
        from repro.baselines.uniform import UniformConfig, UniformSampling

        query = Query("flat", (SUM_AMOUNT,))
        truth = execute(flat_db, query).rows[()][0]
        outlier_errs, uniform_errs = [], []
        for seed in range(15):
            o = OutlierIndexing(
                OutlierConfig(rates=(0.03,), measures=("amount",), seed=seed)
            )
            o.preprocess(flat_db)
            outlier_errs.append(abs(o.answer(query).value(()) - truth) / truth)
            u = UniformSampling(UniformConfig(rates=(0.03,), seed=seed))
            u.preprocess(flat_db)
            uniform_errs.append(abs(u.answer(query).value(()) - truth) / truth)
        assert np.mean(outlier_errs) < np.mean(uniform_errs)

    def test_count_queries_still_unbiased(self, flat_db):
        technique = OutlierIndexing(
            OutlierConfig(rates=(0.05,), measures=("amount",), seed=3)
        )
        technique.preprocess(flat_db)
        answer = technique.answer(Query("flat", (COUNT,)))
        n = flat_db.fact_table.n_rows
        assert answer.value(()) == pytest.approx(n, rel=0.1)

    def test_measure_matching(self, flat_db):
        technique = OutlierIndexing(
            OutlierConfig(rates=(0.05,), measures=("amount", "qty"))
        )
        technique.preprocess(flat_db)
        answer = technique.answer(
            Query("flat", (AggregateSpec(AggFunc.SUM, "qty", alias="q"),))
        )
        assert "qty" in answer.pieces[0]

    def test_groups_never_marked_exact(self, flat_db):
        technique = OutlierIndexing(
            OutlierConfig(rates=(0.05,), measures=("amount",))
        )
        technique.preprocess(flat_db)
        answer = technique.answer(Query("flat", (COUNT,), ("status",)))
        assert not answer.exact_groups()
