"""Unit tests for the parallel execution subsystem (engine/parallel.py)
and the thread-safety contract of the execution cache."""

from __future__ import annotations

import threading

import pytest

from repro.engine.cache import MISS, ExecutionCache
from repro.engine.parallel import (
    EXECUTOR_BACKENDS,
    MAX_POOL_WORKERS,
    ExecutionOptions,
    chunk_ranges,
    get_default_options,
    map_row_chunks,
    parallel_map,
    resolve_options,
    set_default_options,
    shutdown_default_pools,
    shutdown_pool,
)
from repro.errors import QueryError


class TestExecutionOptions:
    def test_defaults_are_serial(self):
        options = ExecutionOptions()
        assert options.max_workers == 1
        assert options.workers == 1

    def test_zero_means_one_per_cpu(self):
        import os

        assert ExecutionOptions(max_workers=0).workers == min(
            os.cpu_count() or 1, MAX_POOL_WORKERS
        )

    def test_workers_capped(self):
        assert ExecutionOptions(max_workers=10_000).workers == MAX_POOL_WORKERS

    def test_negative_workers_rejected(self):
        with pytest.raises(QueryError):
            ExecutionOptions(max_workers=-1)

    def test_bad_chunk_rows_rejected(self):
        with pytest.raises(QueryError):
            ExecutionOptions(chunk_rows=0)

    def test_resolve_options(self):
        explicit = ExecutionOptions(max_workers=3)
        assert resolve_options(explicit) is explicit
        assert resolve_options(None) is get_default_options()

    def test_set_default_options_returns_previous(self):
        previous = set_default_options(ExecutionOptions(max_workers=2))
        try:
            assert get_default_options().max_workers == 2
        finally:
            assert set_default_options(previous).max_workers == 2

    def test_executor_defaults_to_thread(self):
        assert ExecutionOptions().executor == "thread"

    def test_unknown_executor_rejected(self):
        with pytest.raises(QueryError):
            ExecutionOptions(executor="fibers")

    def test_every_backend_name_is_accepted(self):
        assert EXECUTOR_BACKENDS == ("serial", "thread", "process")
        for backend in EXECUTOR_BACKENDS:
            assert ExecutionOptions(executor=backend).executor == backend

    def test_serial_executor_forces_one_worker(self):
        options = ExecutionOptions(max_workers=8, executor="serial")
        assert options.workers == 1
        assert not options.uses_processes

    def test_uses_processes_requires_backend_and_parallelism(self):
        assert ExecutionOptions(max_workers=4, executor="process").uses_processes
        assert not ExecutionOptions(max_workers=1, executor="process").uses_processes
        assert not ExecutionOptions(max_workers=4, executor="thread").uses_processes

    def test_shutdown_default_pools_is_idempotent(self):
        # Covers both pools whether or not they (or procpool) ever started.
        shutdown_default_pools()
        shutdown_default_pools()
        assert parallel_map(lambda x: x + 1, [1, 2, 3], 2) == [2, 3, 4]


class TestChunkRanges:
    def test_empty_table(self):
        assert chunk_ranges(0, 100) == []
        assert chunk_ranges(-5, 100) == []

    def test_single_chunk_when_small(self):
        assert chunk_ranges(50, 100) == [(0, 50)]

    def test_ranges_tile_the_rows(self):
        for n_rows in (1, 7, 100, 65537, 200_001):
            ranges = chunk_ranges(n_rows, 4096)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == n_rows
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start

    def test_layout_independent_of_worker_count(self):
        # The layout is a pure function of (n_rows, chunk_rows): there is
        # no worker-count parameter to leak into the association order.
        assert chunk_ranges(10_000, 1024) == chunk_ranges(10_000, 1024)

    def test_bad_chunk_rows_rejected(self):
        with pytest.raises(QueryError):
            chunk_ranges(10, 0)


class TestParallelMap:
    def teardown_method(self):
        shutdown_pool()

    def test_serial_and_parallel_agree(self):
        items = list(range(50))
        expected = [i * i for i in items]
        assert parallel_map(lambda i: i * i, items, 1) == expected
        assert parallel_map(lambda i: i * i, items, 4) == expected

    def test_results_in_submission_order(self):
        import time

        def slow_for_small(i):
            time.sleep(0.01 if i < 3 else 0.0)
            return i

        assert parallel_map(slow_for_small, list(range(8)), 4) == list(
            range(8)
        )

    def test_exception_propagates(self):
        def boom(i):
            if i == 3:
                raise ValueError("task failed")
            return i

        with pytest.raises(ValueError, match="task failed"):
            parallel_map(boom, list(range(8)), 4)

    def test_nested_fan_out_falls_back_to_serial(self):
        # A task running on the pool must not scatter into the same pool
        # (saturation deadlock); it degrades to a serial loop instead.
        def inner(i):
            return i + 1

        def outer(i):
            return sum(parallel_map(inner, list(range(i + 2)), 4))

        expected = [sum(range(1, i + 3)) for i in range(6)]
        assert parallel_map(outer, list(range(6)), 2) == expected

    def test_map_row_chunks_concatenates_in_chunk_order(self):
        options = ExecutionOptions(max_workers=4, chunk_rows=7)
        parts = map_row_chunks(lambda s, e: list(range(s, e)), 50, options)
        flat = [x for part in parts for x in part]
        assert flat == list(range(50))


class _Anchor:
    """Weakref-able anchor object for cache entries."""


class TestExecutionCacheThreadSafety:
    N_THREADS = 8
    OPS_PER_THREAD = 400

    def test_concurrent_hammering_loses_no_updates(self):
        cache = ExecutionCache()
        anchors = [_Anchor() for _ in range(16)]
        errors: list[BaseException] = []
        lookups = [0] * self.N_THREADS
        barrier = threading.Barrier(self.N_THREADS)

        def worker(thread_index: int) -> None:
            try:
                barrier.wait()
                for op in range(self.OPS_PER_THREAD):
                    anchor = anchors[(thread_index + op) % len(anchors)]
                    kind = f"kind{op % 3}"
                    value = cache.get(kind, [anchor], extra=op % 5)
                    lookups[thread_index] += 1
                    if value is MISS:
                        cache.put(kind, [anchor], thread_index, extra=op % 5)
                    if op % 50 == 49:
                        cache.invalidate_object(anchor)
                    if op % 97 == 96:
                        len(cache)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        metrics = cache.metrics
        # No lost counter updates: every lookup is either a hit or a miss.
        assert metrics.total_hits() + metrics.total_misses() == sum(lookups)
        assert sum(lookups) == self.N_THREADS * self.OPS_PER_THREAD
        assert metrics.snapshot()["invalidations"] >= 0
        # Structure survives: every remaining entry resolves to a live
        # anchor and the reverse index agrees with the entries.
        assert len(cache) <= len(anchors) * 3 * 5
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_get_or_compute_stampede_is_benign(self):
        cache = ExecutionCache()
        anchor = _Anchor()
        computed = []
        barrier = threading.Barrier(self.N_THREADS)
        results = [None] * self.N_THREADS

        def worker(thread_index: int) -> None:
            barrier.wait()
            results[thread_index] = cache.get_or_compute(
                "stampede", [anchor], lambda: computed.append(1) or 42
            )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every caller sees the value; the compute may run multiple times
        # (documented stampede) but at least once and never corrupts.
        assert results == [42] * self.N_THREADS
        assert 1 <= len(computed) <= self.N_THREADS
        assert cache.get("stampede", [anchor]) == 42
