"""Zone-map data skipping: verdicts, mask identity, short-circuit AND.

The contract under test: chunk verdicts are conservative proofs (skip
only what cannot match, accept only what must), the assembled WHERE mask
is value-identical to a plain evaluation at any chunk size, predicates
that would raise still raise, and the skip accounting reports what was
actually touched.
"""

import numpy as np
import pytest

from repro.engine.bitmask import Bitmask, BitmaskVector
from repro.engine.cache import get_cache
from repro.engine.column import Column
from repro.engine.expressions import (
    And,
    Between,
    BitmaskDisjoint,
    Compare,
    CompareOp,
    Equals,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.engine.parallel import ExecutionOptions
from repro.engine.table import Table
from repro.engine.zonemap import (
    VERDICT_ALL_FALSE,
    VERDICT_ALL_TRUE,
    VERDICT_UNKNOWN,
    ZONE_MAP_DISTINCT_CUTOFF,
    PieceSkipStats,
    SkipReport,
    chunk_verdicts,
    evaluate_predicate,
    predicate_always_false,
)
from repro.errors import ColumnTypeError, QueryError


@pytest.fixture(autouse=True)
def _clear_cache():
    get_cache().clear()
    yield
    get_cache().clear()


def options(chunk_rows: int, skipping: bool = True) -> ExecutionOptions:
    return ExecutionOptions(chunk_rows=chunk_rows, data_skipping=skipping)


def clustered_table(n: int = 40, chunk: int = 10) -> Table:
    """Four clustered chunks: values 0..9, 10..19, 20..29, 30..39."""
    return Table(
        "t",
        {
            "x": Column.ints(np.arange(n)),
            "grp": Column.strings(
                ["abcd"[i // chunk] for i in range(n)]
            ),
        },
    )


class TestNumericVerdicts:
    def test_equals_skips_chunks_outside_range(self):
        verdicts = chunk_verdicts(
            clustered_table(), Equals("x", 15), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_UNKNOWN,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
        ]

    def test_constant_chunk_equal_value_accepts(self):
        table = Table("t", {"x": Column.ints([5] * 8 + [7] * 8)})
        verdicts = chunk_verdicts(table, Equals("x", 5), options(8))
        assert list(verdicts) == [VERDICT_ALL_TRUE, VERDICT_ALL_FALSE]

    def test_zero_count_refines_equals_zero(self):
        # 0 lies inside [-1, 1] for the first chunk, but no stored value
        # is 0 there — the zero count proves the refutation anyway.
        table = Table(
            "t", {"x": Column.ints([-1, 1, -1, 1, 0, 0, 0, 0])}
        )
        verdicts = chunk_verdicts(table, Equals("x", 0), options(4))
        assert list(verdicts) == [VERDICT_ALL_FALSE, VERDICT_ALL_TRUE]

    def test_not_equal_is_verdict_negation(self):
        table = Table(
            "t", {"x": Column.ints([-1, 1, -1, 1, 0, 0, 0, 0])}
        )
        verdicts = chunk_verdicts(
            table, Compare("x", CompareOp.NE, 0), options(4)
        )
        assert list(verdicts) == [VERDICT_ALL_TRUE, VERDICT_ALL_FALSE]

    def test_ordering_bounds(self):
        table = clustered_table()
        lt = chunk_verdicts(table, Compare("x", CompareOp.LT, 10), options(10))
        assert list(lt) == [VERDICT_ALL_TRUE] + [VERDICT_ALL_FALSE] * 3
        ge = chunk_verdicts(table, Compare("x", CompareOp.GE, 25), options(10))
        assert list(ge) == [
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
            VERDICT_UNKNOWN,
            VERDICT_ALL_TRUE,
        ]

    def test_between_containment_and_disjointness(self):
        verdicts = chunk_verdicts(
            clustered_table(), Between("x", 10, 19), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
        ]

    def test_nan_chunk_stays_unknown(self):
        table = Table(
            "t",
            {"x": Column.floats([np.nan, 1.0, 2.0, 3.0, 50.0, 51.0, 52.0, 53.0])},
        )
        verdicts = chunk_verdicts(table, Equals("x", 100.0), options(4))
        # First chunk holds a NaN: its min/max are NaN, so no proof; the
        # second chunk's bounds refute normally.
        assert list(verdicts) == [VERDICT_UNKNOWN, VERDICT_ALL_FALSE]

    def test_nan_literal_matches_nothing(self):
        table = Table("t", {"x": Column.floats([1.0, 2.0, 3.0, 4.0])})
        eq = chunk_verdicts(table, Equals("x", float("nan")), options(2))
        assert list(eq) == [VERDICT_ALL_FALSE, VERDICT_ALL_FALSE]
        ne = chunk_verdicts(
            table, Compare("x", CompareOp.NE, float("nan")), options(2)
        )
        assert list(ne) == [VERDICT_ALL_TRUE, VERDICT_ALL_TRUE]

    def test_inset_no_target_in_bounds_skips(self):
        verdicts = chunk_verdicts(
            clustered_table(), InSet("x", [12, 17, 99]), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_UNKNOWN,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
        ]


class TestStringVerdicts:
    def test_equals_by_code_set(self):
        verdicts = chunk_verdicts(
            clustered_table(), Equals("grp", "b"), options(10)
        )
        # Each chunk holds a single code, so chunks are either wholly
        # accepted or wholly refuted.
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
        ]

    def test_absent_value_refutes_everywhere(self):
        verdicts = chunk_verdicts(
            clustered_table(), Equals("grp", "zzz"), options(10)
        )
        assert (verdicts == VERDICT_ALL_FALSE).all()
        assert predicate_always_false(
            clustered_table(), Equals("grp", "zzz"), options(10)
        )

    def test_inset_subset_and_disjoint(self):
        verdicts = chunk_verdicts(
            clustered_table(), InSet("grp", ["a", "b"]), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_TRUE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
        ]

    def test_distinct_cutoff_leaves_chunk_unknown(self):
        n = ZONE_MAP_DISTINCT_CUTOFF + 10
        table = Table(
            "t", {"s": Column.strings([f"v{i}" for i in range(n)])}
        )
        verdicts = chunk_verdicts(table, Equals("s", "v0"), options(n))
        assert list(verdicts) == [VERDICT_UNKNOWN]

    def test_ordering_comparison_stays_unknown(self):
        # The evaluation path raises for ordering ops on strings; the
        # verdict must not pre-empt that error by skipping the chunk.
        verdicts = chunk_verdicts(
            clustered_table(), Compare("grp", CompareOp.LT, "b"), options(10)
        )
        assert (verdicts == VERDICT_UNKNOWN).all()


class TestComposites:
    def test_and_takes_verdict_minimum(self):
        table = clustered_table()
        pred = And([Equals("grp", "b"), Compare("x", CompareOp.LT, 15)])
        verdicts = chunk_verdicts(table, pred, options(10))
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,   # grp refutes
            VERDICT_UNKNOWN,     # grp accepts, x undecided
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
        ]

    def test_not_negates(self):
        verdicts = chunk_verdicts(
            clustered_table(), Not(Equals("grp", "b")), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_TRUE,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_TRUE,
        ]

    def test_unknown_predicate_type_stays_unknown(self):
        class Opaque(Predicate):
            def evaluate(self, table):
                return np.zeros(table.n_rows, dtype=bool)

            def columns(self):
                return set()

        verdicts = chunk_verdicts(clustered_table(), Opaque(), options(10))
        assert (verdicts == VERDICT_UNKNOWN).all()

    def test_bitmask_or_proves_all_true_only(self):
        vector = BitmaskVector(8, 4)
        vector.set_bit(np.array([4, 5, 6, 7]), 1)
        table = Table(
            "t", {"x": Column.ints(np.arange(8))}
        ).with_bitmask(vector)
        pred = BitmaskDisjoint(Bitmask(4, [1]))
        verdicts = chunk_verdicts(table, pred, options(4))
        # First chunk: no row carries bit 1 → every row disjoint.  Second
        # chunk: the OR overlaps, which proves nothing per-row → scan.
        assert list(verdicts) == [VERDICT_ALL_TRUE, VERDICT_UNKNOWN]

    def test_bitmaskless_table_nonzero_mask_stays_unknown(self):
        table = Table("t", {"x": Column.ints(np.arange(8))})
        verdicts = chunk_verdicts(
            table, BitmaskDisjoint(Bitmask(4, [1])), options(4)
        )
        assert (verdicts == VERDICT_UNKNOWN).all()
        with pytest.raises(QueryError):
            evaluate_predicate(
                table, BitmaskDisjoint(Bitmask(4, [1])), options(4)
            )


class TestOrVerdicts:
    def test_or_takes_elementwise_verdict_maximum(self):
        table = clustered_table()
        verdicts = chunk_verdicts(
            table, Or([Equals("grp", "b"), Equals("grp", "c")]), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_FALSE,
        ]

    def test_or_keeps_unknown_arms_scannable(self):
        # Equals(x, 15) leaves chunk 1 UNKNOWN; Equals(grp, 'd') proves
        # chunk 3.  The OR verdict is the elementwise maximum: UNKNOWN
        # must survive (the chunk is scanned, never skipped).
        table = clustered_table()
        verdicts = chunk_verdicts(
            table, Or([Equals("x", 15), Equals("grp", "d")]), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_UNKNOWN,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_TRUE,
        ]

    def test_or_refuted_only_when_every_arm_refuted(self):
        table = clustered_table()
        # One arm refuted everywhere, one UNKNOWN in chunk 1: not provably
        # false overall.
        assert not predicate_always_false(
            table, Or([Equals("grp", "zzz"), Equals("x", 15)]), options(10)
        )
        # Both arms refuted in every chunk: provably false.
        assert predicate_always_false(
            table, Or([Equals("grp", "zzz"), Equals("x", 99)]), options(10)
        )

    @pytest.mark.parametrize("chunk_rows", [7, 10, 100000])
    def test_or_mask_identity(self, chunk_rows):
        table = clustered_table()
        pred = Or([Between("x", 5, 14), Equals("grp", "d"), Equals("x", 22)])
        expected = pred.evaluate(table)
        got = evaluate_predicate(table, pred, options(chunk_rows))
        assert np.array_equal(got, expected)


class TestVerdictEdgeCases:
    """Boundary semantics the proofs must get right: NaN bounds, NaN
    chunks, mixed int/float comparisons, and distinct-cutoff capping."""

    @pytest.mark.parametrize(
        "pred",
        [
            Between("x", float("nan"), 20),
            Between("x", 0, float("nan")),
            Between("x", float("nan"), float("nan")),
        ],
    )
    def test_nan_between_bound_refutes_everywhere(self, pred):
        # x >= NaN and x <= NaN are elementwise False, so a NaN bound
        # makes the predicate vacuous — the verdicts may prove it.
        table = clustered_table()
        verdicts = chunk_verdicts(table, pred, options(10))
        assert (verdicts == VERDICT_ALL_FALSE).all()
        assert predicate_always_false(table, pred, options(10))
        mask = evaluate_predicate(table, pred, options(10))
        assert np.array_equal(mask, pred.evaluate(table))
        assert not mask.any()

    def test_nan_chunk_stays_unknown_for_between(self):
        # Chunk 0 contains a NaN, so its min/max are NaN and no bound
        # proof applies even though every finite value lies inside the
        # interval; chunk 1 is cleanly provable.
        table = Table(
            "t",
            {"v": Column.floats([1.0, float("nan"), 2.0, 3.0, 50.0, 60.0, 70.0, 80.0])},
        )
        pred = Between("v", 0.0, 10.0)
        verdicts = chunk_verdicts(table, pred, options(4))
        assert list(verdicts) == [VERDICT_UNKNOWN, VERDICT_ALL_FALSE]
        mask = evaluate_predicate(table, pred, options(4))
        assert np.array_equal(mask, pred.evaluate(table))

    def test_int_column_float_literal_comparisons(self):
        # 9.5 falls between chunk 0's max (9) and chunk 1's min (10):
        # the float bound must prove both sides without rounding.
        table = clustered_table()
        verdicts = chunk_verdicts(
            table, Compare("x", CompareOp.GE, 9.5), options(10)
        )
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_TRUE,
            VERDICT_ALL_TRUE,
        ]
        # A fractional equality literal inside a chunk's [min, max] stays
        # UNKNOWN (zone maps carry no integrality proof); the scan then
        # correctly finds nothing.
        pred = Equals("x", 15.5)
        verdicts = chunk_verdicts(table, pred, options(10))
        assert list(verdicts) == [
            VERDICT_ALL_FALSE,
            VERDICT_UNKNOWN,
            VERDICT_ALL_FALSE,
            VERDICT_ALL_FALSE,
        ]
        mask = evaluate_predicate(table, pred, options(10))
        assert np.array_equal(mask, pred.evaluate(table))
        assert not mask.any()

    def test_float_column_int_literal_comparisons(self):
        table = Table(
            "t", {"v": Column.floats([0.5, 1.5, 2.5, 3.5, 10.5, 11.5, 12.5, 13.5])}
        )
        pred = Between("v", 1, 3)
        verdicts = chunk_verdicts(table, pred, options(4))
        assert list(verdicts) == [VERDICT_UNKNOWN, VERDICT_ALL_FALSE]
        mask = evaluate_predicate(table, pred, options(4))
        assert np.array_equal(mask, pred.evaluate(table))
        assert int(mask.sum()) == 2

    def test_capped_distinct_chunk_stays_unknown_never_all_false(self):
        # Chunk 0 holds more distinct strings than the summary cutoff, so
        # its code set is not stored; membership must stay UNKNOWN there
        # — claiming ALL_FALSE for the absent target would drop chunk 1's
        # sibling proof obligations onto unsound ground.  Chunk 1 is a
        # single distinct value and stays provable.
        n = ZONE_MAP_DISTINCT_CUTOFF + 8
        values = [f"v{i:03d}" for i in range(n)] + ["w"] * n
        table = Table("t", {"s": Column.strings(values)})
        for pred in (InSet("s", ["w"]), Equals("s", "w")):
            verdicts = chunk_verdicts(table, pred, options(n))
            assert verdicts[0] == VERDICT_UNKNOWN, pred
            assert verdicts[1] == VERDICT_ALL_TRUE, pred
            mask = evaluate_predicate(table, pred, options(n))
            assert np.array_equal(mask, pred.evaluate(table)), pred
            assert int(mask.sum()) == n, pred
        # A value that exists only inside the capped chunk: provably
        # absent from chunk 1, scannable (not refuted) in chunk 0.
        pred = InSet("s", ["v000", "v001"])
        verdicts = chunk_verdicts(table, pred, options(n))
        assert verdicts[0] == VERDICT_UNKNOWN
        assert verdicts[1] == VERDICT_ALL_FALSE
        mask = evaluate_predicate(table, pred, options(n))
        assert np.array_equal(mask, pred.evaluate(table))
        assert int(mask.sum()) == 2


def random_table(seed: int, n: int = 500) -> Table:
    rng = np.random.default_rng(seed)
    vector = BitmaskVector(n, 6)
    vector.set_bit(np.flatnonzero(rng.random(n) < 0.3), 2)
    return Table(
        "r",
        {
            "i": Column.ints(rng.integers(-50, 50, n)),
            "f": Column.floats(
                np.where(rng.random(n) < 0.05, np.nan, rng.normal(0, 10, n))
            ),
            "s": Column.strings(
                [f"g{g}" for g in rng.integers(0, 5, n)]
            ),
        },
    ).with_bitmask(vector)


PREDICATES = [
    Equals("i", 7),
    Equals("i", 0),
    Equals("s", "g3"),
    Equals("s", "missing"),
    Compare("i", CompareOp.GE, 25),
    Compare("f", CompareOp.LT, -5.0),
    Compare("s", CompareOp.NE, "g0"),
    Between("i", -10, 10),
    Between("f", 0.0, 3.0),
    InSet("i", [3, 4, 5]),
    InSet("s", ["g1", "g4"]),
    Not(Between("i", -40, 40)),
    And([Equals("s", "g2"), Compare("i", CompareOp.GT, 0)]),
    And([InSet("s", ["g0", "g1"]), BitmaskDisjoint(Bitmask(6, [2]))]),
    BitmaskDisjoint(Bitmask(6)),
    BitmaskDisjoint(Bitmask(6, [5])),
]


class TestMaskIdentity:
    @pytest.mark.parametrize("chunk_rows", [7, 64, 100000])
    def test_assembled_mask_equals_plain_evaluation(self, chunk_rows):
        table = random_table(seed=11)
        for pred in PREDICATES:
            expected = pred.evaluate(table)
            got = evaluate_predicate(table, pred, options(chunk_rows))
            assert np.array_equal(got, expected), pred

    def test_empty_table(self):
        table = Table("e", {"x": Column.ints([])})
        mask = evaluate_predicate(table, Equals("x", 1), options(16))
        assert mask.size == 0
        assert not predicate_always_false(table, Equals("x", 1), options(16))


class TestErrorPreservation:
    """Skipping must never swallow the evaluation path's typed errors."""

    @pytest.mark.parametrize(
        "pred, error",
        [
            (Between("grp", "a", "b"), QueryError),
            (Compare("grp", CompareOp.LT, "b"), QueryError),
            (Equals("x", "oops"), ColumnTypeError),
        ],
    )
    def test_typed_errors_still_raise(self, pred, error):
        table = clustered_table()
        with pytest.raises(error):
            evaluate_predicate(table, pred, options(10))

    def test_untyped_bound_error_matches_plain_path(self):
        # BETWEEN with string bounds on a numeric column fails inside
        # numpy on both paths; skipping must not turn it into a silent
        # all-false mask.
        table = clustered_table()
        pred = Between("x", "a", "b")
        with pytest.raises(Exception) as plain:
            pred.evaluate(table)
        with pytest.raises(plain.value.__class__):
            evaluate_predicate(table, pred, options(10))


class Recording(Predicate):
    """Wrapper counting how often it is evaluated (not cache-safe)."""

    def __init__(self, inner: Predicate, cost: int = 0) -> None:
        self.inner = inner
        self.cost = cost
        self.calls = 0

    def evaluate(self, table):
        self.calls += 1
        return self.inner.evaluate(table)

    def evaluate_range(self, table, start, stop):
        self.calls += 1
        return self.inner.evaluate_range(table, start, stop)

    def evaluation_cost(self):
        return self.cost

    def columns(self):
        return self.inner.columns()

    def cache_safe(self):
        return False


class TestAndShortCircuit:
    """Satellite pin: AND orders conjuncts cheapest-first and stops once
    the running mask is all-false."""

    def test_all_false_mask_skips_remaining_conjuncts(self):
        table = clustered_table()
        expensive = Recording(Equals("x", 5), cost=1)
        pred = And([Equals("grp", "zzz"), expensive])
        mask = pred.evaluate(table)
        assert not mask.any()
        assert expensive.calls == 0

    def test_bitmask_filter_runs_after_column_leaves(self):
        # On a bitmask-less table a non-zero mask filter raises — unless
        # a cheaper conjunct already emptied the mask.  This is the
        # semantics the zone-map chunk skipping relies on.
        table = clustered_table()
        pred = And([BitmaskDisjoint(Bitmask(4, [1])), Equals("grp", "zzz")])
        assert not pred.evaluate(table).any()
        live = And([BitmaskDisjoint(Bitmask(4, [1])), Equals("grp", "a")])
        with pytest.raises(QueryError):
            live.evaluate(table)

    def test_nonempty_mask_evaluates_every_conjunct(self):
        table = clustered_table()
        second = Recording(Equals("x", 5), cost=1)
        pred = And([Equals("grp", "a"), second])
        expected = (np.arange(40) < 10) & (np.arange(40) == 5)
        assert np.array_equal(pred.evaluate(table), expected)
        assert second.calls == 1


class TestSkipAccounting:
    def test_stats_record_chunk_outcomes(self):
        table = clustered_table()
        stats = PieceSkipStats(description="p")
        mask = evaluate_predicate(
            table, Equals("grp", "b"), options(10), stats=stats
        )
        assert mask.sum() == 10
        assert stats.rows_total == 40
        assert stats.n_chunks == 4
        assert stats.chunks_skipped == 3
        assert stats.chunks_accepted == 1
        assert stats.chunks_scanned == 0
        assert stats.rows_touched == 0

    def test_partial_scan_counts_unknown_chunk_rows(self):
        table = clustered_table()
        stats = PieceSkipStats(description="p")
        evaluate_predicate(
            table, Compare("x", CompareOp.GE, 25), options(10), stats=stats
        )
        assert stats.chunks_scanned == 1
        assert stats.rows_touched == 10

    def test_report_aggregates_and_renders(self):
        report = SkipReport(enabled=True)
        report.pieces.append(
            PieceSkipStats(
                description="piece-a",
                rows_total=100,
                n_chunks=4,
                chunks_skipped=3,
                chunks_scanned=1,
                rows_touched=25,
            )
        )
        report.pieces.append(
            PieceSkipStats(description="piece-b", rows_total=50, pruned=True)
        )
        assert report.rows_total == 150
        assert report.rows_touched == 25
        assert report.pieces_pruned == 1
        text = report.to_text()
        assert "data skipping: on" in text
        assert "piece-a" in text and "piece-b: pruned" in text
